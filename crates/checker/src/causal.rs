//! m-causal consistency — the weaker condition the paper contrasts with.
//!
//! Section 1: "Independently, Raynal et al also generalized Herlihy's model
//! to transactions on multiple objects but they focussed on weaker
//! consistency conditions, namely causal consistency and causal
//! serializability." This module implements that weaker condition in our
//! framework so the spectrum
//!
//! ```text
//! m-linearizability ⊂ m-sequential consistency ⊂ m-causal consistency
//! ```
//!
//! is fully checkable.
//!
//! Following the causal-memory formulation lifted to m-operations: let the
//! *causality order* be `(~p ∪ ~rf)+`. A history is **m-causally
//! consistent** iff for every process `Pi` there is a legal serialization
//! of the sub-history containing all *update* m-operations plus `Pi`'s own
//! m-operations, respecting the causality order. Unlike m-sequential
//! consistency, different processes may serialize concurrent updates in
//! different orders — which is exactly what the classic two-writers /
//! two-readers litmus exploits.

use moc_core::history::{History, MOpIdx};
use moc_core::ids::ProcessId;
use moc_core::relations::{process_order, reads_from, Relation};

use crate::admissible::{find_legal_extension, SearchLimits, SearchOutcome, SearchStats};
use crate::conditions::CheckError;

/// Per-process verdicts of the m-causal-consistency check.
#[derive(Debug, Clone)]
pub struct CausalReport {
    /// Whether every process admits a legal causal serialization.
    pub satisfied: bool,
    /// For each process: its serialization witness (indices into the
    /// *original* history), or `None` if that process has no legal
    /// serialization.
    pub per_process: Vec<(ProcessId, Option<Vec<MOpIdx>>)>,
    /// Accumulated search statistics.
    pub stats: SearchStats,
}

/// Decides m-causal consistency of `h` (see module docs).
///
/// # Errors
///
/// Returns [`CheckError::LimitExceeded`] if any per-process search
/// exhausts its budget.
pub fn check_m_causal(h: &History, limits: SearchLimits) -> Result<CausalReport, CheckError> {
    let causal = process_order(h).union(&reads_from(h)).transitive_closure();
    if !causal.is_irreflexive() {
        // Cyclic causality can never serialize.
        return Ok(CausalReport {
            satisfied: false,
            per_process: h.processes().into_iter().map(|p| (p, None)).collect(),
            stats: SearchStats::default(),
        });
    }

    let mut per_process = Vec::new();
    let mut total_stats = SearchStats::default();
    let mut satisfied = true;

    for p in h.processes() {
        // Sub-history: all updates + Pi's own m-operations.
        let keep: Vec<MOpIdx> = h
            .iter()
            .filter(|(_, r)| r.is_update() || r.process() == p)
            .map(|(i, _)| i)
            .collect();
        let sub_records: Vec<_> = keep.iter().map(|&i| h.record(i).clone()).collect();
        let sub = History::new(h.num_objects(), sub_records)
            .expect("sub-history of a valid history is valid");

        // Restrict the causality order to the kept operations, mapping to
        // sub-history indices (records keep their ids).
        let mut rel = Relation::new(sub.len());
        for (si, &oi) in keep.iter().enumerate() {
            for (sj, &oj) in keep.iter().enumerate() {
                if si != sj && causal.contains(oi, oj) {
                    rel.add(MOpIdx(si), MOpIdx(sj));
                }
            }
        }

        let (outcome, stats) = find_legal_extension(&sub, &rel, limits);
        total_stats.nodes += stats.nodes;
        total_stats.memo_hits += stats.memo_hits;
        match outcome {
            SearchOutcome::Admissible(w) => {
                // Map the witness back to original indices.
                per_process.push((p, Some(w.into_iter().map(|i| keep[i.0]).collect())));
            }
            SearchOutcome::NotAdmissible => {
                satisfied = false;
                per_process.push((p, None));
            }
            SearchOutcome::LimitExceeded => {
                return Err(CheckError::LimitExceeded(total_stats));
            }
        }
    }
    Ok(CausalReport {
        satisfied,
        per_process,
        stats: total_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::{check, Condition, Strategy};
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::ObjectId;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    /// The classic separator: two concurrent writes to x observed in
    /// opposite orders by two readers. Causally consistent (the writes are
    /// causally unrelated, so each reader may serialize them its own way),
    /// but not m-sequentially consistent.
    #[test]
    fn opposite_read_orders_are_causal_but_not_sc() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        let w1 = b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        let w2 = b.mop(pid(1)).at(0, 10).write(x, 2).finish();
        // P2 sees 1 then 2; P3 sees 2 then 1.
        b.mop(pid(2)).at(20, 30).read_from(x, 1, w1).finish();
        b.mop(pid(2)).at(40, 50).read_from(x, 2, w2).finish();
        b.mop(pid(3)).at(20, 30).read_from(x, 2, w2).finish();
        b.mop(pid(3)).at(40, 50).read_from(x, 1, w1).finish();
        let h = b.build().unwrap();

        let causal = check_m_causal(&h, SearchLimits::default()).unwrap();
        assert!(causal.satisfied, "{causal:?}");
        assert_eq!(causal.per_process.len(), 4);
        assert!(causal.per_process.iter().all(|(_, w)| w.is_some()));

        let sc = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(!sc.satisfied, "SC forbids opposite orders");
    }

    /// Causality violations are rejected: a process reads a later write
    /// but then an earlier (causally preceding) one.
    #[test]
    fn causally_ordered_writes_cannot_be_observed_backwards() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        // P0 writes 1 then (after reading its own 1 — same process order)
        // writes 2: w1 → w2 causally.
        let w1 = b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        let w2 = b.mop(pid(0)).at(20, 30).write(x, 2).finish();
        // P1 reads 2 then 1 — against causality.
        b.mop(pid(1)).at(40, 50).read_from(x, 2, w2).finish();
        b.mop(pid(1)).at(60, 70).read_from(x, 1, w1).finish();
        let h = b.build().unwrap();

        let causal = check_m_causal(&h, SearchLimits::default()).unwrap();
        assert!(!causal.satisfied);
        // P0's own view is fine; P1's is not.
        let p1 = causal
            .per_process
            .iter()
            .find(|(p, _)| *p == pid(1))
            .unwrap();
        assert!(p1.1.is_none());
        let p0 = causal
            .per_process
            .iter()
            .find(|(p, _)| *p == pid(0))
            .unwrap();
        assert!(p0.1.is_some());
    }

    /// m-sequential consistency implies m-causal consistency: reuse the
    /// Figure 2 history.
    #[test]
    fn sc_implies_causal() {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(1)).at(0, 10).read_init(x).write(y, 2).finish();
        b.mop(pid(1)).at(20, 60).read_from(y, 2, alpha).finish();
        b.mop(pid(2)).at(15, 25).write(x, 1).finish();
        b.mop(pid(2)).at(30, 40).write(y, 3).finish();
        let h = b.build().unwrap();
        let sc = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(sc.satisfied);
        let causal = check_m_causal(&h, SearchLimits::default()).unwrap();
        assert!(causal.satisfied);
    }

    /// Multi-object atomicity still binds under causal consistency: a
    /// reader may not mix versions from one atomic write pair.
    #[test]
    fn torn_multi_object_read_is_not_even_causal() {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let a = b.mop(pid(0)).at(0, 10).write(x, 1).write(y, 1).finish();
        let c = b.mop(pid(1)).at(0, 10).write(x, 2).write(y, 2).finish();
        b.mop(pid(2))
            .at(20, 30)
            .read_from(x, 1, a)
            .read_from(y, 2, c)
            .finish();
        let h = b.build().unwrap();
        let causal = check_m_causal(&h, SearchLimits::default()).unwrap();
        assert!(!causal.satisfied, "mixed snapshot must fail causally too");
    }

    /// Cyclic reads-from can never serialize. The builder cannot express
    /// forward references, so the two mutually-reading records are
    /// constructed directly.
    #[test]
    fn cyclic_causality_is_rejected() {
        let x = oid(0);
        let y = oid(1);
        let a_id = moc_core::ids::MOpId::new(pid(0), 0);
        let c_id = moc_core::ids::MOpId::new(pid(1), 0);
        use moc_core::mop::{EventTime, MOpClass, MOpRecord};
        use moc_core::op::CompletedOp;
        let a = MOpRecord {
            id: a_id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(10),
            ops: vec![
                CompletedOp::read(y, 5, c_id, 1),
                CompletedOp::write(x, 4, a_id, 1),
            ],
            outputs: vec![],
            treated_as: MOpClass::Update,
            label: "a".into(),
        };
        let c = MOpRecord {
            id: c_id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(10),
            ops: vec![
                CompletedOp::read(x, 4, a_id, 1),
                CompletedOp::write(y, 5, c_id, 1),
            ],
            outputs: vec![],
            treated_as: MOpClass::Update,
            label: "c".into(),
        };
        let h = History::new(2, vec![a, c]).unwrap();
        let causal = check_m_causal(&h, SearchLimits::default()).unwrap();
        assert!(!causal.satisfied);
        assert!(causal.per_process.iter().all(|(_, w)| w.is_none()));
    }
}
