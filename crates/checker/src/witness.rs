//! Materializing admissibility witnesses as sequential histories.
//!
//! Admissibility (D 4.7) asks for an *equivalent legal sequential history*.
//! The search and the Theorem 7 fast path return that history as a schedule
//! (a permutation of the m-operations); [`make_sequential_history`] turns
//! the schedule into an actual [`History`] value — first event an
//! invocation, every invocation immediately followed by its response, total
//! order consistent with invocation order (the three clauses of the paper's
//! sequentiality definition) — so users can inspect, print or re-verify the
//! equivalent serial execution.

use moc_core::history::{History, MOpIdx};
use moc_core::legality::sequence_is_legal;
use moc_core::mop::EventTime;
use moc_core::relations::{real_time, Relation};

/// Errors from witness materialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// The schedule is not a permutation of the history's m-operations.
    NotAPermutation,
    /// The schedule is a permutation but replaying it is not legal.
    NotLegal,
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::NotAPermutation => {
                f.write_str("schedule is not a permutation of the history")
            }
            WitnessError::NotLegal => f.write_str("schedule replay is not legal"),
        }
    }
}

impl std::error::Error for WitnessError {}

/// Builds the legal sequential history equivalent to `h` described by
/// `schedule`: the same m-operations (same ids, operations, outputs) with
/// invocation/response events re-laid on a serial timeline.
///
/// # Errors
///
/// Returns [`WitnessError`] if `schedule` does not cover `h` exactly or is
/// not legal.
pub fn make_sequential_history(h: &History, schedule: &[MOpIdx]) -> Result<History, WitnessError> {
    if schedule.len() != h.len() {
        return Err(WitnessError::NotAPermutation);
    }
    let mut seen = vec![false; h.len()];
    for &i in schedule {
        if i.0 >= h.len() || seen[i.0] {
            return Err(WitnessError::NotAPermutation);
        }
        seen[i.0] = true;
    }
    if !sequence_is_legal(h, schedule) {
        return Err(WitnessError::NotLegal);
    }
    let mut records = Vec::with_capacity(h.len());
    for (pos, &idx) in schedule.iter().enumerate() {
        let mut rec = h.record(idx).clone();
        let t = pos as u64 * 10;
        rec.invoked_at = EventTime::from_nanos(t);
        rec.responded_at = EventTime::from_nanos(t + 5);
        records.push(rec);
    }
    Ok(
        History::new(h.num_objects(), records)
            .expect("relabeled serial timeline stays well-formed"),
    )
}

/// Checks the sequentiality of a history: all m-operations non-overlapping
/// and totally ordered by real time (the serial histories produced by
/// [`make_sequential_history`] satisfy this by construction).
pub fn is_sequential(h: &History) -> bool {
    let rt: Relation = real_time(h);
    rt.is_total_order()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::{check, Condition, Strategy};
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::{ObjectId, ProcessId};

    fn sample() -> History {
        let x = ObjectId::new(0);
        let mut b = HistoryBuilder::new(1);
        let w = b.mop(ProcessId::new(0)).at(0, 10).write(x, 1).finish();
        b.mop(ProcessId::new(1))
            .at(5, 30)
            .read_from(x, 1, w)
            .finish();
        b.mop(ProcessId::new(2)).at(0, 8).read_init(x).finish();
        b.build().unwrap()
    }

    #[test]
    fn witness_materializes_to_sequential_history() {
        let h = sample();
        let report = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        let witness = report.witness.expect("admissible");
        let serial = make_sequential_history(&h, &witness).unwrap();
        assert!(is_sequential(&serial));
        assert_eq!(serial.len(), h.len());
        // Equivalent: same per-process subhistories and operations.
        assert!(serial.equivalent(&h));
        // The serial history is trivially m-linearizable.
        let again = check(&serial, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(again.satisfied);
    }

    #[test]
    fn rejects_non_permutations() {
        let h = sample();
        assert!(matches!(
            make_sequential_history(&h, &[MOpIdx(0)]),
            Err(WitnessError::NotAPermutation)
        ));
        assert!(matches!(
            make_sequential_history(&h, &[MOpIdx(0), MOpIdx(0), MOpIdx(1)]),
            Err(WitnessError::NotAPermutation)
        ));
    }

    #[test]
    fn rejects_illegal_schedules() {
        let h = sample();
        // Reader of the initial value cannot come after the writer.
        let bad = [MOpIdx(0), MOpIdx(1), MOpIdx(2)];
        assert!(matches!(
            make_sequential_history(&h, &bad),
            Err(WitnessError::NotLegal)
        ));
    }

    #[test]
    fn original_overlapping_history_is_not_sequential() {
        assert!(!is_sequential(&sample()));
    }

    #[test]
    fn witness_history_round_trips_through_the_codec() {
        let h = sample();
        let report = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        let serial = make_sequential_history(&h, &report.witness.unwrap()).unwrap();
        let text = moc_core::codec::to_text(&serial);
        let back = moc_core::codec::from_text(&text).unwrap();
        assert_eq!(text, moc_core::codec::to_text(&back));
        assert_eq!(
            moc_core::codec::fingerprint(&serial),
            moc_core::codec::fingerprint(&back)
        );
        assert!(is_sequential(&back));
    }

    #[test]
    fn tampered_witness_is_rejected() {
        let h = sample();
        let report = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        let witness = report.witness.expect("admissible");
        // Swapping the initial-value reader behind the writer breaks
        // legality: every tampering of this witness must be caught either
        // as a non-permutation or as an illegal replay.
        let mut tampered = witness.clone();
        tampered.reverse();
        assert!(make_sequential_history(&h, &tampered).is_err());
        let mut duplicated = witness.clone();
        duplicated[0] = duplicated[witness.len() - 1];
        assert!(matches!(
            make_sequential_history(&h, &duplicated),
            Err(WitnessError::NotAPermutation)
        ));
    }

    #[test]
    fn figure3_order_is_rejected_and_the_forced_rw_edge_explains_why() {
        // Figure 2's H1: α = r(x)0 w(y)2, β = r(y)2, γ = w(x)1, δ = w(y)3,
        // with the WW order α < γ < δ. Figure 3's S1 = α γ δ β is
        // sequential but not legal: δ overwrites the y that β reads from α.
        let x = ObjectId::new(0);
        let y = ObjectId::new(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b
            .mop(ProcessId::new(1))
            .at(0, 10)
            .read_init(x)
            .write(y, 2)
            .finish();
        b.mop(ProcessId::new(1))
            .at(20, 60)
            .read_from(y, 2, alpha)
            .finish();
        b.mop(ProcessId::new(2)).at(15, 25).write(x, 1).finish();
        b.mop(ProcessId::new(2)).at(30, 40).write(y, 3).finish();
        let h = b.build().unwrap();
        let s1 = [MOpIdx(0), MOpIdx(2), MOpIdx(3), MOpIdx(1)];
        assert!(matches!(
            make_sequential_history(&h, &s1),
            Err(WitnessError::NotLegal)
        ));

        // The precedence analysis derives exactly the missing constraint:
        // β ~rw δ is forced, so every witness places β before δ.
        use moc_core::relations::{process_order, reads_from};
        let mut rel = process_order(&h).union(&reads_from(&h));
        rel.add(MOpIdx(0), MOpIdx(2));
        rel.add(MOpIdx(2), MOpIdx(3));
        let g = crate::precedence::PrecedenceGraph::from_relation(&h, &rel);
        assert!(g.closed().contains(MOpIdx(1), MOpIdx(3)));
        let (out, _) =
            crate::precedence::pruned_search(&h, &g, crate::admissible::SearchLimits::default());
        let w = out.witness().expect("figure 2 is admissible").to_vec();
        let serial = make_sequential_history(&h, &w).unwrap();
        assert!(is_sequential(&serial));
        let pos_beta = w.iter().position(|&i| i == MOpIdx(1)).unwrap();
        let pos_delta = w.iter().position(|&i| i == MOpIdx(3)).unwrap();
        assert!(pos_beta < pos_delta, "forced ~rw edge respected");
    }
}
