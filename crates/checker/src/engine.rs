//! The parallel, allocation-lean admissibility engine.
//!
//! Both public searches ([`crate::admissible::find_legal_extension`] and
//! [`crate::precedence::pruned_search`]) compile their input down to a
//! [`SearchProblem`] — CSR adjacency, CSR read requirements and write sets,
//! plus a table of Zobrist keys — and a list of [`ComponentPlan`]s, then
//! hand both to [`execute`]. The engine owns everything from there:
//!
//! * **Zobrist transposition table.** Search states are pairs of
//!   (scheduled set, last-writer map). Instead of cloning that pair into a
//!   `HashSet` per DFS node, the engine maintains a 64-bit Zobrist hash
//!   incrementally — XOR one key per scheduled m-operation and one per
//!   (object, writer) assignment — and memoizes fingerprints in an
//!   open-addressed table with a configurable capacity bound
//!   (`SearchLimits::max_memo_entries`) and O(1) generation-based eviction.
//! * **Allocation-lean state.** The scheduled set is a fixed-width
//!   [`BitSet`], adjacency lives in [`Csr`] arenas, and undo information
//!   goes through one reusable stack: the DFS hot path performs no heap
//!   allocation.
//! * **Commutativity symmetry reduction.** From the history's concrete
//!   footprints the problem precomputes a pairwise *independence* matrix
//!   (no relation edge either way, commuting footprints). The DFS then
//!   explores only the canonical ascending order of adjacent independent
//!   m-operations: with `p` scheduled last, a schedulable `j < p`
//!   independent of `p` is skipped, because the schedule continuing
//!   `…, j, p` reaches the identical state and is explored instead. To keep
//!   memoization sound under the skip rule (whose successor set depends on
//!   the last move), the identity of the last scheduled m-operation is
//!   folded into the state hash via a third Zobrist key family.
//! * **Work-stealing parallelism.** Interaction components fan out across a
//!   `crossbeam::thread::scope`; within a component the top-level branch
//!   frontier (the legal first moves after forced-prefix peeling) is split
//!   into per-branch tasks that workers steal from each other. A shared
//!   atomic node budget, charged as branches complete into the decided
//!   prefix, plus first-witness-wins cancellation keep the wall clock down.
//!
//! ## Determinism
//!
//! Verdicts, witnesses and statistics are identical for every thread count.
//! Each branch task is searched in isolation (own transposition table, own
//! node counter capped at `max_nodes`), so its result is a pure function of
//! the problem. The overall result is a deterministic *fold* over those
//! results in (component, branch) order: the canonical witness comes from
//! the smallest admissible branch index, and the node budget is charged
//! cumulatively in fold order — a run is `LimitExceeded` exactly when the
//! cumulative count crosses `max_nodes`, regardless of which worker
//! explored what. Cancellation only ever discards branches the fold can no
//! longer reach (larger branch indices than a found witness, components
//! past a refutation), so racing workers cannot perturb the outcome.
//!
//! The lone theoretical caveat is shared with every Zobrist-keyed checker
//! (Wing–Gong descendants included): two distinct states may collide in 64
//! bits. The keys come from a fixed-seed SplitMix64 stream, so a collision
//! — vanishingly unlikely at reachable node counts — would at least be the
//! same collision in every run and at every thread count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use moc_core::bitset::BitSet;
use moc_core::csr::{predecessor_csr, Csr};
use moc_core::history::{History, MOpIdx};

use crate::admissible::{SearchLimits, SearchOutcome, SearchStats};

/// "No writer yet" marker in last-writer maps and read requirements.
pub(crate) const NONE: u32 = u32::MAX;

/// Branch sentinel: search the whole frontier from the root instead of
/// forcing a first move (the naive engine's single task).
pub(crate) const ROOT: u32 = u32::MAX;

/// Fixed seed for the Zobrist key stream: keys must be identical across
/// runs, processes and thread counts for certificates to be reproducible.
const ZOBRIST_SEED: u64 = 0x6d6f_632d_6571_7531; // "moc-equ1"

/// How often (in nodes) a branch checks for cancellation and flushes its
/// node count into the shared budget counter. Power of two minus one.
const CANCEL_CHECK_MASK: u64 = 0x3FF;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Precomputed Zobrist keys: one per m-operation (membership in the
/// scheduled set) and one per (object, writer) pair, where "writer" ranges
/// over every m-operation plus the initial no-writer state.
pub(crate) struct ZobristKeys {
    op_keys: Vec<u64>,
    writer_keys: Vec<u64>,
    /// Keys for "scheduled last": one per m-operation. Folded into the
    /// hash only under the symmetry reduction, whose skip set depends on
    /// the last scheduled m-operation — without them, two states equal in
    /// (scheduled set, last-writer map) but reached through different
    /// last moves would share a memo entry despite exploring different
    /// successor sets, and a memo hit would be unsound.
    last_keys: Vec<u64>,
    /// Keys per object: one per m-operation plus the trailing NONE slot.
    stride: usize,
}

impl ZobristKeys {
    pub(crate) fn new(n: usize, num_objects: usize) -> Self {
        let mut state = ZOBRIST_SEED;
        let stride = n + 1;
        let op_keys = (0..n).map(|_| splitmix64(&mut state)).collect();
        let writer_keys = (0..num_objects * stride)
            .map(|_| splitmix64(&mut state))
            .collect();
        // Drawn after the op/writer keys so those streams are unchanged.
        let last_keys = (0..n).map(|_| splitmix64(&mut state)).collect();
        ZobristKeys {
            op_keys,
            writer_keys,
            last_keys,
            stride,
        }
    }

    #[inline]
    pub(crate) fn op(&self, i: usize) -> u64 {
        self.op_keys[i]
    }

    #[inline]
    pub(crate) fn last_op(&self, i: u32) -> u64 {
        self.last_keys[i as usize]
    }

    #[inline]
    pub(crate) fn writer(&self, obj: u32, writer: u32) -> u64 {
        let w = if writer == NONE {
            self.stride - 1
        } else {
            writer as usize
        };
        self.writer_keys[obj as usize * self.stride + w]
    }
}

/// Open-addressed set of 64-bit state fingerprints with a capacity bound
/// and generation-based eviction.
///
/// A slot is live iff its generation tag equals the current generation, so
/// both eviction (at the capacity bound) and per-branch reuse are O(1)
/// generation bumps — no memset on the hot path. The table starts small
/// and doubles (rehashing live entries) until the slot count covers
/// `max_entries` at a ≤ 7/8 load factor; past the bound it evicts instead
/// of growing, and records that it saturated.
pub(crate) struct TranspositionTable {
    fingerprints: Vec<u64>,
    generations: Vec<u32>,
    generation: u32,
    mask: usize,
    occupancy: usize,
    target_len: usize,
    capacity_limit: usize,
    hits: u64,
    peak_occupancy: usize,
    saturated: bool,
}

impl TranspositionTable {
    pub(crate) fn new(max_entries: u64) -> Self {
        let capacity_limit = usize::try_from(max_entries).unwrap_or(usize::MAX).max(16);
        let target_len = capacity_limit
            .saturating_add(capacity_limit / 4)
            .saturating_add(16)
            .checked_next_power_of_two()
            .unwrap_or(1 << 62);
        let initial = 1024.min(target_len);
        TranspositionTable {
            fingerprints: vec![0; initial],
            generations: vec![0; initial],
            generation: 1,
            mask: initial - 1,
            occupancy: 0,
            target_len,
            capacity_limit,
            hits: 0,
            peak_occupancy: 0,
            saturated: false,
        }
    }

    /// Returns whether `hash` was already present (a memo hit); records it
    /// otherwise.
    pub(crate) fn check_and_insert(&mut self, hash: u64) -> bool {
        let mut idx = (hash as usize) & self.mask;
        loop {
            if self.generations[idx] != self.generation {
                self.fingerprints[idx] = hash;
                self.generations[idx] = self.generation;
                self.occupancy += 1;
                if self.occupancy > self.peak_occupancy {
                    self.peak_occupancy = self.occupancy;
                }
                if self.occupancy >= self.insert_threshold() {
                    self.grow_or_evict();
                }
                return false;
            }
            if self.fingerprints[idx] == hash {
                self.hits += 1;
                return true;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    fn insert_threshold(&self) -> usize {
        let len = self.fingerprints.len();
        (len - len / 8).min(self.capacity_limit)
    }

    fn grow_or_evict(&mut self) {
        let len = self.fingerprints.len();
        if self.occupancy >= self.capacity_limit || len >= self.target_len {
            // Generation-based eviction: the table is logically cleared in
            // O(1); stale slots are overwritten lazily.
            self.saturated = true;
            self.bump_generation();
            return;
        }
        let new_len = len * 2;
        let new_mask = new_len - 1;
        let mut fingerprints = vec![0u64; new_len];
        let mut generations = vec![0u32; new_len];
        for i in 0..len {
            if self.generations[i] == self.generation {
                let h = self.fingerprints[i];
                let mut idx = (h as usize) & new_mask;
                while generations[idx] == self.generation {
                    idx = (idx + 1) & new_mask;
                }
                fingerprints[idx] = h;
                generations[idx] = self.generation;
            }
        }
        self.fingerprints = fingerprints;
        self.generations = generations;
        self.mask = new_mask;
    }

    fn bump_generation(&mut self) {
        self.occupancy = 0;
        if self.generation == u32::MAX {
            self.generations.fill(0);
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    /// Clears the table and its per-branch stats for the next branch.
    pub(crate) fn reset(&mut self) {
        self.bump_generation();
        self.hits = 0;
        self.peak_occupancy = 0;
        self.saturated = false;
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    pub(crate) fn saturated(&self) -> bool {
        self.saturated
    }
}

/// The immutable, thread-shared compilation of one admissibility question.
pub(crate) struct SearchProblem {
    pub(crate) n: usize,
    pub(crate) num_objects: usize,
    /// Direct predecessors per m-operation under the search relation.
    pub(crate) preds: Csr<u32>,
    /// External read requirements per m-operation: (object, writer|NONE).
    pub(crate) read_reqs: Csr<(u32, u32)>,
    /// Objects written per m-operation.
    pub(crate) write_sets: Csr<u32>,
    /// Pairwise independence for the symmetry reduction: `indep[i]`
    /// contains `j` iff `i != j`, no direct relation edge connects them in
    /// either direction, and their footprints commute (disjoint writes,
    /// neither writing what the other reads). Swapping an adjacent
    /// independent pair in a schedule preserves both legality and the
    /// resulting last-writer state, so only the ascending order of such a
    /// pair needs exploring.
    pub(crate) indep: Vec<BitSet>,
    pub(crate) keys: ZobristKeys,
}

impl SearchProblem {
    /// Compiles `h` and a relation edge list into CSR form plus keys.
    pub(crate) fn new(h: &History, edges: &[(u32, u32)]) -> Self {
        let n = h.len();
        let preds = predecessor_csr(n, edges.iter().copied());
        let read_reqs = Csr::from_fn(n, |i| {
            h.read_sources(MOpIdx(i))
                .iter()
                .map(|&(obj, w)| (obj.index() as u32, w.map_or(NONE, |w| w.0 as u32)))
                .collect()
        });
        let write_sets = Csr::from_fn(n, |i| {
            h.wobjects(MOpIdx(i))
                .iter()
                .map(|o| o.index() as u32)
                .collect()
        });
        let indep = independence(h.num_objects(), n, &read_reqs, &write_sets, edges);
        let keys = ZobristKeys::new(n, h.num_objects());
        SearchProblem {
            n,
            num_objects: h.num_objects(),
            preds,
            read_reqs,
            write_sets,
            indep,
            keys,
        }
    }
}

/// Builds the pairwise independence matrix (see [`SearchProblem::indep`]).
/// Footprints here are the *history's* concrete footprints — external read
/// requirements plus write sets — so the reduction is exact, not an
/// over-approximation.
fn independence(
    num_objects: usize,
    n: usize,
    read_reqs: &Csr<(u32, u32)>,
    write_sets: &Csr<u32>,
    edges: &[(u32, u32)],
) -> Vec<BitSet> {
    let mut touch: Vec<BitSet> = (0..n).map(|_| BitSet::new(num_objects)).collect();
    let mut writes: Vec<BitSet> = (0..n).map(|_| BitSet::new(num_objects)).collect();
    for i in 0..n {
        for &(o, _) in read_reqs.row(i) {
            touch[i].insert(o as usize);
        }
        for &o in write_sets.row(i) {
            touch[i].insert(o as usize);
            writes[i].insert(o as usize);
        }
    }
    let mut related: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for &(a, b) in edges {
        related[a as usize].insert(b as usize);
        related[b as usize].insert(a as usize);
    }
    let disjoint =
        |a: &BitSet, b: &BitSet| a.words().iter().zip(b.words()).all(|(&x, &y)| x & y == 0);
    let mut indep: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for i in 0..n {
        for j in i + 1..n {
            if !related[i].contains(j)
                && disjoint(&writes[i], &touch[j])
                && disjoint(&writes[j], &touch[i])
            {
                indep[i].insert(j);
                indep[j].insert(i);
            }
        }
    }
    indep
}

/// One interaction component, compiled to its post-peel start state and
/// branch frontier. Built by the callers (which own the peeling policy),
/// executed by [`execute`].
pub(crate) struct ComponentPlan {
    /// Members left to schedule after peeling, ascending.
    pub(crate) members: Vec<u32>,
    /// The forced prefix, in the order it was peeled.
    pub(crate) peeled_order: Vec<u32>,
    /// Peel steps the fold charges to `SearchStats::peeled`.
    pub(crate) peeled: u64,
    /// Scheduled set after the peel (this component's members only).
    pub(crate) sched: BitSet,
    /// Last-writer map after the peel.
    pub(crate) last_writer: Vec<u32>,
    /// Zobrist hash of (`sched`, `last_writer`).
    pub(crate) hash: u64,
    /// Branch frontier: the legal first moves, ascending — or the single
    /// [`ROOT`] sentinel for an unsplit whole-frontier search.
    pub(crate) branches: Vec<u32>,
    /// The peel refuted the component (a forced-next op has illegal reads).
    pub(crate) refuted_in_peel: bool,
}

impl ComponentPlan {
    /// Builds a component plan by replaying `peeled_order` and then
    /// enumerating the branch frontier over `members`.
    pub(crate) fn build(
        problem: &SearchProblem,
        peeled_order: Vec<u32>,
        members: Vec<u32>,
        refuted_in_peel: bool,
        peeled: u64,
    ) -> Self {
        let mut sched = BitSet::new(problem.n);
        let mut last_writer = vec![NONE; problem.num_objects];
        let mut hash = 0u64;
        for &u in &peeled_order {
            sched.insert(u as usize);
            hash ^= problem.keys.op(u as usize);
            for &o in problem.write_sets.row(u as usize) {
                hash ^= problem.keys.writer(o, last_writer[o as usize]) ^ problem.keys.writer(o, u);
                last_writer[o as usize] = u;
            }
        }
        let mut branches = Vec::new();
        if !refuted_in_peel {
            for &iu in &members {
                let i = iu as usize;
                let ready = problem
                    .preds
                    .row(i)
                    .iter()
                    .all(|&q| sched.contains(q as usize));
                let legal = problem
                    .read_reqs
                    .row(i)
                    .iter()
                    .all(|&(o, w)| last_writer[o as usize] == w);
                if ready && legal {
                    branches.push(iu);
                }
            }
        }
        ComponentPlan {
            members,
            peeled_order,
            peeled,
            sched,
            last_writer,
            hash,
            branches,
            refuted_in_peel,
        }
    }

    /// The naive engine's plan: every m-operation in one component, one
    /// unsplit root task, nothing peeled.
    pub(crate) fn root(problem: &SearchProblem) -> Self {
        ComponentPlan {
            members: (0..problem.n as u32).collect(),
            peeled_order: Vec::new(),
            peeled: 0,
            sched: BitSet::new(problem.n),
            last_writer: vec![NONE; problem.num_objects],
            hash: 0,
            branches: vec![ROOT],
            refuted_in_peel: false,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Step {
    Admissible,
    Refuted,
    Limit,
    Cancelled,
}

#[derive(Clone, Copy)]
struct Task {
    comp: usize,
    branch: usize,
    first: u32,
}

struct BranchResult {
    step: Step,
    nodes: u64,
    memo_hits: u64,
    memo_peak: u64,
    memo_saturated: bool,
    symmetry_skips: u64,
    /// Schedule of the branch (first move included) when admissible.
    order: Vec<u32>,
}

/// Shared coordination state: results, cancellation cuts, abort flag and
/// the shared node-budget counter.
struct Board {
    results: Mutex<Vec<Vec<Option<BranchResult>>>>,
    /// Per component: branches with index ≥ this are cancelled.
    cancel_from: Vec<AtomicUsize>,
    /// Components with index > this are cancelled.
    comp_stop: AtomicUsize,
    abort: AtomicBool,
    /// Total nodes expanded across all workers (observability; the binding
    /// budget decision is the deterministic fold).
    spent: AtomicU64,
}

impl Board {
    fn new(plans: &[ComponentPlan], comp_stop: usize) -> Self {
        Board {
            results: Mutex::new(
                plans
                    .iter()
                    .map(|p| (0..p.branches.len()).map(|_| None).collect())
                    .collect(),
            ),
            cancel_from: plans.iter().map(|_| AtomicUsize::new(usize::MAX)).collect(),
            comp_stop: AtomicUsize::new(comp_stop),
            abort: AtomicBool::new(false),
            spent: AtomicU64::new(0),
        }
    }

    fn is_cancelled(&self, comp: usize, branch: usize) -> bool {
        self.abort.load(Ordering::Relaxed)
            || comp > self.comp_stop.load(Ordering::Relaxed)
            || branch >= self.cancel_from[comp].load(Ordering::Relaxed)
    }

    /// Records a finished branch and updates the cancellation frontier.
    fn on_done(
        &self,
        task: Task,
        result: BranchResult,
        plans: &[ComponentPlan],
        limits: SearchLimits,
    ) {
        if result.step == Step::Admissible {
            // First-witness-wins: branches after an admissible one can
            // never be the canonical (smallest-index) witness.
            self.cancel_from[task.comp].fetch_min(task.branch + 1, Ordering::Relaxed);
        }
        let mut results = self.results.lock().expect("engine board poisoned");
        results[task.comp][task.branch] = Some(result);
        // A component whose branches are all refuted decides the overall
        // verdict at its index at the latest; later components are moot.
        if results[task.comp]
            .iter()
            .all(|r| matches!(r, Some(b) if b.step == Step::Refuted))
        {
            self.comp_stop.fetch_min(task.comp, Ordering::Relaxed);
        }
        if fold(plans, &results, limits).outcome.is_some() {
            self.abort.store(true, Ordering::Relaxed);
        }
    }
}

/// Outcome of the deterministic fold over (component, branch) results.
struct Fold {
    /// `Some` once every result the decision path needs is present.
    outcome: Option<SearchOutcome>,
    nodes: u64,
    memo_hits: u64,
    memo_peak: u64,
    memo_saturated: bool,
    symmetry_skips: u64,
    peeled: u64,
}

fn fold(
    plans: &[ComponentPlan],
    results: &[Vec<Option<BranchResult>>],
    limits: SearchLimits,
) -> Fold {
    let mut f = Fold {
        outcome: None,
        nodes: 0,
        memo_hits: 0,
        memo_peak: 0,
        memo_saturated: false,
        symmetry_skips: 0,
        peeled: 0,
    };
    let mut winners: Vec<Option<usize>> = vec![None; plans.len()];
    for (c, plan) in plans.iter().enumerate() {
        f.peeled += plan.peeled;
        if plan.refuted_in_peel {
            f.outcome = Some(SearchOutcome::NotAdmissible);
            return f;
        }
        if plan.members.is_empty() {
            continue;
        }
        // The component root: one node, exactly like the sequential
        // search's entry into the component (ROOT tasks count their own).
        if plan.branches != [ROOT] {
            f.nodes += 1;
            if f.nodes > limits.max_nodes {
                f.outcome = Some(SearchOutcome::LimitExceeded);
                return f;
            }
        }
        if plan.branches.is_empty() {
            f.outcome = Some(SearchOutcome::NotAdmissible);
            return f;
        }
        let mut decided = false;
        for b in 0..plan.branches.len() {
            let Some(r) = &results[c][b] else {
                // Outstanding result on the decision path: undecided. The
                // cumulative count here is always ≤ max_nodes (any excess
                // already decided the fold at an earlier branch).
                return f;
            };
            f.nodes += r.nodes;
            f.memo_hits += r.memo_hits;
            f.memo_peak = f.memo_peak.max(r.memo_peak);
            f.memo_saturated |= r.memo_saturated;
            f.symmetry_skips += r.symmetry_skips;
            if f.nodes > limits.max_nodes {
                f.outcome = Some(SearchOutcome::LimitExceeded);
                return f;
            }
            match r.step {
                Step::Admissible => {
                    winners[c] = Some(b);
                    decided = true;
                    break;
                }
                Step::Refuted => {}
                Step::Limit => {
                    // A branch at its own cap has nodes > max_nodes, so the
                    // cumulative check above already returned.
                    f.outcome = Some(SearchOutcome::LimitExceeded);
                    return f;
                }
                Step::Cancelled => unreachable!("cancelled branches are never recorded"),
            }
        }
        if !decided {
            f.outcome = Some(SearchOutcome::NotAdmissible);
            return f;
        }
    }
    // Every component admissible: assemble the canonical witness.
    let mut order: Vec<MOpIdx> = Vec::new();
    for (c, plan) in plans.iter().enumerate() {
        order.extend(plan.peeled_order.iter().map(|&u| MOpIdx(u as usize)));
        if let Some(w) = winners[c] {
            let r = results[c][w].as_ref().expect("winner recorded");
            order.extend(r.order.iter().map(|&u| MOpIdx(u as usize)));
        }
    }
    f.outcome = Some(SearchOutcome::Admissible(order));
    f
}

/// Per-worker mutable search state, reused across branch tasks.
struct SearchContext<'p> {
    p: &'p SearchProblem,
    scheduled: BitSet,
    last_writer: Vec<u32>,
    order: Vec<u32>,
    undo: Vec<(u32, u32)>,
    hash: u64,
    table: TranspositionTable,
    memoize: bool,
    symmetry: bool,
    symmetry_skips: u64,
    nodes: u64,
    max_nodes: u64,
    remaining: usize,
}

/// Cancellation scope of one branch task.
struct CancelCtx<'a> {
    board: &'a Board,
    comp: usize,
    branch: usize,
}

impl CancelCtx<'_> {
    #[inline]
    fn cancelled(&self) -> bool {
        self.board.is_cancelled(self.comp, self.branch)
    }
}

impl<'p> SearchContext<'p> {
    fn new(p: &'p SearchProblem, limits: SearchLimits) -> Self {
        SearchContext {
            p,
            scheduled: BitSet::new(p.n),
            last_writer: vec![NONE; p.num_objects],
            order: Vec::with_capacity(p.n),
            undo: Vec::with_capacity(p.n),
            hash: 0,
            table: TranspositionTable::new(limits.max_memo_entries),
            memoize: limits.memoize,
            symmetry: limits.symmetry,
            symmetry_skips: 0,
            nodes: 0,
            max_nodes: limits.max_nodes,
            remaining: 0,
        }
    }

    fn load(&mut self, plan: &ComponentPlan) {
        self.scheduled.copy_from(&plan.sched);
        self.last_writer.copy_from_slice(&plan.last_writer);
        self.order.clear();
        self.undo.clear();
        self.hash = plan.hash;
        self.table.reset();
        self.symmetry_skips = 0;
        self.nodes = 0;
        self.remaining = plan.members.len();
    }

    /// Key of the branch-local last scheduled m-operation (0 at the
    /// branch root, where the skip rule is inactive anyway).
    #[inline]
    fn last_op_key(&self) -> u64 {
        self.order.last().map_or(0, |&p| self.p.keys.last_op(p))
    }

    #[inline]
    fn schedule(&mut self, i: usize) {
        if self.symmetry {
            self.hash ^= self.last_op_key() ^ self.p.keys.last_op(i as u32);
        }
        self.scheduled.insert(i);
        self.remaining -= 1;
        self.order.push(i as u32);
        self.hash ^= self.p.keys.op(i);
        for &o in self.p.write_sets.row(i) {
            let old = self.last_writer[o as usize];
            self.undo.push((o, old));
            self.hash ^= self.p.keys.writer(o, old) ^ self.p.keys.writer(o, i as u32);
            self.last_writer[o as usize] = i as u32;
        }
    }

    #[inline]
    fn unschedule(&mut self, i: usize, undo_mark: usize) {
        while self.undo.len() > undo_mark {
            let (o, old) = self.undo.pop().expect("undo frame");
            let cur = self.last_writer[o as usize];
            self.hash ^= self.p.keys.writer(o, cur) ^ self.p.keys.writer(o, old);
            self.last_writer[o as usize] = old;
        }
        self.hash ^= self.p.keys.op(i);
        self.order.pop();
        self.remaining += 1;
        self.scheduled.remove(i);
        if self.symmetry {
            self.hash ^= self.p.keys.last_op(i as u32) ^ self.last_op_key();
        }
    }

    fn run_task(&mut self, members: &[u32], first: u32, cancel: &CancelCtx<'_>) -> Step {
        if first != ROOT {
            self.schedule(first as usize);
        }
        self.dfs(members, cancel)
    }

    fn dfs(&mut self, members: &[u32], cancel: &CancelCtx<'_>) -> Step {
        if self.remaining == 0 {
            return Step::Admissible;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            return Step::Limit;
        }
        if self.nodes & CANCEL_CHECK_MASK == 0 {
            cancel
                .board
                .spent
                .fetch_add(CANCEL_CHECK_MASK + 1, Ordering::Relaxed);
            if cancel.cancelled() {
                return Step::Cancelled;
            }
        }
        if self.memoize && self.table.check_and_insert(self.hash) {
            return Step::Refuted;
        }
        // Symmetry reduction: with `p` scheduled last, a schedulable `j < p`
        // independent of `p` is skipped — the schedule continuing `…, j, p`
        // (identical state, canonical order) covers it.
        let last = if self.symmetry {
            self.order.last().copied()
        } else {
            None
        };
        for &iu in members {
            let i = iu as usize;
            if self.scheduled.contains(i) {
                continue;
            }
            if !self
                .p
                .preds
                .row(i)
                .iter()
                .all(|&q| self.scheduled.contains(q as usize))
            {
                continue;
            }
            if !self
                .p
                .read_reqs
                .row(i)
                .iter()
                .all(|&(o, w)| self.last_writer[o as usize] == w)
            {
                continue;
            }
            if let Some(p) = last {
                if iu < p && self.p.indep[p as usize].contains(i) {
                    self.symmetry_skips += 1;
                    continue;
                }
            }
            let mark = self.undo.len();
            self.schedule(i);
            match self.dfs(members, cancel) {
                Step::Refuted => self.unschedule(i, mark),
                done => return done,
            }
        }
        Step::Refuted
    }
}

fn worker_loop(
    me: usize,
    queues: &[Mutex<VecDeque<Task>>],
    board: &Board,
    plans: &[ComponentPlan],
    problem: &SearchProblem,
    limits: SearchLimits,
) {
    let mut ctx = SearchContext::new(problem, limits);
    loop {
        // Own queue first (front), then steal from the back of others.
        let mut task = queues[me].lock().expect("task queue").pop_front();
        if task.is_none() {
            for other in queues.iter() {
                task = other.lock().expect("task queue").pop_back();
                if task.is_some() {
                    break;
                }
            }
        }
        let Some(task) = task else { break };
        if board.is_cancelled(task.comp, task.branch) {
            continue;
        }
        let plan = &plans[task.comp];
        ctx.load(plan);
        let cancel = CancelCtx {
            board,
            comp: task.comp,
            branch: task.branch,
        };
        let step = ctx.run_task(&plan.members, task.first, &cancel);
        board
            .spent
            .fetch_add(ctx.nodes & CANCEL_CHECK_MASK, Ordering::Relaxed);
        if step == Step::Cancelled {
            continue;
        }
        let result = BranchResult {
            step,
            nodes: ctx.nodes,
            memo_hits: ctx.table.hits(),
            memo_peak: ctx.table.peak_occupancy() as u64,
            memo_saturated: ctx.table.saturated(),
            symmetry_skips: ctx.symmetry_skips,
            order: if step == Step::Admissible {
                ctx.order.clone()
            } else {
                Vec::new()
            },
        };
        board.on_done(task, result, plans, limits);
    }
}

/// Runs the component plans to a verdict. Returns the engine's share of the
/// statistics (`nodes`, `memo_hits`, `memo_peak`, `memo_saturated`,
/// `peeled`); callers fill in `components` and `forced_edges`.
pub(crate) fn execute(
    problem: &SearchProblem,
    plans: &[ComponentPlan],
    limits: SearchLimits,
) -> (SearchOutcome, SearchStats) {
    // Components at or past the first peel refutation never run: the fold
    // stops there.
    let comp_stop = plans
        .iter()
        .position(|p| p.refuted_in_peel)
        .unwrap_or(usize::MAX);
    let mut tasks = Vec::new();
    for (c, plan) in plans.iter().enumerate() {
        if c >= comp_stop && comp_stop != usize::MAX {
            break;
        }
        for (b, &first) in plan.branches.iter().enumerate() {
            tasks.push(Task {
                comp: c,
                branch: b,
                first,
            });
        }
    }

    let board = Board::new(plans, comp_stop);
    let threads = limits.threads.max(1).min(tasks.len().max(1));
    if threads > 1 {
        // Breadth-first deal order: every component's branch 0 (the likely
        // canonical winner) before any branch 1, so workers fan out across
        // components instead of all grinding the first component's
        // alternatives. Sequentially the fold order itself is waste-free,
        // so the single-threaded path keeps it.
        tasks.sort_by_key(|t| (t.branch, t.comp));
    }
    let queues: Vec<Mutex<VecDeque<Task>>> = (0..threads)
        .map(|w| {
            Mutex::new(
                tasks
                    .iter()
                    .skip(w)
                    .step_by(threads)
                    .copied()
                    .collect::<VecDeque<_>>(),
            )
        })
        .collect();

    if threads <= 1 {
        worker_loop(0, &queues, &board, plans, problem, limits);
    } else {
        crossbeam::thread::scope(|s| {
            for w in 0..threads {
                let queues = &queues;
                let board = &board;
                s.spawn(move || worker_loop(w, queues, board, plans, problem, limits));
            }
        });
    }

    let results = board.results.into_inner().expect("engine board poisoned");
    let f = fold(plans, &results, limits);
    let outcome = f
        .outcome
        .expect("every result on the decision path is recorded");
    let stats = SearchStats {
        nodes: f.nodes,
        memo_hits: f.memo_hits,
        memo_peak: f.memo_peak,
        memo_saturated: f.memo_saturated,
        symmetry_skips: f.symmetry_skips,
        peeled: f.peeled,
        ..SearchStats::default()
    };
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zobrist_keys_are_deterministic_and_distinct() {
        let a = ZobristKeys::new(8, 3);
        let b = ZobristKeys::new(8, 3);
        for i in 0..8 {
            assert_eq!(a.op(i), b.op(i));
        }
        assert_eq!(a.writer(2, NONE), b.writer(2, NONE));
        let mut all: Vec<u64> = (0..8).map(|i| a.op(i)).collect();
        for obj in 0..3u32 {
            all.push(a.writer(obj, NONE));
            for w in 0..8u32 {
                all.push(a.writer(obj, w));
            }
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "keys collide");
    }

    #[test]
    fn transposition_table_hits_on_reinsert() {
        let mut t = TranspositionTable::new(1 << 10);
        assert!(!t.check_and_insert(42));
        assert!(t.check_and_insert(42));
        assert_eq!(t.hits(), 1);
        assert!(!t.check_and_insert(43));
        assert_eq!(t.peak_occupancy(), 2);
        assert!(!t.saturated());
    }

    #[test]
    fn transposition_table_grows_then_evicts_at_cap() {
        let mut t = TranspositionTable::new(64);
        for h in 0..64u64 {
            assert!(!t.check_and_insert(h.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        }
        assert!(t.saturated(), "cap of 64 entries forces eviction");
        // Post-eviction the table is logically empty again.
        assert!(!t.check_and_insert(12345));
        assert!(t.check_and_insert(12345));
    }

    #[test]
    fn table_reset_clears_stats_and_entries() {
        let mut t = TranspositionTable::new(1 << 10);
        t.check_and_insert(7);
        t.check_and_insert(7);
        t.reset();
        assert_eq!(t.hits(), 0);
        assert_eq!(t.peak_occupancy(), 0);
        assert!(!t.check_and_insert(7), "entries evicted by reset");
    }

    #[test]
    fn generation_eviction_survives_many_resets() {
        let mut t = TranspositionTable::new(32);
        for round in 0..100u64 {
            t.reset();
            for h in 0..16u64 {
                assert!(!t.check_and_insert((round << 32) | (h + 1)));
            }
        }
    }
}
