//! Database schedules and the Theorem 2 reduction.
//!
//! Section 3 proves m-linearizability NP-complete by reduction from *strict
//! view serializability* of database schedules: given a schedule `S`, build
//! a distributed system with one process per transaction, each executing a
//! single m-operation whose operations are the transaction's actions; then
//! `S` is strict view serializable iff the constructed history is
//! m-linearizable. Likewise, `S` is view serializable iff the history is
//! m-sequentially consistent (process orders are trivial with one
//! m-operation per process, leaving exactly the view conditions).
//!
//! The paper augments the schedule with an initial transaction `T0` writing
//! every entity and a final transaction `T∞` reading every entity. Here
//! `T0` maps onto the model's *imaginary initial m-operation* (reads of an
//! unwritten entity become reads of the initial value), and `T∞` becomes an
//! explicit final m-operation invoked after every other event.

use serde::{Deserialize, Serialize};

use moc_core::history::History;
use moc_core::ids::{MOpId, ObjectId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::op::CompletedOp;
use moc_core::relations::{reads_from, real_time, Relation};

use crate::admissible::{find_legal_extension, SearchLimits, SearchOutcome};

/// A read or write action of some transaction, in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActionKind {
    /// The transaction reads the entity.
    Read,
    /// The transaction writes the entity.
    Write,
}

/// One action of a database schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Action {
    /// Index of the issuing transaction (`0..num_transactions`).
    pub txn: usize,
    /// Read or write.
    pub kind: ActionKind,
    /// The entity accessed.
    pub entity: ObjectId,
}

impl Action {
    /// Shorthand for a read action.
    pub fn read(txn: usize, entity: ObjectId) -> Self {
        Action {
            txn,
            kind: ActionKind::Read,
            entity,
        }
    }

    /// Shorthand for a write action.
    pub fn write(txn: usize, entity: ObjectId) -> Self {
        Action {
            txn,
            kind: ActionKind::Write,
            entity,
        }
    }
}

/// A totally-ordered database schedule over `num_entities` entities and
/// `num_transactions` transactions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    num_entities: usize,
    num_transactions: usize,
    actions: Vec<Action>,
}

/// Errors constructing a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// An action references a transaction index `>= num_transactions`.
    TxnOutOfRange(usize),
    /// An action references an entity `>= num_entities`.
    EntityOutOfRange(ObjectId),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::TxnOutOfRange(t) => write!(f, "transaction T{t} out of range"),
            ScheduleError::EntityOutOfRange(e) => write!(f, "entity {e} out of range"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Validates and wraps a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if an action references a transaction or
    /// entity outside the declared ranges.
    pub fn new(
        num_entities: usize,
        num_transactions: usize,
        actions: Vec<Action>,
    ) -> Result<Self, ScheduleError> {
        for a in &actions {
            if a.txn >= num_transactions {
                return Err(ScheduleError::TxnOutOfRange(a.txn));
            }
            if a.entity.index() >= num_entities {
                return Err(ScheduleError::EntityOutOfRange(a.entity));
            }
        }
        Ok(Schedule {
            num_entities,
            num_transactions,
            actions,
        })
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.num_entities
    }

    /// Number of transactions.
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// The actions in schedule order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// The Theorem 2 construction: one process per transaction (plus one for
    /// the final transaction `T∞`), each executing a single m-operation.
    /// The first and last actions of a transaction define its invocation and
    /// response events, so two transactions are non-overlapping in the
    /// schedule iff the corresponding m-operations are non-overlapping in
    /// the history.
    pub fn to_history(&self) -> History {
        // Last writer per entity as we sweep the schedule; None = T0
        // (mapped onto the imaginary initial m-operation).
        let mut last_writer: Vec<Option<MOpId>> = vec![None; self.num_entities];
        // Version counters so protocol-level provenance stays coherent.
        let mut version: Vec<u64> = vec![0; self.num_entities];
        // Value written is the action position + 1, making writes unique.
        let mut ops: Vec<Vec<CompletedOp>> = vec![Vec::new(); self.num_transactions];
        let mut first_pos: Vec<Option<u64>> = vec![None; self.num_transactions];
        let mut last_pos: Vec<u64> = vec![0; self.num_transactions];
        // Track each transaction's own pending write so an internal read
        // (read after own write) is attributed to itself.
        let mut values: Vec<i64> = vec![0; self.num_entities];

        for (pos, a) in self.actions.iter().enumerate() {
            let pos_t = pos as u64;
            let id = MOpId::new(ProcessId::new(a.txn as u32), 0);
            first_pos[a.txn].get_or_insert(pos_t);
            last_pos[a.txn] = pos_t;
            match a.kind {
                ActionKind::Read => {
                    let writer = last_writer[a.entity.index()].unwrap_or(MOpId::INITIAL);
                    ops[a.txn].push(CompletedOp::read(
                        a.entity,
                        values[a.entity.index()],
                        writer,
                        version[a.entity.index()],
                    ));
                }
                ActionKind::Write => {
                    let v = (pos + 1) as i64;
                    values[a.entity.index()] = v;
                    version[a.entity.index()] += 1;
                    last_writer[a.entity.index()] = Some(id);
                    ops[a.txn].push(CompletedOp::write(
                        a.entity,
                        v,
                        id,
                        version[a.entity.index()],
                    ));
                }
            }
        }

        let mut records = Vec::with_capacity(self.num_transactions + 1);
        for t in 0..self.num_transactions {
            let Some(first) = first_pos[t] else {
                continue; // transaction never acts; omit it
            };
            let id = MOpId::new(ProcessId::new(t as u32), 0);
            records.push(MOpRecord {
                id,
                // Scale positions so invocation and response never collide.
                invoked_at: EventTime::from_nanos(first * 10),
                responded_at: EventTime::from_nanos(last_pos[t] * 10 + 5),
                ops: std::mem::take(&mut ops[t]),
                outputs: Vec::new(),
                treated_as: MOpClass::Update,
                label: format!("T{t}"),
            });
        }

        // T∞: reads every entity from its final writer, after everything.
        let horizon = (self.actions.len() as u64) * 10 + 100;
        let tinf_id = MOpId::new(ProcessId::new(self.num_transactions as u32), 0);
        let tinf_ops: Vec<CompletedOp> = (0..self.num_entities)
            .map(|e| {
                let obj = ObjectId::new(e as u32);
                CompletedOp::read(
                    obj,
                    values[e],
                    last_writer[e].unwrap_or(MOpId::INITIAL),
                    version[e],
                )
            })
            .collect();
        records.push(MOpRecord {
            id: tinf_id,
            invoked_at: EventTime::from_nanos(horizon),
            responded_at: EventTime::from_nanos(horizon + 5),
            ops: tinf_ops,
            outputs: Vec::new(),
            treated_as: MOpClass::Query,
            label: "T-inf".into(),
        });

        History::new(self.num_entities, records)
            .expect("Theorem 2 construction always yields a well-formed history")
    }

    /// Whether the schedule is *view serializable*: view equivalent to some
    /// serial schedule. Via the reduction, this is m-sequential consistency
    /// of the constructed history (reads-from relation only — process
    /// orders are trivial).
    ///
    /// Worst-case exponential (the problem is NP-complete).
    pub fn is_view_serializable(&self, limits: SearchLimits) -> Option<bool> {
        let h = self.to_history();
        let rel = self.view_relation(&h);
        match find_legal_extension(&h, &rel, limits).0 {
            SearchOutcome::Admissible(_) => Some(true),
            SearchOutcome::NotAdmissible => Some(false),
            SearchOutcome::LimitExceeded => None,
        }
    }

    /// Whether the schedule is *strict view serializable*: view equivalent
    /// to a serial schedule that preserves the order of non-overlapping
    /// transactions. Via the Theorem 2 reduction, this is m-linearizability
    /// of the constructed history.
    ///
    /// Worst-case exponential (Theorem 2: NP-complete even with the
    /// reads-from relation known).
    pub fn is_strict_view_serializable(&self, limits: SearchLimits) -> Option<bool> {
        let h = self.to_history();
        let rel = reads_from(&h).union(&real_time(&h));
        match find_legal_extension(&h, &rel, limits).0 {
            SearchOutcome::Admissible(_) => Some(true),
            SearchOutcome::NotAdmissible => Some(false),
            SearchOutcome::LimitExceeded => None,
        }
    }

    /// A serialization order of the transactions if one exists (view
    /// serializability witness): transaction indices in serial order, with
    /// `num_transactions` standing for `T∞`.
    pub fn serialization_witness(&self, limits: SearchLimits) -> Option<Vec<usize>> {
        let h = self.to_history();
        let rel = self.view_relation(&h);
        match find_legal_extension(&h, &rel, limits).0 {
            SearchOutcome::Admissible(w) => Some(
                w.into_iter()
                    .map(|idx| h.record(idx).process().index())
                    .collect(),
            ),
            _ => None,
        }
    }

    /// The relation for view serializability: reads-from, plus `T∞` pinned
    /// after every transaction (the augmented schedule's final transaction
    /// must stay final in any view-equivalent serial schedule; real time,
    /// which enforces this for the strict variant, is deliberately absent
    /// here).
    fn view_relation(&self, h: &History) -> Relation {
        let mut rel = reads_from(h);
        let tinf = h
            .idx_of(MOpId::new(ProcessId::new(self.num_transactions as u32), 0))
            .expect("T∞ is always present");
        for (i, _) in h.iter() {
            if i != tinf {
                rel.add(i, tinf);
            }
        }
        rel
    }
}

/// Builds the classic "conflict matters" relation: a [`Relation`] over the
/// constructed history that orders transactions by conflicting access in
/// schedule order. Acyclicity of this relation is *conflict
/// serializability* — strictly stronger than view serializability; exposed
/// for comparison in tests and benchmarks.
pub fn conflict_relation(s: &Schedule, h: &History) -> Relation {
    let mut rel = Relation::new(h.len());
    let n = s.actions.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (s.actions[i], s.actions[j]);
            if a.txn != b.txn
                && a.entity == b.entity
                && (a.kind == ActionKind::Write || b.kind == ActionKind::Write)
            {
                let pa = h.idx_of(MOpId::new(ProcessId::new(a.txn as u32), 0));
                let pb = h.idx_of(MOpId::new(ProcessId::new(b.txn as u32), 0));
                if let (Some(pa), Some(pb)) = (pa, pb) {
                    rel.add(pa, pb);
                }
            }
        }
    }
    rel
}

/// Whether the schedule is conflict serializable (precedence graph acyclic).
pub fn is_conflict_serializable(s: &Schedule) -> bool {
    let h = s.to_history();
    !conflict_relation(s, &h).has_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn limits() -> SearchLimits {
        SearchLimits::default()
    }

    /// r1(x) w2(x) w1(x): the lost-update anomaly. Not serializable in any
    /// sense: T1 reads x before T2's write but overwrites it after; T∞ and
    /// the final-write condition expose it.
    ///
    /// Serial T1 T2: final writer is T2 — but the schedule's final writer
    /// is T1. Serial T2 T1: T1 must read T2's write — but it read initial.
    #[test]
    fn lost_update_is_not_view_serializable() {
        let s = Schedule::new(
            1,
            2,
            vec![
                Action::read(0, e(0)),
                Action::write(1, e(0)),
                Action::write(0, e(0)),
            ],
        )
        .unwrap();
        assert_eq!(s.is_view_serializable(limits()), Some(false));
        assert_eq!(s.is_strict_view_serializable(limits()), Some(false));
        assert!(!is_conflict_serializable(&s));
    }

    /// w1(x) r2(x) w2(y) r1(y): T2 reads T1's x (⇒ T1 before T2) and T1
    /// reads T2's y (⇒ T2 before T1) — a reads-from cycle. Not serializable
    /// in any sense.
    #[test]
    fn rw_cycle_is_not_serializable() {
        let s = Schedule::new(
            2,
            2,
            vec![
                Action::write(0, e(0)),
                Action::read(1, e(0)),
                Action::write(1, e(1)),
                Action::read(0, e(1)),
            ],
        )
        .unwrap();
        assert_eq!(s.is_view_serializable(limits()), Some(false));
        assert_eq!(s.is_strict_view_serializable(limits()), Some(false));
        assert!(!is_conflict_serializable(&s));
        assert!(s.serialization_witness(limits()).is_none());
    }

    /// w1(x) r2(x) w2(y): no cycle — serial order T1 T2 works, and the
    /// witness reports it (with T∞ last).
    #[test]
    fn acyclic_reads_from_is_serializable() {
        let s = Schedule::new(
            2,
            2,
            vec![
                Action::write(0, e(0)),
                Action::read(1, e(0)),
                Action::write(1, e(1)),
            ],
        )
        .unwrap();
        assert_eq!(s.is_view_serializable(limits()), Some(true));
        assert_eq!(s.is_strict_view_serializable(limits()), Some(true));
        assert!(is_conflict_serializable(&s));
        let w = s.serialization_witness(limits()).unwrap();
        assert_eq!(w, vec![0, 1, 2]); // T1, T2, then T∞
    }

    /// The canonical view-but-not-conflict-serializable schedule (blind
    /// writes): w1(x) w2(x) w2(y) w1(y) w3(x) w3(y)... simplified classic:
    /// r1(x) w2(x) w1(x) w3(x) — T3's blind final write hides the lost
    /// update from the view test? Here: view serializable as T2 T1 T3.
    #[test]
    fn blind_writes_view_but_not_conflict_serializable() {
        let s = Schedule::new(
            1,
            3,
            vec![
                Action::read(0, e(0)),  // r1(x): reads initial
                Action::write(1, e(0)), // w2(x)
                Action::write(0, e(0)), // w1(x)
                Action::write(2, e(0)), // w3(x): final blind write
            ],
        )
        .unwrap();
        // View: serial T1 T2 T3 — T1 reads initial ✓; final writer T3 ✓;
        // no other reads. View serializable.
        assert_eq!(s.is_view_serializable(limits()), Some(true));
        // Conflict: r1(x) < w2(x) gives T1<T2; w2(x) < w1(x) gives T2<T1 —
        // cycle.
        assert!(!is_conflict_serializable(&s));
    }

    /// Two single-action transactions in either order are both view and
    /// strict view serializable: the schedule order itself is a witness.
    #[test]
    fn sequential_transactions_are_serializable() {
        let write_then_read =
            Schedule::new(1, 2, vec![Action::write(0, e(0)), Action::read(1, e(0))]).unwrap();
        let read_then_write =
            Schedule::new(1, 2, vec![Action::read(1, e(0)), Action::write(0, e(0))]).unwrap();
        for s in [&write_then_read, &read_then_write] {
            assert_eq!(s.is_view_serializable(limits()), Some(true));
            assert_eq!(s.is_strict_view_serializable(limits()), Some(true));
        }
    }

    /// View serializable but NOT strict view serializable: the only
    /// view-equivalent serial order inverts two non-overlapping
    /// transactions.
    ///
    ///   pos0: r3(x)  — T3 reads the initial x, so T3 must serialize
    ///                  before T1.
    ///   pos1: w1(x)  — T1 = [pos1..pos1]
    ///   pos2: w2(y)  — T2 = [pos2..pos2]; T1 strictly precedes T2.
    ///   pos3: r3(y)  — T3 reads T2's y, so T2 must serialize before T3;
    ///                  T3 spans [pos0..pos3], overlapping both.
    ///
    /// The view constraints force T2 < T3 < T1, but T1 finished before T2
    /// started — strict view serializability additionally demands T1 < T2.
    #[test]
    fn strict_view_violation() {
        let s = Schedule::new(
            2,
            3,
            vec![
                Action::read(2, e(0)),
                Action::write(0, e(0)),
                Action::write(1, e(1)),
                Action::read(2, e(1)),
            ],
        )
        .unwrap();
        assert_eq!(s.is_view_serializable(limits()), Some(true));
        assert_eq!(s.is_strict_view_serializable(limits()), Some(false));
    }

    #[test]
    fn schedule_validation() {
        assert!(matches!(
            Schedule::new(1, 1, vec![Action::read(3, e(0))]),
            Err(ScheduleError::TxnOutOfRange(3))
        ));
        assert!(matches!(
            Schedule::new(1, 1, vec![Action::read(0, e(5))]),
            Err(ScheduleError::EntityOutOfRange(_))
        ));
    }

    #[test]
    fn history_construction_shape() {
        let s = Schedule::new(
            2,
            2,
            vec![
                Action::write(0, e(0)),
                Action::read(1, e(0)),
                Action::write(1, e(1)),
            ],
        )
        .unwrap();
        let h = s.to_history();
        // T0 is the imaginary initial op (not a record); records are T1, T2
        // and T∞.
        assert_eq!(h.len(), 3);
        let tinf = h.record(moc_core::history::MOpIdx(2));
        assert_eq!(tinf.label, "T-inf");
        assert_eq!(tinf.ops.len(), 2);
        // T∞ reads x from T1 and y from T2.
        assert_eq!(tinf.ops[0].writer, MOpId::new(ProcessId::new(0), 0));
        assert_eq!(tinf.ops[1].writer, MOpId::new(ProcessId::new(1), 0));
        // Non-overlap: T1 responds before T2's read? T1=[0..0] scaled
        // [0..5], T2=[10..25]: non-overlapping.
        assert!(
            h.record(moc_core::history::MOpIdx(0)).responded_at
                < h.record(moc_core::history::MOpIdx(1)).invoked_at
        );
    }

    #[test]
    fn empty_transactions_are_omitted() {
        let s = Schedule::new(1, 3, vec![Action::write(1, e(0))]).unwrap();
        let h = s.to_history();
        assert_eq!(h.len(), 2); // T1 and T∞ only
    }
}
