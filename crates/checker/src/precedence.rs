//! History-level precedence-graph analysis: the logical read-write
//! precedence `~rw` (D 4.11) and the extended relation `~H+` (D 4.12)
//! materialized over *any* history, with SCC condensation, forced-edge
//! derivation, and the statically-pruned admissibility search built on top.
//!
//! The paper uses `~rw` only on constraint-satisfying histories (where
//! Theorem 7 collapses admissibility to legality). This module applies the
//! same machinery to arbitrary histories:
//!
//! * Every pair in the saturated closure is a **forced edge** — ordered the
//!   same way in *every* legal linearization. The saturation iterates D 4.11
//!   to a fixpoint: each new `~rw` edge can order more `(β, γ)` pairs, which
//!   in turn force more `~rw` edges. One iteration is exactly the paper's
//!   `~H+`; the fixpoint is a sound superset.
//! * A cycle in the saturated graph is a **polynomial refutation**: the
//!   history is not admissible, and the cycle (with each `~rw` edge's
//!   interference justification) is an independently checkable core — the
//!   negative counterpart of a witness schedule.
//! * When the graph is acyclic, the search exploits it three ways: forced
//!   edges become extra precedence constraints (pruning interleavings),
//!   m-operations that neither share an object nor are `~H+`-related split
//!   into **independent components** searched separately (turning a product
//!   state space into a sum), and elements forced before everything else in
//!   their component are **peeled** as a fixed prefix without search.

use std::collections::HashSet;

use moc_core::history::{History, MOpIdx};
use moc_core::ids::ObjectId;
use moc_core::relations::{object_order, real_time, Relation};

use crate::admissible::{SearchLimits, SearchOutcome, SearchStats};
use crate::conditions::Condition;
use crate::engine::{self, ComponentPlan, SearchProblem};

/// Why an edge is in the precedence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// An edge of a caller-supplied relation (provenance unknown).
    Base,
    /// Process order `~p`: same process, consecutive sequence numbers.
    Process,
    /// Reads-from `~rf`: the target reads some object from the source.
    ReadsFrom,
    /// Real-time order `~t` (m-linearizability only).
    RealTime,
    /// Object order `~x` (m-normality only).
    ObjectOrder,
    /// Logical read-write precedence `~rw` (D 4.11): the source reads `obj`
    /// from `beta` (`None` = the initial m-operation) and the target also
    /// writes `obj`, with `beta` already ordered before the target.
    ReadWrite {
        /// The m-operation read from (`None` = initial).
        beta: Option<MOpIdx>,
        /// The object whose version would be overwritten.
        obj: ObjectId,
    },
}

/// A directed edge of the precedence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source m-operation.
    pub from: MOpIdx,
    /// Target m-operation.
    pub to: MOpIdx,
    /// Why the edge holds.
    pub kind: EdgeKind,
}

/// The saturated precedence graph of a history: base relation edges plus
/// all `~rw` edges derivable by iterating D 4.11 to a fixpoint.
#[derive(Debug, Clone)]
pub struct PrecedenceGraph {
    n: usize,
    edges: Vec<Edge>,
    /// Number of leading base (`~H`) edges in `edges`; the rest are `~rw`.
    base_edges: usize,
    /// Transitive closure of the direct edge set — the fixpoint `~H+`.
    /// Every pair in here is forced in every legal linearization.
    closed: Relation,
}

impl PrecedenceGraph {
    /// Builds and saturates the graph for a condition's base relation
    /// (process order and reads-from, plus real-time for m-linearizability
    /// or object order for m-normality). Edges carry auditable reasons.
    pub fn for_condition(h: &History, condition: Condition) -> Self {
        let mut edges = Vec::new();
        for p in h.processes() {
            let idxs = h.by_process(p);
            for w in idxs.windows(2) {
                edges.push(Edge {
                    from: w[0],
                    to: w[1],
                    kind: EdgeKind::Process,
                });
            }
        }
        for (alpha, _) in h.iter() {
            for &(_, writer) in h.read_sources(alpha) {
                if let Some(beta) = writer {
                    if beta != alpha {
                        edges.push(Edge {
                            from: beta,
                            to: alpha,
                            kind: EdgeKind::ReadsFrom,
                        });
                    }
                }
            }
        }
        match condition {
            Condition::MSequentialConsistency => {}
            Condition::MLinearizability => {
                for (a, b) in real_time(h).edges() {
                    edges.push(Edge {
                        from: a,
                        to: b,
                        kind: EdgeKind::RealTime,
                    });
                }
            }
            Condition::MNormality => {
                for (a, b) in object_order(h).edges() {
                    edges.push(Edge {
                        from: a,
                        to: b,
                        kind: EdgeKind::ObjectOrder,
                    });
                }
            }
        }
        Self::saturate(h, edges)
    }

    /// Builds and saturates the graph from an arbitrary base relation
    /// (edges carry no reasons — use [`PrecedenceGraph::for_condition`]
    /// when an auditable refutation core may be needed).
    pub fn from_relation(h: &History, relation: &Relation) -> Self {
        let edges = relation
            .edges()
            .map(|(from, to)| Edge {
                from,
                to,
                kind: EdgeKind::Base,
            })
            .collect();
        Self::saturate(h, edges)
    }

    fn saturate(h: &History, base: Vec<Edge>) -> Self {
        let n = h.len();
        let mut direct = Relation::new(n);
        let mut edges = Vec::new();
        for e in base {
            if e.from == e.to {
                // A reflexive base edge is already a (degenerate) cycle;
                // keep it so cycle detection reports it.
                direct.add(e.from, e.to);
                edges.push(e);
                continue;
            }
            if !direct.contains(e.from, e.to) {
                direct.add(e.from, e.to);
                edges.push(e);
            }
        }
        let base_edges = edges.len();

        // Fixpoint: each round closes the graph and adds every ~rw edge
        // whose premise β ~ γ now holds. Terminates because each round adds
        // at least one of at most n² edges.
        let mut closed = direct.transitive_closure();
        loop {
            let mut added = false;
            for (alpha, _) in h.iter() {
                for &(obj, writer) in h.read_sources(alpha) {
                    for &gamma in h.writers_of(obj) {
                        if gamma == alpha || Some(gamma) == writer {
                            continue;
                        }
                        if direct.contains(alpha, gamma) {
                            continue;
                        }
                        let premise = match writer {
                            None => true,
                            Some(beta) => closed.contains(beta, gamma),
                        };
                        if premise {
                            direct.add(alpha, gamma);
                            edges.push(Edge {
                                from: alpha,
                                to: gamma,
                                kind: EdgeKind::ReadWrite { beta: writer, obj },
                            });
                            added = true;
                        }
                    }
                }
            }
            if !added {
                break;
            }
            closed = direct.transitive_closure();
        }
        PrecedenceGraph {
            n,
            edges,
            base_edges,
            closed,
        }
    }

    /// Number of m-operations the graph ranges over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph ranges over zero m-operations.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All edges: base edges first, then the derived `~rw` edges in
    /// derivation order (an edge's premise is justified by strictly
    /// earlier edges).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of `~rw` edges the saturation derived — orderings forced in
    /// every legal linearization beyond the base relation.
    pub fn forced_edge_count(&self) -> usize {
        self.edges.len() - self.base_edges
    }

    /// The fixpoint closure `~H+`: contains `(i, j)` iff `i` precedes `j`
    /// in every legal linearization derivable from the base relation.
    pub fn closed(&self) -> &Relation {
        &self.closed
    }

    /// Tarjan SCC condensation of the direct edge graph. Components are in
    /// topological order; a component with more than one member (or a
    /// self-loop) certifies that no legal linearization exists.
    pub fn condensation(&self) -> Condensation {
        let succs = self.adjacency();
        let mut comps = tarjan_scc(&succs);
        comps.reverse(); // Tarjan emits reverse-topological.
        let mut comp_of = vec![0usize; self.n];
        for (c, members) in comps.iter().enumerate() {
            for &v in members {
                comp_of[v as usize] = c;
            }
        }
        Condensation {
            comp_of,
            members: comps
                .into_iter()
                .map(|ms| ms.into_iter().map(|v| v as usize).collect())
                .collect(),
        }
    }

    fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut succs = vec![Vec::new(); self.n];
        for e in &self.edges {
            succs[e.from.0].push(e.to.0 as u32);
        }
        succs
    }

    /// An inadmissibility core: a cycle of the saturated graph as edge ids
    /// into [`PrecedenceGraph::edges`], or `None` if the graph is acyclic.
    pub fn find_cycle_edges(&self) -> Option<Vec<usize>> {
        // Self-loops first (degenerate base cycles).
        if let Some(eid) = self.edges.iter().position(|e| e.from == e.to) {
            return Some(vec![eid]);
        }
        let cond = self.condensation();
        let comp = cond.members.iter().find(|ms| ms.len() > 1)?;
        // BFS inside the SCC from its first member back to itself.
        let start = comp[0];
        let in_comp = |v: usize| cond.comp_of[v] == cond.comp_of[start];
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.n];
        for (eid, e) in self.edges.iter().enumerate() {
            if in_comp(e.from.0) && in_comp(e.to.0) {
                adj[e.from.0].push((e.to.0, eid));
            }
        }
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; self.n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &(v, eid) in &adj[u] {
                if v == start {
                    // Unwind start -> ... -> u, then close with eid.
                    let mut rev = vec![eid];
                    let mut cur = u;
                    while cur != start {
                        let (p, pe) = parent[cur].expect("BFS parent");
                        rev.push(pe);
                        cur = p;
                    }
                    rev.reverse();
                    return Some(rev);
                }
                if parent[v].is_none() && v != start {
                    parent[v] = Some((u, eid));
                    queue.push_back(v);
                }
            }
        }
        unreachable!("a multi-member SCC always closes a cycle through any member")
    }

    /// A self-contained refutation core: the cycle plus, for every `~rw`
    /// edge involved, a justification path showing its premise `β ~ γ`
    /// using only strictly earlier edges. Returns `None` when the graph is
    /// acyclic.
    pub fn cycle_proof(&self) -> Option<CycleProof> {
        let cycle = self.find_cycle_edges()?;
        // Adjacency with edge ids, for premise-path reconstruction.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.n];
        for (eid, e) in self.edges.iter().enumerate() {
            adj[e.from.0].push((e.to.0, eid));
        }

        // Collect every edge the proof depends on, resolving each ~rw
        // edge's premise to a path over strictly earlier edges.
        let mut needed: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        let mut vias: Vec<Option<Vec<usize>>> = vec![None; self.edges.len()];
        let mut work: Vec<usize> = cycle.clone();
        while let Some(eid) = work.pop() {
            if !seen.insert(eid) {
                continue;
            }
            needed.push(eid);
            if let EdgeKind::ReadWrite {
                beta: Some(beta), ..
            } = self.edges[eid].kind
            {
                let gamma = self.edges[eid].to;
                let path = bfs_path(&adj, beta.0, gamma.0, eid)
                    .expect("premise held over earlier edges at derivation time");
                work.extend(path.iter().copied());
                vias[eid] = Some(path);
            }
        }
        needed.sort_unstable();
        let slot: std::collections::HashMap<usize, usize> = needed
            .iter()
            .enumerate()
            .map(|(slot, &eid)| (eid, slot))
            .collect();
        let edges = needed
            .iter()
            .map(|&eid| CycleProofEdge {
                edge: self.edges[eid].clone(),
                via: vias[eid]
                    .as_deref()
                    .unwrap_or(&[])
                    .iter()
                    .map(|dep| slot[dep])
                    .collect(),
            })
            .collect();
        Some(CycleProof {
            edges,
            cycle: cycle.into_iter().map(|eid| slot[&eid]).collect(),
        })
    }

    /// Partitions the m-operations into *independent components*: two
    /// m-operations interact when they are related by any direct edge or
    /// touch a common object. Distinct components share no ordering
    /// constraints and no legality coupling, so admissibility decomposes
    /// into one search per component.
    pub fn interaction_components(&self, h: &History) -> Vec<Vec<usize>> {
        let mut uf = UnionFind::new(self.n);
        for e in &self.edges {
            uf.union(e.from.0, e.to.0);
        }
        let mut toucher: Vec<Option<usize>> = vec![None; h.num_objects()];
        for (idx, _) in h.iter() {
            for obj in h.objects(idx) {
                match toucher[obj.index()] {
                    Some(first) => {
                        uf.union(first, idx.0);
                    }
                    None => toucher[obj.index()] = Some(idx.0),
                }
            }
        }
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for v in 0..self.n {
            by_root.entry(uf.find(v)).or_default().push(v);
        }
        // BTreeMap keyed by root ≠ sorted by min member; normalize.
        let mut comps: Vec<Vec<usize>> = by_root.into_values().collect();
        comps.sort_by_key(|ms| ms[0]);
        comps
    }
}

/// SCC condensation of a [`PrecedenceGraph`].
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component id of each m-operation (ids follow topological order).
    pub comp_of: Vec<usize>,
    /// Members of each component, in topological order of the condensation
    /// DAG. All singletons iff the graph is acyclic (no self-loops).
    pub members: Vec<Vec<usize>>,
}

/// One edge of a [`CycleProof`], with its premise justification.
#[derive(Debug, Clone)]
pub struct CycleProofEdge {
    /// The edge itself.
    pub edge: Edge,
    /// For a `~rw` edge with a non-initial `beta`: indices (into
    /// [`CycleProof::edges`], all strictly smaller than this edge's own
    /// index) forming a path `beta → … → gamma` that justifies the premise.
    /// Empty for base edges and initial-`beta` `~rw` edges.
    pub via: Vec<usize>,
}

/// A polynomial refutation core: an explicit `~H+` cycle together with the
/// justification edges its `~rw` members depend on.
#[derive(Debug, Clone)]
pub struct CycleProof {
    /// All edges the proof mentions, in dependency order.
    pub edges: Vec<CycleProofEdge>,
    /// Indices into `edges` forming the cycle (each edge's target is the
    /// next edge's source, wrapping around).
    pub cycle: Vec<usize>,
}

/// BFS for a path `from → … → to` using only edges with id < `max_edge`,
/// returned as edge ids. `None` if unreachable under that restriction.
fn bfs_path(
    adj: &[Vec<(usize, usize)>],
    from: usize,
    to: usize,
    max_edge: usize,
) -> Option<Vec<usize>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &(v, eid) in &adj[u] {
            if eid >= max_edge || parent[v].is_some() || v == from {
                continue;
            }
            parent[v] = Some((u, eid));
            if v == to {
                let mut rev = Vec::new();
                let mut cur = v;
                while cur != from {
                    let (p, pe) = parent[cur].unwrap();
                    rev.push(pe);
                    cur = p;
                }
                rev.reverse();
                return Some(rev);
            }
            queue.push_back(v);
        }
    }
    None
}

/// Tarjan's strongly-connected components over an adjacency list, iterative
/// (no recursion), components emitted in reverse topological order.
///
/// This is the workspace's one shared cycle-detection kernel: the
/// admissibility search, the condensation and the refutation-core
/// extraction all go through it.
pub fn tarjan_scc(succs: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = succs.len();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comps = Vec::new();

    // Explicit DFS frames: (vertex, next successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            if let Some(&w) = succs[v as usize].get(*pos) {
                *pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// Whether the digraph given as an adjacency list contains a cycle
/// (including self-loops). The shared kernel behind the searches'
/// up-front acyclicity guard.
pub fn adjacency_has_cycle(succs: &[Vec<u32>]) -> bool {
    if succs
        .iter()
        .enumerate()
        .any(|(v, ws)| ws.iter().any(|&w| w as usize == v))
    {
        return true;
    }
    tarjan_scc(succs).iter().any(|c| c.len() > 1)
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, v: usize) -> usize {
        let mut root = v;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = v;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb.max(ra)] = rb.min(ra);
        }
    }
}

/// The statically-pruned admissibility search: saturates the precedence
/// graph over `relation`, refutes on a `~H+` cycle, then searches each
/// independent component separately with forced-prefix peeling. Returns the
/// same verdict as [`crate::admissible::find_legal_extension`] on every
/// input (witnesses may differ; both are valid).
pub fn find_legal_extension_pruned(
    h: &History,
    relation: &Relation,
    limits: SearchLimits,
) -> (SearchOutcome, SearchStats) {
    let graph = PrecedenceGraph::from_relation(h, relation);
    pruned_search(h, &graph, limits)
}

/// Like [`find_legal_extension_pruned`], but over a pre-built graph (so
/// callers that also need certificates saturate only once).
///
/// Execution is delegated to the parallel engine ([`crate::engine`]): each
/// interaction component is peeled to its forced prefix, its branch
/// frontier (the legal first moves) becomes work-stealable tasks, and the
/// deterministic fold over (component, branch) results yields the same
/// verdict, canonical witness and statistics at every
/// [`SearchLimits::threads`] setting.
pub fn pruned_search(
    h: &History,
    graph: &PrecedenceGraph,
    limits: SearchLimits,
) -> (SearchOutcome, SearchStats) {
    let n = h.len();
    let mut stats = SearchStats {
        forced_edges: graph.forced_edge_count() as u64,
        ..SearchStats::default()
    };
    if n == 0 {
        return (SearchOutcome::Admissible(Vec::new()), stats);
    }
    if graph.find_cycle_edges().is_some() {
        // A ~H+ cycle refutes admissibility outright (every legal
        // linearization would have to respect all forced edges).
        return (SearchOutcome::NotAdmissible, stats);
    }

    let edges: Vec<(u32, u32)> = graph
        .edges()
        .iter()
        .map(|e| (e.from.0 as u32, e.to.0 as u32))
        .collect();
    let problem = SearchProblem::new(h, &edges);

    let comps = graph.interaction_components(h);
    stats.components = comps.len() as u64;

    // Compile each component: peel the forced prefix, then enumerate the
    // branch frontier. Objects never span components, so each component's
    // last-writer state is independent of the others.
    let mut plans = Vec::with_capacity(comps.len());
    for comp in &comps {
        let mut remaining: Vec<usize> = comp.clone();
        let mut peeled_order: Vec<u32> = Vec::new();
        let mut last_writer: Vec<u32> = vec![engine::NONE; h.num_objects()];
        let mut refuted = false;

        // Forced-prefix peeling: an element ordered (in ~H+) before every
        // other remaining member must come next in every witness — schedule
        // it without search, or refute if its reads cannot be legal.
        while let Some(pos) = remaining.iter().position(|&u| {
            remaining
                .iter()
                .all(|&v| v == u || graph.closed.contains(MOpIdx(u), MOpIdx(v)))
        }) {
            let u = remaining.swap_remove(pos);
            if !problem
                .read_reqs
                .row(u)
                .iter()
                .all(|&(obj, w)| last_writer[obj as usize] == w)
            {
                refuted = true;
                break;
            }
            for &o in problem.write_sets.row(u) {
                last_writer[o as usize] = u as u32;
            }
            peeled_order.push(u as u32);
            if remaining.is_empty() {
                break;
            }
        }
        remaining.sort_unstable();
        let members: Vec<u32> = remaining.iter().map(|&u| u as u32).collect();
        let peeled = peeled_order.len() as u64;
        plans.push(ComponentPlan::build(
            &problem,
            peeled_order,
            members,
            refuted,
            peeled,
        ));
    }

    let (outcome, engine_stats) = engine::execute(&problem, &plans, limits);
    stats.nodes = engine_stats.nodes;
    stats.memo_hits = engine_stats.memo_hits;
    stats.memo_peak = engine_stats.memo_peak;
    stats.memo_saturated = engine_stats.memo_saturated;
    stats.symmetry_skips = engine_stats.symmetry_skips;
    stats.peeled = engine_stats.peeled;
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admissible::find_legal_extension;
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::ProcessId;
    use moc_core::legality::sequence_witnesses_admissibility;
    use moc_core::relations::{process_order, reads_from};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn m(i: usize) -> MOpIdx {
        MOpIdx(i)
    }

    /// Figure 2's H1 (α, β on P1; γ, δ on P2; WW edges α<γ<δ).
    fn figure2() -> (History, Relation) {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(1)).at(0, 10).read_init(x).write(y, 2).finish();
        b.mop(pid(1)).at(20, 60).read_from(y, 2, alpha).finish();
        b.mop(pid(2)).at(15, 25).write(x, 1).finish();
        b.mop(pid(2)).at(30, 40).write(y, 3).finish();
        let h = b.build().unwrap();
        let mut rel = process_order(&h).union(&reads_from(&h));
        rel.add(m(0), m(2));
        rel.add(m(2), m(3));
        (h, rel)
    }

    /// The classic SC litmus: its ~H+ fixpoint is cyclic.
    fn litmus() -> (History, Relation) {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(0)).at(20, 30).read_init(y).finish();
        b.mop(pid(1)).at(0, 10).write(y, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        (h, rel)
    }

    #[test]
    fn figure2_derives_the_figure3_forced_edge() {
        let (h, rel) = figure2();
        let g = PrecedenceGraph::from_relation(&h, &rel);
        // β ~rw δ: δ writes y, which β reads from α, and α ~H δ.
        assert!(g.closed().contains(m(1), m(3)));
        assert!(g.forced_edge_count() >= 1);
        assert!(g.find_cycle_edges().is_none());
        let cond = g.condensation();
        assert!(cond.members.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn litmus_cycle_is_refuted_without_search() {
        let (h, rel) = litmus();
        let g = PrecedenceGraph::from_relation(&h, &rel);
        let cycle = g.find_cycle_edges().expect("litmus has a ~H+ cycle");
        assert!(cycle.len() >= 2);
        // The cycle is a closed walk over the graph's edges.
        for (k, &eid) in cycle.iter().enumerate() {
            let next = cycle[(k + 1) % cycle.len()];
            assert_eq!(g.edges()[eid].to, g.edges()[next].from);
        }
        let (out, stats) = pruned_search(&h, &g, SearchLimits::default());
        assert_eq!(out, SearchOutcome::NotAdmissible);
        assert_eq!(stats.nodes, 0, "refuted statically");
    }

    #[test]
    fn cycle_proof_justifies_rw_premises() {
        let (h, rel) = litmus();
        let g = PrecedenceGraph::from_relation(&h, &rel);
        let proof = g.cycle_proof().expect("cyclic");
        assert!(!proof.cycle.is_empty());
        for (slot, pe) in proof.edges.iter().enumerate() {
            for &dep in &pe.via {
                assert!(dep < slot, "justification must precede its use");
            }
            if let EdgeKind::ReadWrite {
                beta: Some(beta), ..
            } = pe.edge.kind
            {
                // The via path must chain beta -> ... -> gamma.
                let mut cur = beta;
                for &dep in &pe.via {
                    assert_eq!(proof.edges[dep].edge.from, cur);
                    cur = proof.edges[dep].edge.to;
                }
                assert_eq!(cur, pe.edge.to);
            }
        }
    }

    #[test]
    fn components_split_object_disjoint_subhistories() {
        // Two disjoint copies of a write/read pair.
        let mut b = HistoryBuilder::new(2);
        let w0 = b.mop(pid(0)).at(0, 10).write(oid(0), 1).finish();
        b.mop(pid(1)).at(20, 30).read_from(oid(0), 1, w0).finish();
        let w1 = b.mop(pid(2)).at(0, 10).write(oid(1), 5).finish();
        b.mop(pid(3)).at(20, 30).read_from(oid(1), 5, w1).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        let g = PrecedenceGraph::from_relation(&h, &rel);
        let comps = g.interaction_components(&h);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3]]);
        let (out, stats) = pruned_search(&h, &g, SearchLimits::default());
        let w = out.witness().expect("admissible").to_vec();
        assert!(sequence_witnesses_admissibility(&h, &rel, &w));
        assert_eq!(stats.components, 2);
        // Everything is forced here: both components peel completely.
        assert_eq!(stats.peeled as usize, 4);
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn pruned_agrees_with_naive_on_figure2_and_litmus() {
        for (h, rel) in [figure2(), litmus()] {
            let (naive, _) = find_legal_extension(&h, &rel, SearchLimits::default());
            let (pruned, _) = find_legal_extension_pruned(&h, &rel, SearchLimits::default());
            assert_eq!(naive.is_admissible(), pruned.is_admissible());
            if let Some(w) = pruned.witness() {
                assert!(sequence_witnesses_admissibility(&h, &rel, w));
            }
        }
    }

    #[test]
    fn tarjan_finds_components_and_cycles() {
        // 0 -> 1 -> 2 -> 0 cycle, 3 isolated, 4 -> 3 edge.
        let succs = vec![vec![1], vec![2], vec![0], vec![], vec![3u32]];
        let comps = tarjan_scc(&succs);
        assert!(comps.contains(&vec![0, 1, 2]));
        assert!(adjacency_has_cycle(&succs));
        let dag = vec![vec![1], vec![2], vec![], vec![2u32]];
        assert!(!adjacency_has_cycle(&dag));
        assert!(adjacency_has_cycle(&[vec![0u32]])); // self-loop
    }

    #[test]
    fn empty_history_is_trivially_admissible() {
        let h = HistoryBuilder::new(1).build().unwrap();
        let (out, _) = find_legal_extension_pruned(&h, &Relation::new(0), SearchLimits::default());
        assert_eq!(out, SearchOutcome::Admissible(vec![]));
    }
}
