//! Proof-producing verdicts: the `moc-cert` format.
//!
//! [`check_certified`] decides admissibility like [`crate::conditions::check`]
//! but additionally returns a [`Certificate`] — a self-contained, versioned
//! JSON document that an *independent* checker (the `moc-audit` crate, which
//! does not import this crate) can re-validate against the raw history:
//!
//! * **admissible** → the witness linearization plus a legality trace (for
//!   each external read, the witness position it reads from), checkable by a
//!   single replay;
//! * **inadmissible, `~H+` cyclic** → an explicit cycle of the saturated
//!   precedence graph with per-edge reasons and `~rw` premise justifications
//!   (see [`crate::precedence::CycleProof`]) — a polynomial refutation core;
//! * **inadmissible, `~H+` acyclic** → an exhaustion attestation naming the
//!   pruned-search statistics. This case is the NP-hard core (Theorems 1–2):
//!   no polynomial certificate of inadmissibility is known, so the auditor
//!   can only check the attestation's shape, not replay it.
//!
//! The document binds to its history by an FNV-1a fingerprint of the
//! history's canonical text encoding ([`moc_core::codec::fingerprint`]), so
//! a certificate cannot be replayed against a different history.

use moc_core::codec;
use moc_core::history::{History, MOpIdx};
use moc_core::ids::ObjectId;
use moc_core::json::{self, Json};

use crate::admissible::{SearchLimits, SearchOutcome, SearchStats};
use crate::conditions::{CheckError, CheckReport, Condition, StrategyUsed};
use crate::precedence::{pruned_search, CycleProof, EdgeKind, PrecedenceGraph};

/// Format identifier of the certificate documents this module emits.
pub const FORMAT: &str = "moc-cert";
/// Version of the certificate schema.
pub const VERSION: u64 = 1;

/// One step of a witness's legality trace: the m-operation at witness
/// position `pos` reads `obj` from the m-operation at witness position
/// `from` (`None` = the imaginary initial m-operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadStep {
    /// Position of the reader in the witness order.
    pub pos: usize,
    /// The object read.
    pub obj: ObjectId,
    /// Position of the writer read from, `None` for the initial value.
    pub from: Option<usize>,
}

/// The proof part of a certificate.
#[derive(Debug, Clone)]
pub enum Proof {
    /// Admissible: a witness linearization and its legality trace.
    Witness {
        /// The m-operations in a legal sequential order extending `~H`.
        order: Vec<MOpIdx>,
        /// For every external read, where in the witness it reads from.
        reads: Vec<ReadStep>,
    },
    /// Inadmissible with a polynomial refutation: a `~H+` cycle.
    Cycle(CycleProof),
    /// Inadmissible by exhaustive (pruned) search; statistics attested.
    Exhaustion {
        /// Search statistics (identical at every thread count).
        stats: SearchStats,
        /// Worker threads the search actually ran with — run metadata,
        /// not part of the proof obligation.
        threads: usize,
    },
}

/// A certified verdict: condition, verdict, history binding and proof.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The condition that was decided.
    pub condition: Condition,
    /// The verdict.
    pub admissible: bool,
    /// Number of m-operations in the bound history.
    pub ops: usize,
    /// Number of objects in the bound history.
    pub objects: usize,
    /// FNV-1a 64 fingerprint of the history's canonical text encoding.
    pub fingerprint: u64,
    /// The proof.
    pub proof: Proof,
}

/// The schema tag of a condition (`"sc"`, `"lin"`, `"normal"`).
pub fn condition_tag(condition: Condition) -> &'static str {
    match condition {
        Condition::MSequentialConsistency => "sc",
        Condition::MLinearizability => "lin",
        Condition::MNormality => "normal",
    }
}

impl Certificate {
    /// Serializes the certificate to its JSON document model.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), json::str(FORMAT)),
            ("version".into(), json::num(VERSION as i64)),
            ("condition".into(), json::str(condition_tag(self.condition))),
            (
                "verdict".into(),
                json::str(if self.admissible {
                    "admissible"
                } else {
                    "inadmissible"
                }),
            ),
            (
                "history".into(),
                Json::Obj(vec![
                    ("ops".into(), json::num(self.ops as i64)),
                    ("objects".into(), json::num(self.objects as i64)),
                    (
                        "fnv1a".into(),
                        json::str(format!("{:016x}", self.fingerprint)),
                    ),
                ]),
            ),
            ("proof".into(), proof_to_json(&self.proof)),
        ])
    }

    /// Serializes the certificate to compact JSON text.
    pub fn to_text(&self) -> String {
        self.to_json().render()
    }
}

fn proof_to_json(proof: &Proof) -> Json {
    match proof {
        Proof::Witness { order, reads } => Json::Obj(vec![
            ("kind".into(), json::str("witness")),
            (
                "order".into(),
                Json::Arr(order.iter().map(|m| json::num(m.0 as i64)).collect()),
            ),
            (
                "reads".into(),
                Json::Arr(
                    reads
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("pos".into(), json::num(r.pos as i64)),
                                ("obj".into(), json::num(r.obj.index() as i64)),
                                ("from".into(), json::num(r.from.map_or(-1, |p| p as i64))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Proof::Cycle(proof) => Json::Obj(vec![
            ("kind".into(), json::str("cycle")),
            (
                "edges".into(),
                Json::Arr(
                    proof
                        .edges
                        .iter()
                        .map(|pe| {
                            let mut fields = vec![
                                ("from".into(), json::num(pe.edge.from.0 as i64)),
                                ("to".into(), json::num(pe.edge.to.0 as i64)),
                                ("why".into(), json::str(edge_why(&pe.edge.kind))),
                            ];
                            if let EdgeKind::ReadWrite { beta, obj } = &pe.edge.kind {
                                fields.push((
                                    "beta".into(),
                                    json::num(beta.map_or(-1, |b| b.0 as i64)),
                                ));
                                fields.push(("obj".into(), json::num(obj.index() as i64)));
                                fields.push((
                                    "via".into(),
                                    Json::Arr(
                                        pe.via.iter().map(|&s| json::num(s as i64)).collect(),
                                    ),
                                ));
                            }
                            Json::Obj(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "cycle".into(),
                Json::Arr(proof.cycle.iter().map(|&s| json::num(s as i64)).collect()),
            ),
        ]),
        Proof::Exhaustion { stats, threads } => Json::Obj(vec![
            ("kind".into(), json::str("exhaustion")),
            ("threads".into(), json::num(*threads as i64)),
            ("nodes".into(), json::num(stats.nodes as i64)),
            ("memo_hits".into(), json::num(stats.memo_hits as i64)),
            ("memo_peak".into(), json::num(stats.memo_peak as i64)),
            ("memo_saturated".into(), Json::Bool(stats.memo_saturated)),
            ("components".into(), json::num(stats.components as i64)),
            ("peeled".into(), json::num(stats.peeled as i64)),
            ("forced_edges".into(), json::num(stats.forced_edges as i64)),
            (
                "symmetry_skips".into(),
                json::num(stats.symmetry_skips as i64),
            ),
        ]),
    }
}

fn edge_why(kind: &EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Base => "base",
        EdgeKind::Process => "po",
        EdgeKind::ReadsFrom => "rf",
        EdgeKind::RealTime => "rt",
        EdgeKind::ObjectOrder => "ox",
        EdgeKind::ReadWrite { .. } => "rw",
    }
}

/// Decides `condition` on `h` via the precedence-graph route and returns
/// both the report and a certificate for the verdict.
///
/// Unlike [`crate::conditions::check`] this always saturates the `~H+`
/// graph first: a cycle refutes without search (and *is* the certificate);
/// otherwise the statically-pruned search decides and yields either a
/// witness or an exhaustion attestation.
///
/// # Errors
///
/// [`CheckError::LimitExceeded`] if the pruned search exhausts `limits`.
pub fn check_certified(
    h: &History,
    condition: Condition,
    limits: SearchLimits,
) -> Result<(CheckReport, Certificate), CheckError> {
    let graph = PrecedenceGraph::for_condition(h, condition);
    let bind = |admissible, proof| Certificate {
        condition,
        admissible,
        ops: h.len(),
        objects: h.num_objects(),
        fingerprint: codec::fingerprint(h),
        proof,
    };

    if let Some(proof) = graph.cycle_proof() {
        let stats = SearchStats {
            forced_edges: graph.forced_edge_count() as u64,
            ..SearchStats::default()
        };
        let report = CheckReport {
            condition,
            satisfied: false,
            witness: None,
            strategy_used: StrategyUsed::BruteForce,
            stats,
            reason: Some(format!(
                "~H+ cycle of length {} refutes admissibility without search",
                proof.cycle.len()
            )),
        };
        return Ok((report, bind(false, Proof::Cycle(proof))));
    }

    let (outcome, stats) = pruned_search(h, &graph, limits);
    match outcome {
        SearchOutcome::Admissible(order) => {
            let reads = legality_trace(h, &order);
            let report = CheckReport {
                condition,
                satisfied: true,
                witness: Some(order.clone()),
                strategy_used: StrategyUsed::BruteForce,
                stats,
                reason: None,
            };
            Ok((report, bind(true, Proof::Witness { order, reads })))
        }
        SearchOutcome::NotAdmissible => {
            let report = CheckReport {
                condition,
                satisfied: false,
                witness: None,
                strategy_used: StrategyUsed::BruteForce,
                stats,
                reason: Some(format!(
                    "no legal sequential extension exists ({} nodes explored, \
                     {} peeled, {} components)",
                    stats.nodes, stats.peeled, stats.components
                )),
            };
            Ok((
                report,
                bind(
                    false,
                    Proof::Exhaustion {
                        stats,
                        threads: limits.threads.max(1),
                    },
                ),
            ))
        }
        SearchOutcome::LimitExceeded => Err(CheckError::LimitExceeded(stats)),
    }
}

/// The legality trace of a witness: for every external read (in witness
/// order), the witness position it reads from.
fn legality_trace(h: &History, order: &[MOpIdx]) -> Vec<ReadStep> {
    let mut position = vec![usize::MAX; h.len()];
    for (pos, &idx) in order.iter().enumerate() {
        position[idx.0] = pos;
    }
    let mut reads = Vec::new();
    for (pos, &alpha) in order.iter().enumerate() {
        for &(obj, writer) in h.read_sources(alpha) {
            reads.push(ReadStep {
                pos,
                obj,
                from: writer.map(|w| position[w.0]),
            });
        }
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::ProcessId;
    use moc_core::json::parse;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn stale_read() -> History {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        b.build().unwrap()
    }

    fn litmus() -> History {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(0)).at(20, 30).read_init(y).finish();
        b.mop(pid(1)).at(0, 10).write(y, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        b.build().unwrap()
    }

    /// Inadmissible but with an acyclic `~H+`: a reader mixing versions
    /// from two unordered writers.
    fn mixed_versions() -> History {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(0)).at(0, 10).write(x, 1).write(y, 1).finish();
        let beta = b.mop(pid(1)).at(0, 10).write(x, 2).write(y, 2).finish();
        b.mop(pid(2))
            .at(20, 30)
            .read_from(x, 2, beta)
            .read_from(y, 1, alpha)
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn admissible_verdict_carries_a_witness_and_trace() {
        let h = stale_read();
        let (report, cert) = check_certified(
            &h,
            Condition::MSequentialConsistency,
            SearchLimits::default(),
        )
        .unwrap();
        assert!(report.satisfied);
        assert!(cert.admissible);
        let Proof::Witness { order, reads } = &cert.proof else {
            panic!("expected witness proof");
        };
        assert_eq!(order.len(), 2);
        // The read of x's initial value must come before the write of x.
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].from, None);
        let doc = parse(&cert.to_text()).unwrap();
        assert_eq!(doc.get("format").unwrap().as_str(), Some(FORMAT));
        assert_eq!(doc.get("verdict").unwrap().as_str(), Some("admissible"));
        assert_eq!(
            doc.get("proof").unwrap().get("kind").unwrap().as_str(),
            Some("witness")
        );
    }

    #[test]
    fn cyclic_fixpoint_yields_a_cycle_certificate() {
        let h = litmus();
        let (report, cert) = check_certified(
            &h,
            Condition::MSequentialConsistency,
            SearchLimits::default(),
        )
        .unwrap();
        assert!(!report.satisfied);
        assert_eq!(report.stats.nodes, 0, "refuted statically");
        let Proof::Cycle(proof) = &cert.proof else {
            panic!("expected cycle proof");
        };
        assert!(proof.cycle.len() >= 2);
        let doc = parse(&cert.to_text()).unwrap();
        let p = doc.get("proof").unwrap();
        assert_eq!(p.get("kind").unwrap().as_str(), Some("cycle"));
        // Every serialized edge has a reason; rw edges carry justification.
        for e in p.get("edges").unwrap().as_arr().unwrap() {
            let why = e.get("why").unwrap().as_str().unwrap();
            if why == "rw" {
                assert!(e.get("beta").is_some());
                assert!(e.get("obj").is_some());
                assert!(e.get("via").is_some());
            }
        }
    }

    #[test]
    fn acyclic_inadmissible_yields_an_exhaustion_certificate() {
        let h = mixed_versions();
        let (report, cert) = check_certified(
            &h,
            Condition::MSequentialConsistency,
            SearchLimits::default(),
        )
        .unwrap();
        assert!(!report.satisfied);
        let Proof::Exhaustion { stats, threads } = &cert.proof else {
            panic!("expected exhaustion proof");
        };
        assert_eq!(*stats, report.stats);
        assert_eq!(*threads, 1, "default limits search single-threaded");
        let doc = parse(&cert.to_text()).unwrap();
        let p = doc.get("proof").unwrap();
        assert_eq!(p.get("kind").unwrap().as_str(), Some("exhaustion"));
        assert_eq!(p.get("threads").unwrap().as_u64(), Some(1));

        // The thread count used is recorded, and it is the only field of
        // the document that may vary with `SearchLimits::threads`.
        let (_, c4) = check_certified(
            &h,
            Condition::MSequentialConsistency,
            SearchLimits::default().with_threads(4),
        )
        .unwrap();
        let t4 = c4.to_text();
        assert!(t4.contains("\"threads\":4"), "{t4}");
        assert_eq!(cert.to_text().replace("\"threads\":1", "\"threads\":4"), t4);
    }

    #[test]
    fn certificate_binds_to_its_history() {
        let h1 = stale_read();
        let h2 = litmus();
        let (_, c1) = check_certified(
            &h1,
            Condition::MSequentialConsistency,
            SearchLimits::default(),
        )
        .unwrap();
        assert_eq!(c1.fingerprint, codec::fingerprint(&h1));
        assert_ne!(c1.fingerprint, codec::fingerprint(&h2));
        let doc = parse(&c1.to_text()).unwrap();
        assert_eq!(
            doc.get("history").unwrap().get("fnv1a").unwrap().as_str(),
            Some(format!("{:016x}", c1.fingerprint).as_str())
        );
    }

    #[test]
    fn all_three_conditions_certify_on_all_fixtures() {
        for h in [stale_read(), litmus(), mixed_versions()] {
            for c in [
                Condition::MSequentialConsistency,
                Condition::MLinearizability,
                Condition::MNormality,
            ] {
                let (report, cert) = check_certified(&h, c, SearchLimits::default()).unwrap();
                assert_eq!(report.satisfied, cert.admissible);
                // Agreement with the ordinary checker.
                let plain =
                    crate::conditions::check(&h, c, crate::conditions::Strategy::Auto).unwrap();
                assert_eq!(plain.satisfied, report.satisfied, "{c}");
                parse(&cert.to_text()).expect("certificate is valid JSON");
            }
        }
    }
}
