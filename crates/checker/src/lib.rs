//! # moc-checker
//!
//! Deciding the consistency conditions of Mittal & Garg (1998) for executed
//! histories of multi-object operations.
//!
//! A history satisfies a consistency condition iff it is *admissible* with
//! respect to the condition's relation (D 4.7): there must exist a legal
//! sequential history equivalent to it that respects the relation.
//!
//! * [`conditions`] — the user-facing entry point:
//!   [`conditions::check`] decides m-sequential consistency,
//!   m-linearizability or m-normality using a chosen [`conditions::Strategy`].
//! * [`admissible`] — the general decision procedure: a memoized
//!   backtracking search for a legal linear extension. Worst-case
//!   exponential, necessarily so: Theorems 1 and 2 show the problem is
//!   NP-complete (for m-linearizability, even with a known reads-from
//!   relation).
//! * [`fast`] — the polynomial path of Theorem 7: under the OO- or
//!   WW-constraint, admissibility collapses to legality, and a witness
//!   falls out of a topological sort of the extended relation `~H+`.
//! * [`serializability`] — database schedules and the Theorem 2 reduction:
//!   strict view serializability ⇔ m-linearizability, view serializability
//!   ⇔ m-sequential consistency, for one-transaction-per-process histories.
//! * [`precedence`] — the `~rw`/`~H+` precedence graph over arbitrary
//!   histories: SCC condensation, forced edges, cycle refutation, and the
//!   statically-pruned search the conditions module now runs by default.
//! * [`certificate`] — proof-producing verdicts: every check result
//!   serializes to a versioned JSON certificate (witness + legality trace,
//!   `~H+` refutation cycle, or search-exhaustion attestation) that the
//!   independent `moc-audit` crate re-validates against the raw history.
//!
//! ## Example
//!
//! ```
//! use moc_checker::conditions::{check, Condition, Strategy};
//! use moc_core::history::HistoryBuilder;
//! use moc_core::ids::{ObjectId, ProcessId};
//!
//! let x = ObjectId::new(0);
//! let mut b = HistoryBuilder::new(1);
//! let w = b.mop(ProcessId::new(0)).at(0, 10).write(x, 1).finish();
//! b.mop(ProcessId::new(1)).at(20, 30).read_from(x, 1, w).finish();
//! let h = b.build()?;
//! let report = check(&h, Condition::MLinearizability, Strategy::Auto)?;
//! assert!(report.satisfied);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod admissible;
pub mod causal;
pub mod certificate;
pub mod conditions;
pub(crate) mod engine;
pub mod fast;
pub mod minimize;
pub mod precedence;
pub mod serializability;
pub mod witness;

pub use admissible::{
    auto_threads, find_legal_extension, SearchLimits, SearchOutcome, SearchStats, AUTO_THREADS_MAX,
    AUTO_THREADS_MIN_OPS,
};
pub use causal::{check_m_causal, CausalReport};
pub use certificate::{check_certified, Certificate, Proof};
pub use conditions::{check, CheckError, CheckReport, Condition, Strategy};
pub use fast::{check_under_constraint, FastOutcome};
pub use minimize::{minimize_violation, Minimized};
pub use precedence::{find_legal_extension_pruned, PrecedenceGraph};
pub use serializability::Schedule;
pub use witness::{is_sequential, make_sequential_history};
