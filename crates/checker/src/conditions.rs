//! The consistency conditions of Section 2.3 and their decision procedures.
//!
//! Each condition is admissibility (D 4.7) with respect to a particular
//! relation:
//!
//! | condition                  | relation `~H`        |
//! |----------------------------|----------------------|
//! | m-sequential consistency   | `~p ∪ ~rf`           |
//! | m-linearizability          | `~p ∪ ~rf ∪ ~t`      |
//! | m-normality                | `~p ∪ ~rf ∪ ~x`      |
//!
//! m-normality is less restrictive than m-linearizability: it only orders
//! non-overlapping m-operations that act on a common object.

use std::fmt;

use serde::{Deserialize, Serialize};

use moc_core::constraints::Constraint;
use moc_core::history::{History, MOpIdx};
use moc_core::relations::{object_order, process_order, reads_from, real_time, Relation};

use crate::admissible::{SearchLimits, SearchOutcome, SearchStats};
use crate::fast::{check_under_constraint, FastError, FastOutcome};
use crate::precedence::find_legal_extension_pruned;

/// A consistency condition for multi-object operation histories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Condition {
    /// All m-operations appear to execute atomically in some sequential
    /// order consistent with each process's own order.
    MSequentialConsistency,
    /// Additionally, the order of non-overlapping m-operations (in real
    /// time) is preserved.
    MLinearizability,
    /// Additionally to m-sequential consistency, the real-time order of
    /// non-overlapping m-operations *that share an object* is preserved.
    MNormality,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::MSequentialConsistency => f.write_str("m-sequential consistency"),
            Condition::MLinearizability => f.write_str("m-linearizability"),
            Condition::MNormality => f.write_str("m-normality"),
        }
    }
}

impl Condition {
    /// Builds the condition's base relation `~H` over the history.
    pub fn base_relation(self, h: &History) -> Relation {
        let base = process_order(h).union(&reads_from(h));
        match self {
            Condition::MSequentialConsistency => base,
            Condition::MLinearizability => base.union(&real_time(h)),
            Condition::MNormality => base.union(&object_order(h)),
        }
    }
}

/// How to decide admissibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Always run the (worst-case exponential) backtracking search.
    BruteForce(SearchLimits),
    /// Require the given constraint and use the polynomial Theorem 7 path;
    /// fails with [`CheckError::ConstraintNotSatisfied`] if the history is
    /// not under the constraint.
    Constraint(Constraint),
    /// Use the Theorem 7 path if the history satisfies the WW- or
    /// OO-constraint (tried in that order — WW is what the Section 5
    /// protocols enforce), otherwise fall back to the search.
    #[default]
    Auto,
    /// The caller holds a static certificate (see `moc-analyze`) that the
    /// configuration enforces `constraint`, so the Theorem 7 path is
    /// expected to decide. Unlike [`Strategy::Constraint`], a history
    /// that nevertheless violates the constraint (e.g. the certificate
    /// was issued for a different program set) silently falls back to
    /// the brute-force search instead of erroring.
    Certified(Constraint),
}

/// Which decision procedure produced the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyUsed {
    /// The backtracking search decided.
    BruteForce,
    /// The Theorem 7 fast path decided under this constraint.
    Constraint(Constraint),
}

/// Errors surfaced by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// The search exhausted its node budget without a verdict.
    LimitExceeded(SearchStats),
    /// `Strategy::Constraint` was requested but the history is not under
    /// the constraint.
    ConstraintNotSatisfied(String),
    /// The history relation is cyclic (malformed input).
    CyclicRelation,
    /// Internal invariant violation in the fast path.
    Internal(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::LimitExceeded(s) => {
                write!(f, "search budget exhausted after {} nodes", s.nodes)
            }
            CheckError::ConstraintNotSatisfied(msg) => f.write_str(msg),
            CheckError::CyclicRelation => f.write_str("history relation is cyclic"),
            CheckError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// The verdict of a consistency check.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The condition that was checked.
    pub condition: Condition,
    /// Whether the history satisfies the condition.
    pub satisfied: bool,
    /// When satisfied: a legal sequential order witnessing admissibility.
    pub witness: Option<Vec<MOpIdx>>,
    /// Which procedure decided.
    pub strategy_used: StrategyUsed,
    /// Search statistics (zero for the fast path).
    pub stats: SearchStats,
    /// Human-readable explanation when not satisfied.
    pub reason: Option<String>,
}

/// Checks whether history `h` satisfies `condition` using `strategy`.
///
/// # Errors
///
/// See [`CheckError`]. With `Strategy::Auto` and default limits, errors only
/// occur on pathological instances that exhaust the search budget.
pub fn check(
    h: &History,
    condition: Condition,
    strategy: Strategy,
) -> Result<CheckReport, CheckError> {
    let relation = condition.base_relation(h);
    check_with_relation(h, condition, &relation, strategy)
}

/// Like [`check`] but with a caller-supplied relation — used by protocol
/// validators that know additional ordering (e.g. the atomic-broadcast
/// order `~ww`), and by the serializability reduction.
pub fn check_with_relation(
    h: &History,
    condition: Condition,
    relation: &Relation,
    strategy: Strategy,
) -> Result<CheckReport, CheckError> {
    match strategy {
        Strategy::BruteForce(limits) => brute(h, condition, relation, limits),
        Strategy::Constraint(c) => fast(h, condition, relation, c).map_err(|e| match e {
            FastError::ConstraintNotSatisfied(_) => {
                CheckError::ConstraintNotSatisfied(e.to_string())
            }
            FastError::CyclicRelation => CheckError::CyclicRelation,
            FastError::ExtendedRelationCyclic => CheckError::Internal(e.to_string()),
        }),
        Strategy::Auto => {
            for c in [Constraint::Ww, Constraint::Oo] {
                match fast(h, condition, relation, c) {
                    Ok(report) => return Ok(report),
                    Err(FastError::ConstraintNotSatisfied(_)) => continue,
                    Err(FastError::CyclicRelation) => return Err(CheckError::CyclicRelation),
                    Err(e @ FastError::ExtendedRelationCyclic) => {
                        return Err(CheckError::Internal(e.to_string()))
                    }
                }
            }
            brute(h, condition, relation, SearchLimits::default())
        }
        Strategy::Certified(c) => match fast(h, condition, relation, c) {
            Ok(report) => Ok(report),
            // The certificate promised the constraint holds; if this
            // history still violates it, the certificate did not cover it
            // — degrade gracefully rather than refusing a verdict.
            Err(FastError::ConstraintNotSatisfied(_)) => {
                brute(h, condition, relation, SearchLimits::default())
            }
            Err(FastError::CyclicRelation) => Err(CheckError::CyclicRelation),
            Err(e @ FastError::ExtendedRelationCyclic) => Err(CheckError::Internal(e.to_string())),
        },
    }
}

fn brute(
    h: &History,
    condition: Condition,
    relation: &Relation,
    limits: SearchLimits,
) -> Result<CheckReport, CheckError> {
    // The statically-pruned search (forced ~H+ edges, per-component
    // decomposition, prefix peeling) — verdict-equivalent to the naive
    // `find_legal_extension`, exponentially faster on decomposable inputs.
    let (outcome, stats) = find_legal_extension_pruned(h, relation, limits);
    match outcome {
        SearchOutcome::Admissible(witness) => Ok(CheckReport {
            condition,
            satisfied: true,
            witness: Some(witness),
            strategy_used: StrategyUsed::BruteForce,
            stats,
            reason: None,
        }),
        SearchOutcome::NotAdmissible => Ok(CheckReport {
            condition,
            satisfied: false,
            witness: None,
            strategy_used: StrategyUsed::BruteForce,
            stats,
            reason: Some(format!(
                "no legal sequential extension exists ({} nodes explored, {} forced edges)",
                stats.nodes, stats.forced_edges
            )),
        }),
        SearchOutcome::LimitExceeded => Err(CheckError::LimitExceeded(stats)),
    }
}

fn fast(
    h: &History,
    condition: Condition,
    relation: &Relation,
    constraint: Constraint,
) -> Result<CheckReport, FastError> {
    match check_under_constraint(h, relation, constraint)? {
        FastOutcome::Admissible(witness) => Ok(CheckReport {
            condition,
            satisfied: true,
            witness: Some(witness),
            strategy_used: StrategyUsed::Constraint(constraint),
            stats: SearchStats::default(),
            reason: None,
        }),
        FastOutcome::NotAdmissible(bad) => Ok(CheckReport {
            condition,
            satisfied: false,
            witness: None,
            strategy_used: StrategyUsed::Constraint(constraint),
            stats: SearchStats::default(),
            reason: Some(format!(
                "history is not legal: {} is ordered between {:?} and {} \
                 while overwriting an object read between them",
                bad.gamma, bad.beta, bad.alpha
            )),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::{ObjectId, ProcessId};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    /// Stale read: w(x)1 completes, then another process reads x=0.
    fn stale_read() -> moc_core::history::History {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        b.build().unwrap()
    }

    #[test]
    fn stale_read_separates_the_conditions() {
        let h = stale_read();
        let sc = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(sc.satisfied);
        let lin = check(&h, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(!lin.satisfied);
        // m-normality also rejects: the two m-operations share object x and
        // do not overlap.
        let norm = check(&h, Condition::MNormality, Strategy::Auto).unwrap();
        assert!(!norm.satisfied);
    }

    #[test]
    fn normality_is_strictly_weaker_than_linearizability() {
        // Separator (Section 2.3: "m-normality ... does not order two
        // non-overlapping m-operations unless they act on a common object"):
        //   alpha = w(x)1        P0 [0,10]
        //   beta  = w(y)1        P1 [20,30]  (alpha ~t beta, objects disjoint)
        //   delta = r(y)1 r(x)0  P2 [5,40]   (reads y from beta, x initial;
        //                                     overlaps both alpha and beta)
        // Under m-linearizability, alpha < beta (real time) and beta < delta
        // (reads-from) force alpha before delta, making delta's read of the
        // initial x illegal. Under m-normality the alpha-beta pair shares no
        // object, so no order is imposed and beta, delta, alpha is a legal
        // witness.
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        let beta = b.mop(pid(1)).at(20, 30).write(y, 1).finish();
        b.mop(pid(2))
            .at(5, 40)
            .read_from(y, 1, beta)
            .read_init(x)
            .finish();
        let h = b.build().unwrap();
        let lin = check(&h, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(!lin.satisfied);
        let norm = check(&h, Condition::MNormality, Strategy::Auto).unwrap();
        assert!(norm.satisfied);
        let sc = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(sc.satisfied);
    }

    #[test]
    fn linearizable_implies_normal_and_sequentially_consistent() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(2);
        let a = b.mop(pid(0)).at(0, 30).write(x, 1).finish();
        b.mop(pid(1)).at(0, 10).write(oid(1), 1).finish();
        b.mop(pid(2)).at(20, 50).read_from(x, 1, a).finish();
        let h = b.build().unwrap();
        for c in [
            Condition::MLinearizability,
            Condition::MNormality,
            Condition::MSequentialConsistency,
        ] {
            assert!(check(&h, c, Strategy::Auto).unwrap().satisfied, "{c}");
        }
    }

    #[test]
    fn constraint_strategy_errors_without_constraint() {
        let h = stale_read();
        // Both ops touch x and one writes: OO requires them ordered; the
        // base m-SC relation doesn't order them.
        let err = check(
            &h,
            Condition::MSequentialConsistency,
            Strategy::Constraint(moc_core::constraints::Constraint::Oo),
        )
        .unwrap_err();
        assert!(matches!(err, CheckError::ConstraintNotSatisfied(_)));
    }

    #[test]
    fn auto_uses_fast_path_under_real_time() {
        // Under m-linearizability the stale-read history IS under the
        // OO-constraint (real time orders the two x-ops), so Auto uses the
        // fast path and rejects with a reason.
        let h = stale_read();
        let report = check(&h, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(!report.satisfied);
        assert!(matches!(report.strategy_used, StrategyUsed::Constraint(_)));
        assert!(report.reason.is_some());
    }

    #[test]
    fn brute_force_strategy_reports_stats() {
        let h = stale_read();
        let report = check(
            &h,
            Condition::MSequentialConsistency,
            Strategy::BruteForce(SearchLimits::default()),
        )
        .unwrap();
        assert!(report.satisfied);
        assert_eq!(report.strategy_used, StrategyUsed::BruteForce);
        let w = report.witness.unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn certified_strategy_uses_fast_path_when_constraint_holds() {
        // Under m-linearizability the stale-read history satisfies OO
        // (real time orders the conflicting pair): the certificate route
        // decides via Theorem 7.
        let h = stale_read();
        let report = check(
            &h,
            Condition::MLinearizability,
            Strategy::Certified(moc_core::constraints::Constraint::Oo),
        )
        .unwrap();
        assert!(!report.satisfied);
        assert_eq!(
            report.strategy_used,
            StrategyUsed::Constraint(moc_core::constraints::Constraint::Oo)
        );
    }

    #[test]
    fn certified_strategy_falls_back_when_certificate_misses() {
        // Under m-SC the pair is unordered, so the OO precondition fails;
        // Certified degrades to brute force where Constraint would error.
        let h = stale_read();
        let report = check(
            &h,
            Condition::MSequentialConsistency,
            Strategy::Certified(moc_core::constraints::Constraint::Oo),
        )
        .unwrap();
        assert!(report.satisfied);
        assert_eq!(report.strategy_used, StrategyUsed::BruteForce);
        // The pruned search may decide entirely by forced-prefix peeling.
        assert!(
            report.stats.nodes + report.stats.peeled > 0,
            "fallback actually did the work"
        );
    }

    #[test]
    fn condition_display() {
        assert_eq!(
            Condition::MSequentialConsistency.to_string(),
            "m-sequential consistency"
        );
        assert_eq!(Condition::MLinearizability.to_string(), "m-linearizability");
        assert_eq!(Condition::MNormality.to_string(), "m-normality");
    }
}
