//! The general admissibility decision procedure.
//!
//! `admissible(H)` (D 4.7) asks for a *legal sequential* history extending
//! `(op(H), ~H)`. Equivalently: a linear extension of `~H` such that
//! replaying the m-operations in that order makes every external read
//! observe the most recent write to its object.
//!
//! The search below enumerates linear extensions depth-first, scheduling an
//! m-operation only when (a) all its `~H`-predecessors are scheduled and
//! (b) all its external reads are legal against the current
//! last-writer-per-object state. Visited configurations — the pair of
//! (scheduled set, last-writer map) — are memoized through the Zobrist
//! transposition table of [`crate::engine`], in the style of
//! Wing–Gong/Lowe linearizability checkers. The worst case is exponential,
//! and must be unless P = NP: Theorem 1 (m-sequential consistency) and
//! Theorem 2 (m-linearizability, even with the reads-from relation known)
//! show these problems NP-complete.

use moc_core::history::{History, MOpIdx};
use moc_core::relations::Relation;

use crate::engine::{self, ComponentPlan, SearchProblem};

/// Resource limits and tuning for the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of DFS nodes to expand before giving up.
    pub max_nodes: u64,
    /// Whether to memoize visited (scheduled set, last-writer map)
    /// configurations. Always sound; disabling it exists only for the
    /// memoization ablation benchmark.
    pub memoize: bool,
    /// Capacity bound on the transposition table, in entries. When a
    /// branch's table fills past this bound it is evicted wholesale (a
    /// generation bump) and the run is reported as memo-saturated in
    /// [`SearchStats::memo_saturated`].
    pub max_memo_entries: u64,
    /// Worker threads for the component/branch fan-out of
    /// [`crate::precedence::pruned_search`]. Verdicts, witnesses and stats
    /// are identical for every value; this knob only trades wall clock.
    pub threads: usize,
    /// Whether to apply the commutativity-based symmetry reduction: among
    /// adjacent schedule positions holding *independent* m-operations (no
    /// precedence edge either way, commuting footprints), only the
    /// canonical ascending order is explored. Always sound — every
    /// schedule canonicalizes to an explored one by adjacent swaps that
    /// preserve legality — and disabled only for the ablation benchmark.
    pub symmetry: bool,
}

impl SearchLimits {
    /// Creates limits with the given node budget and everything else at
    /// the defaults (memoization on, bounded table, one thread).
    pub fn with_max_nodes(max_nodes: u64) -> Self {
        SearchLimits {
            max_nodes,
            ..SearchLimits::default()
        }
    }

    /// Disables the memo table (ablation).
    pub fn without_memo(mut self) -> Self {
        self.memoize = false;
        self
    }

    /// Disables the symmetry reduction (ablation).
    pub fn without_symmetry(mut self) -> Self {
        self.symmetry = false;
        self
    }

    /// Sets the worker-thread count (0 is clamped to 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the transposition-table capacity bound (clamped to ≥ 16).
    pub fn with_max_memo_entries(mut self, entries: u64) -> Self {
        self.max_memo_entries = entries.max(16);
        self
    }
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 50_000_000,
            memoize: true,
            max_memo_entries: 1 << 20,
            threads: 1,
            symmetry: true,
        }
    }
}

/// Histories shorter than this search single-threaded under
/// [`auto_threads`]: the component/branch fan-out's thread spawn and
/// work-queue overhead dominates any speedup on small instances.
pub const AUTO_THREADS_MIN_OPS: usize = 32;

/// Upper bound on what [`auto_threads`] resolves to; the branch frontier
/// rarely keeps more workers busy, and oversubscription only churns the
/// transposition tables.
pub const AUTO_THREADS_MAX: usize = 8;

/// Resolves a `threads = auto` request for a history of `history_len`
/// m-operations: `1` below [`AUTO_THREADS_MIN_OPS`], otherwise the
/// machine's available parallelism capped at [`AUTO_THREADS_MAX`].
///
/// Verdicts, witnesses and stats are identical at every thread count, so
/// the resolution only trades wall clock; callers that need reproducible
/// *timing* should pass an explicit count instead.
pub fn auto_threads(history_len: usize) -> usize {
    if history_len < AUTO_THREADS_MIN_OPS {
        return 1;
    }
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .min(AUTO_THREADS_MAX)
}

/// Statistics from a search run. `components`, `peeled` and `forced_edges`
/// are only populated by the statically-pruned search
/// ([`crate::precedence::pruned_search`]); the naive search leaves them
/// zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// DFS nodes expanded.
    pub nodes: u64,
    /// Configurations pruned by the transposition table.
    pub memo_hits: u64,
    /// Independent interaction components searched separately.
    pub components: u64,
    /// M-operations scheduled by forced-prefix peeling (no search).
    pub peeled: u64,
    /// `~rw` edges the precedence saturation forced beyond the base
    /// relation.
    pub forced_edges: u64,
    /// Peak transposition-table occupancy over the counted branches.
    pub memo_peak: u64,
    /// Whether any counted branch filled its table past
    /// [`SearchLimits::max_memo_entries`] and fell back to generation
    /// eviction. Distinguishes a genuinely exhausted search from a
    /// memo-limited one in exhaustion certificates.
    pub memo_saturated: bool,
    /// Candidate expansions skipped by the symmetry reduction: schedulable
    /// m-operations not explored because the commuting adjacent pair is
    /// covered in its canonical (ascending) order.
    pub symmetry_skips: u64,
}

/// Result of the admissibility search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A witness: the m-operations in a legal sequential order extending
    /// the given relation.
    Admissible(Vec<MOpIdx>),
    /// No legal sequential extension exists.
    NotAdmissible,
    /// The node budget was exhausted before a conclusion was reached.
    LimitExceeded,
}

impl SearchOutcome {
    /// Whether the outcome is a positive witness.
    pub fn is_admissible(&self) -> bool {
        matches!(self, SearchOutcome::Admissible(_))
    }

    /// Extracts the witness, if any.
    pub fn witness(&self) -> Option<&[MOpIdx]> {
        match self {
            SearchOutcome::Admissible(w) => Some(w),
            _ => None,
        }
    }
}

/// Decides whether `(op(H), relation)` is admissible (D 4.7), returning a
/// witness schedule when it is.
///
/// `relation` need not be transitively closed. A cyclic relation is not
/// admissible (no linear extension exists).
pub fn find_legal_extension(
    h: &History,
    relation: &Relation,
    limits: SearchLimits,
) -> (SearchOutcome, SearchStats) {
    let n = h.len();
    let stats = SearchStats::default();
    if n == 0 {
        return (SearchOutcome::Admissible(Vec::new()), stats);
    }

    // Direct edges only (linear extensions of the edge set coincide with
    // linear extensions of its transitive closure), with an up-front
    // acyclicity guard.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, j) in relation.edges() {
        if i == j {
            return (SearchOutcome::NotAdmissible, stats);
        }
        edges.push((i.0 as u32, j.0 as u32));
        succs[i.0].push(j.0 as u32);
    }
    if crate::precedence::adjacency_has_cycle(&succs) {
        return (SearchOutcome::NotAdmissible, stats);
    }

    let problem = SearchProblem::new(h, &edges);
    let plan = ComponentPlan::root(&problem);
    engine::execute(&problem, std::slice::from_ref(&plan), limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::{ObjectId, ProcessId};
    use moc_core::legality::sequence_witnesses_admissibility;
    use moc_core::relations::{process_order, reads_from, real_time};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    #[test]
    fn auto_threads_is_one_below_the_threshold_and_bounded_above() {
        assert_eq!(auto_threads(0), 1);
        assert_eq!(auto_threads(AUTO_THREADS_MIN_OPS - 1), 1);
        let big = auto_threads(10_000);
        assert!((1..=AUTO_THREADS_MAX).contains(&big));
    }

    #[test]
    fn empty_history_is_admissible() {
        let h = HistoryBuilder::new(1).build().unwrap();
        let (out, _) = find_legal_extension(&h, &Relation::new(0), SearchLimits::default());
        assert_eq!(out, SearchOutcome::Admissible(vec![]));
    }

    #[test]
    fn simple_write_then_read() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        let w = b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(20, 30).read_from(x, 1, w).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h)
            .union(&reads_from(&h))
            .union(&real_time(&h));
        let (out, _) = find_legal_extension(&h, &rel, SearchLimits::default());
        let w = out.witness().expect("admissible");
        assert!(sequence_witnesses_admissibility(&h, &rel, w));
    }

    #[test]
    fn stale_read_violates_linearizability_but_not_sc() {
        // P0: w(x)1 then (after it responds) P1 reads x=0 (initial).
        // Not m-linearizable (real-time forces the write first), but
        // m-sequentially consistent (the read may be ordered first).
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        let h = b.build().unwrap();

        let sc_rel = process_order(&h).union(&reads_from(&h));
        let (out, _) = find_legal_extension(&h, &sc_rel, SearchLimits::default());
        assert!(out.is_admissible(), "m-sequentially consistent");

        let lin_rel = sc_rel.union(&real_time(&h));
        let (out, _) = find_legal_extension(&h, &lin_rel, SearchLimits::default());
        assert_eq!(out, SearchOutcome::NotAdmissible);
    }

    #[test]
    fn classic_non_sequentially_consistent_history() {
        // P0: w(x)1 ; r(y)0    P1: w(y)1 ; r(x)0 — the standard SC litmus
        // (both reads see initial values): no interleaving is legal.
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(0)).at(20, 30).read_init(y).finish();
        b.mop(pid(1)).at(0, 10).write(y, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        let (out, stats) = find_legal_extension(&h, &rel, SearchLimits::default());
        assert_eq!(out, SearchOutcome::NotAdmissible);
        assert!(stats.nodes > 0);
    }

    #[test]
    fn multi_object_atomicity_is_enforced() {
        // α writes x=1,y=1 atomically. A reader that sees x=1 but y=0 is
        // inconsistent under any condition including m-sequential
        // consistency (single m-operation mixing versions).
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(0)).at(0, 10).write(x, 1).write(y, 1).finish();
        b.mop(pid(1))
            .at(20, 30)
            .read_from(x, 1, alpha)
            .read_init(y)
            .finish();
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        let (out, _) = find_legal_extension(&h, &rel, SearchLimits::default());
        assert_eq!(out, SearchOutcome::NotAdmissible);
    }

    #[test]
    fn mixed_version_read_across_two_writers() {
        // α: w(x)1 w(y)1 ; β: w(x)2 w(y)2 ; reader sees x from β but y from
        // α. Legal only if α is after β for y... which contradicts reading
        // x=2 (β's write) while y=1 (α's). With β after α: reading y from α
        // is stale. Not admissible even without real-time order.
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(0)).at(0, 10).write(x, 1).write(y, 1).finish();
        let beta = b.mop(pid(1)).at(0, 10).write(x, 2).write(y, 2).finish();
        b.mop(pid(2))
            .at(20, 30)
            .read_from(x, 2, beta)
            .read_from(y, 1, alpha)
            .finish();
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        let (out, _) = find_legal_extension(&h, &rel, SearchLimits::default());
        assert_eq!(out, SearchOutcome::NotAdmissible);
    }

    #[test]
    fn cyclic_relation_is_not_admissible() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(0, 10).write(x, 2).finish();
        let h = b.build().unwrap();
        let mut rel = Relation::new(2);
        rel.add(MOpIdx(0), MOpIdx(1));
        rel.add(MOpIdx(1), MOpIdx(0));
        let (out, _) = find_legal_extension(&h, &rel, SearchLimits::default());
        assert_eq!(out, SearchOutcome::NotAdmissible);
    }

    #[test]
    fn node_limit_is_respected() {
        // Many unordered writers of distinct objects with no reads: huge
        // search space, but any order works — found immediately. To force
        // limit, use an unsatisfiable instance with a tiny budget.
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        for p in 0..4 {
            b.mop(pid(p)).at(0, 10).write(x, p as i64).finish();
            b.mop(pid(p))
                .at(20, 30)
                .read_init(y)
                .write(y, p as i64)
                .finish();
        }
        // Add a contradiction: a reader of y's initial value ordered last.
        b.mop(pid(9)).at(40, 50).read_init(y).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h)
            .union(&reads_from(&h))
            .union(&real_time(&h));
        let (out, stats) = find_legal_extension(&h, &rel, SearchLimits::with_max_nodes(3));
        assert!(matches!(
            out,
            SearchOutcome::LimitExceeded | SearchOutcome::NotAdmissible
        ));
        assert!(stats.nodes <= 4);
    }

    #[test]
    fn memo_ablation_agrees_but_explores_more() {
        // The classic SC litmus twice over: without memoization the search
        // revisits configurations.
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        for p in 0..3 {
            b.mop(pid(p)).at(0, 10).write(x, p as i64 + 1).finish();
            b.mop(pid(p)).at(20, 30).read_init(y).finish();
        }
        b.mop(pid(9)).at(40, 50).write(y, 1).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        let (with_memo, s1) = find_legal_extension(&h, &rel, SearchLimits::default());
        let (without, s2) = find_legal_extension(&h, &rel, SearchLimits::default().without_memo());
        assert_eq!(with_memo.is_admissible(), without.is_admissible());
        assert!(
            s2.nodes >= s1.nodes,
            "memo can only prune: {s1:?} vs {s2:?}"
        );
        assert_eq!(s2.memo_hits, 0);
    }

    #[test]
    fn symmetry_reduction_prunes_but_agrees() {
        // The classic SC litmus (inadmissible, forcing exhaustion) padded
        // with independent writers of distinct objects: without the
        // reduction the search permutes the independent writers, with it
        // only their ascending order survives.
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(6);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(0)).at(20, 30).read_init(y).finish();
        b.mop(pid(1)).at(0, 10).write(y, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        for k in 0..4u32 {
            b.mop(pid(10 + k)).at(0, 10).write(oid(2 + k), 7).finish();
        }
        let h = b.build().unwrap();
        let rel = process_order(&h).union(&reads_from(&h));
        let (on, s_on) = find_legal_extension(&h, &rel, SearchLimits::default());
        let (off, s_off) =
            find_legal_extension(&h, &rel, SearchLimits::default().without_symmetry());
        assert_eq!(on, SearchOutcome::NotAdmissible);
        assert_eq!(off, SearchOutcome::NotAdmissible);
        assert!(s_on.symmetry_skips > 0, "{s_on:?}");
        assert_eq!(s_off.symmetry_skips, 0);
        assert!(
            s_on.nodes < s_off.nodes,
            "reduction must shrink the explored tree: {s_on:?} vs {s_off:?}"
        );
    }

    #[test]
    fn witness_respects_relation() {
        // Three independent updates + reader chains; verify witness.
        let x = oid(0);
        let y = oid(1);
        let z = oid(2);
        let mut b = HistoryBuilder::new(3);
        let a = b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        let c = b.mop(pid(1)).at(0, 10).write(y, 2).finish();
        let d = b
            .mop(pid(2))
            .at(20, 30)
            .read_from(x, 1, a)
            .read_from(y, 2, c)
            .write(z, 3)
            .finish();
        b.mop(pid(0)).at(40, 50).read_from(z, 3, d).finish();
        let h = b.build().unwrap();
        let rel = process_order(&h)
            .union(&reads_from(&h))
            .union(&real_time(&h));
        let (out, _) = find_legal_extension(&h, &rel, SearchLimits::default());
        let w = out.witness().expect("admissible");
        assert!(sequence_witnesses_admissibility(&h, &rel, w));
    }
}
