//! Polynomial-time checking under execution constraints (Theorem 7).
//!
//! Theorem 7: a history under the OO- or WW-constraint is admissible **iff**
//! it is legal. Legality (D 4.6) is a polynomial predicate, and a witness
//! schedule falls out of a topological sort of the extended relation
//! `~H+ = (~H ∪ ~rw)+` (D 4.12), whose irreflexivity is guaranteed by
//! Lemmas 3 and 4 and whose every linear extension is legal by the proof of
//! Lemma 5 (P 4.5).

use std::fmt;

use moc_core::constraints::{first_violation, Constraint, UnorderedPair};
use moc_core::history::{History, MOpIdx};
use moc_core::legality::{
    extended_relation, first_illegal_read, sequence_witnesses_admissibility, IllegalRead,
};
use moc_core::relations::Relation;

/// Why the fast path could not run: the precondition of Theorem 7 failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastError {
    /// The history relation does not satisfy the requested constraint, so
    /// Theorem 7 does not apply. Fall back to the brute-force search.
    ConstraintNotSatisfied(UnorderedPair),
    /// The supplied relation is cyclic — not a valid history relation.
    CyclicRelation,
    /// Internal invariant violation: the history was legal and under the
    /// constraint, yet `~H+` contained a cycle. By Lemmas 3 and 4 this is
    /// unreachable; reported rather than panicking.
    ExtendedRelationCyclic,
}

impl fmt::Display for FastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastError::ConstraintNotSatisfied(p) => write!(
                f,
                "{} requires m-operations {} and {} to be ordered",
                p.constraint, p.a, p.b
            ),
            FastError::CyclicRelation => f.write_str("history relation is cyclic"),
            FastError::ExtendedRelationCyclic => {
                f.write_str("extended relation ~H+ is cyclic (invariant violation)")
            }
        }
    }
}

impl std::error::Error for FastError {}

/// Outcome of the constraint-based check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FastOutcome {
    /// The history is admissible; the witness is a legal sequential order.
    Admissible(Vec<MOpIdx>),
    /// The history is not legal, hence (Lemma 6 + Theorem 7) not
    /// admissible. Carries the offending read.
    NotAdmissible(IllegalRead),
}

impl FastOutcome {
    /// Whether the outcome is a positive witness.
    pub fn is_admissible(&self) -> bool {
        matches!(self, FastOutcome::Admissible(_))
    }
}

/// Decides admissibility of `(op(H), relation)` assuming `constraint` holds
/// of the (closure of the) relation, in polynomial time.
///
/// # Errors
///
/// Returns [`FastError::ConstraintNotSatisfied`] when the precondition
/// fails — the caller should fall back to
/// [`crate::admissible::find_legal_extension`] — and
/// [`FastError::CyclicRelation`] for malformed inputs.
pub fn check_under_constraint(
    h: &History,
    relation: &Relation,
    constraint: Constraint,
) -> Result<FastOutcome, FastError> {
    let closed = relation.transitive_closure();
    if !closed.is_irreflexive() {
        return Err(FastError::CyclicRelation);
    }
    if let Some(pair) = first_violation(constraint, h, &closed) {
        return Err(FastError::ConstraintNotSatisfied(pair));
    }
    // Theorem 7: under the constraint, admissible ⇔ legal.
    if let Some(bad) = first_illegal_read(h, &closed) {
        return Ok(FastOutcome::NotAdmissible(bad));
    }
    // Lemmas 3/4: ~H+ is irreflexive; Lemma 5: any extension is legal.
    let ext = extended_relation(h, relation);
    let Some(order) = ext.topological_sort() else {
        return Err(FastError::ExtendedRelationCyclic);
    };
    debug_assert!(
        sequence_witnesses_admissibility(h, relation, &order),
        "Theorem 7 witness failed validation"
    );
    Ok(FastOutcome::Admissible(order))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admissible::{find_legal_extension, SearchLimits};
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::{ObjectId, ProcessId};
    use moc_core::relations::{process_order, reads_from};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }
    fn m(i: usize) -> MOpIdx {
        MOpIdx(i)
    }

    /// Figure 2's H1 with its WW edges α<γ<δ.
    fn figure2() -> (moc_core::history::History, Relation) {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let alpha = b.mop(pid(1)).at(0, 10).read_init(x).write(y, 2).finish();
        b.mop(pid(1)).at(20, 60).read_from(y, 2, alpha).finish();
        b.mop(pid(2)).at(15, 25).write(x, 1).finish();
        b.mop(pid(2)).at(30, 40).write(y, 3).finish();
        let h = b.build().unwrap();
        let mut rel = process_order(&h).union(&reads_from(&h));
        rel.add(m(0), m(2));
        rel.add(m(2), m(3));
        (h, rel)
    }

    #[test]
    fn figure2_fast_check_admits() {
        let (h, rel) = figure2();
        let out = check_under_constraint(&h, &rel, Constraint::Ww).unwrap();
        let FastOutcome::Admissible(order) = out else {
            panic!("H1 should be admissible");
        };
        assert!(sequence_witnesses_admissibility(&h, &rel, &order));
        // The witness must place β before δ (forced by ~rw, cf. Figure 3).
        let pos = |i: usize| order.iter().position(|&x| x == m(i)).unwrap();
        assert!(pos(1) < pos(3), "β must precede δ in any legal extension");
    }

    #[test]
    fn fast_agrees_with_brute_force_on_figure2() {
        let (h, rel) = figure2();
        let fast = check_under_constraint(&h, &rel, Constraint::Ww).unwrap();
        let (brute, _) = find_legal_extension(&h, &rel, SearchLimits::default());
        assert_eq!(fast.is_admissible(), brute.is_admissible());
    }

    #[test]
    fn missing_ww_edges_are_reported() {
        let (h, _) = figure2();
        let rel = process_order(&h).union(&reads_from(&h));
        let err = check_under_constraint(&h, &rel, Constraint::Ww).unwrap_err();
        assert!(matches!(err, FastError::ConstraintNotSatisfied(_)));
    }

    #[test]
    fn illegal_history_is_rejected() {
        // α reads initial x, but γ (writing x) is ordered before α.
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(20, 30).read_init(x).write(x, 5).finish();
        b.mop(pid(1)).at(0, 10).write(x, 1).finish();
        let h = b.build().unwrap();
        let mut rel = Relation::new(2);
        rel.add(m(1), m(0)); // γ before α: α's initial read is stale.
        let out = check_under_constraint(&h, &rel, Constraint::Ww).unwrap();
        let FastOutcome::NotAdmissible(bad) = out else {
            panic!("should be illegal");
        };
        assert_eq!(bad.alpha, m(0));
        assert_eq!(bad.gamma, m(1));
        assert_eq!(bad.beta, None);
    }

    #[test]
    fn cyclic_relation_is_an_error() {
        let (h, mut rel) = figure2();
        rel.add(m(3), m(0));
        assert_eq!(
            check_under_constraint(&h, &rel, Constraint::Ww),
            Err(FastError::CyclicRelation)
        );
    }

    #[test]
    fn oo_constraint_path() {
        // Order *all* conflicting pairs: add β<δ too (β reads y, δ writes y)
        // and α<β... α,β conflict? α writes y, β reads y: yes — process
        // order already gives α<β. γ conflicts with α (x): α<γ present.
        let (h, mut rel) = figure2();
        rel.add(m(1), m(3));
        let out = check_under_constraint(&h, &rel, Constraint::Oo).unwrap();
        assert!(out.is_admissible());
    }
}
