//! Counterexample minimization: shrink a violating history to a
//! 1-minimal one.
//!
//! Randomized runs and the model checker surface violating histories with
//! plenty of irrelevant m-operations around the actual anomaly. This
//! module delta-debugs them: it greedily removes m-operations while the
//! violation persists, yielding a history from which no single
//! m-operation can be removed without making it consistent — usually the
//! two- or three-operation core of the bug.

use moc_core::history::History;

use crate::admissible::SearchLimits;
use crate::conditions::{check, CheckError, Condition, Strategy};

/// Outcome of [`minimize_violation`].
#[derive(Debug)]
pub struct Minimized {
    /// The 1-minimal violating history.
    pub history: History,
    /// m-operations removed from the input.
    pub removed: usize,
    /// Consistency checks performed while shrinking.
    pub checks: u64,
}

/// Errors from minimization.
#[derive(Debug)]
pub enum MinimizeError {
    /// The input history already satisfies the condition.
    NotAViolation,
    /// A consistency check failed (budget exhausted or malformed input).
    Check(CheckError),
}

impl std::fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizeError::NotAViolation => {
                f.write_str("input history satisfies the condition; nothing to minimize")
            }
            MinimizeError::Check(e) => write!(f, "check failed while minimizing: {e}"),
        }
    }
}

impl std::error::Error for MinimizeError {}

fn violates(
    h: &History,
    condition: Condition,
    limits: SearchLimits,
    checks: &mut u64,
) -> Result<bool, CheckError> {
    *checks += 1;
    // Auto first (fast path where applicable); on budget exhaustion treat
    // as "unknown" and keep the record (conservative: may stay non-minimal
    // but never returns a satisfying history).
    match check(h, condition, Strategy::BruteForce(limits)) {
        Ok(report) => Ok(!report.satisfied),
        Err(CheckError::LimitExceeded(_)) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Shrinks `h` — which must violate `condition` — to a 1-minimal violating
/// history: removing any single remaining m-operation yields a consistent
/// (or invalid) history.
///
/// Removals that orphan a read (some remaining m-operation read from the
/// removed one) are rejected by history validation and skipped, so the
/// result is always a well-formed history.
///
/// # Errors
///
/// [`MinimizeError::NotAViolation`] if `h` satisfies the condition, or a
/// wrapped [`CheckError`] if checking fails outright.
pub fn minimize_violation(
    h: &History,
    condition: Condition,
    limits: SearchLimits,
) -> Result<Minimized, MinimizeError> {
    let mut checks = 0u64;
    if !violates(h, condition, limits, &mut checks).map_err(MinimizeError::Check)? {
        return Err(MinimizeError::NotAViolation);
    }

    let mut current: Vec<_> = h.records().to_vec();
    let mut removed = 0usize;
    let mut progress = true;
    while progress {
        progress = false;
        let mut i = 0;
        while i < current.len() {
            if current.len() == 1 {
                break;
            }
            let mut candidate = current.clone();
            candidate.remove(i);
            let Ok(smaller) = History::new(h.num_objects(), candidate) else {
                i += 1; // removal orphans a read — keep the record
                continue;
            };
            match violates(&smaller, condition, limits, &mut checks) {
                Ok(true) => {
                    current.remove(i);
                    removed += 1;
                    progress = true;
                    // Do not advance i: the next record shifted into place.
                }
                Ok(false) => i += 1,
                Err(e) => return Err(MinimizeError::Check(e)),
            }
        }
    }

    let history = History::new(h.num_objects(), current).expect("kept records remain well-formed");
    Ok(Minimized {
        history,
        removed,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::{ObjectId, ProcessId};

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    /// A stale read buried in unrelated traffic minimizes to its 2-op core.
    #[test]
    fn stale_read_minimizes_to_two_operations() {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        // The core violation: w(x)1 responds, then a read of initial x.
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        // Noise: unrelated traffic on y.
        let wy = b.mop(pid(2)).at(0, 10).write(y, 5).finish();
        b.mop(pid(3)).at(20, 30).read_from(y, 5, wy).finish();
        b.mop(pid(2)).at(40, 50).write(y, 6).finish();
        let h = b.build().unwrap();

        let out =
            minimize_violation(&h, Condition::MLinearizability, SearchLimits::default()).unwrap();
        assert_eq!(out.history.len(), 2, "core is the write + stale read");
        assert_eq!(out.removed, 3);
        assert!(out.checks > 3);
        let labels: Vec<_> = out.history.records().iter().map(|r| r.notation()).collect();
        assert!(labels.iter().any(|l| l.contains("w(x)1")), "{labels:?}");
        assert!(labels.iter().any(|l| l.contains("r(x)0")), "{labels:?}");
    }

    /// Reads-from chains are preserved: the writer of an essential read
    /// cannot be removed even when trying hard.
    #[test]
    fn minimization_never_orphans_reads() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        let w1 = b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        let w2 = b.mop(pid(0)).at(20, 30).write(x, 2).finish();
        // Violation: reads v1 strictly after w2 responded.
        b.mop(pid(1)).at(40, 50).read_from(x, 1, w1).finish();
        let _ = w2;
        let h = b.build().unwrap();
        let out =
            minimize_violation(&h, Condition::MLinearizability, SearchLimits::default()).unwrap();
        // All three are essential: w1 feeds the read; dropping w2 removes
        // the violation (reading v1 becomes fine).
        assert_eq!(out.history.len(), 3);
        assert_eq!(out.removed, 0);
    }

    #[test]
    fn satisfying_histories_are_rejected() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        let w = b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(1)).at(20, 30).read_from(x, 1, w).finish();
        let h = b.build().unwrap();
        assert!(matches!(
            minimize_violation(&h, Condition::MLinearizability, SearchLimits::default()),
            Err(MinimizeError::NotAViolation)
        ));
    }
}
