//! Property tests for the certificate pipeline.
//!
//! * The precedence-pruned search and the naive search return identical
//!   verdicts on the full random corpus.
//! * Every certificate `check_certified` emits is accepted by the
//!   *independent* auditor (`moc-audit` imports only `moc-core`).
//! * Guaranteed-invalid mutations of a valid certificate — fingerprint
//!   tampering, a version bump, a verdict flip, a duplicated witness
//!   entry — are all rejected.

use moc_checker::admissible::{find_legal_extension, SearchLimits, SearchOutcome};
use moc_checker::certificate::check_certified;
use moc_checker::conditions::Condition;
use moc_checker::find_legal_extension_pruned;
use moc_core::history::History;
use moc_core::ids::{MOpId, ObjectId, ProcessId};
use moc_core::json::{self, Json};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::op::CompletedOp;
use moc_core::relations::{process_order, reads_from};
use proptest::prelude::*;

/// One step of a serial execution plan (same shape as `proptests.rs`).
#[derive(Debug, Clone)]
struct Step {
    process: u8,
    objects: Vec<u8>,
    write: bool,
}

const OBJECTS: usize = 3;

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        0u8..4,
        proptest::collection::btree_set(0u8..OBJECTS as u8, 1..=2),
        any::<bool>(),
    )
        .prop_map(|(process, objects, write)| Step {
            process,
            objects: objects.into_iter().collect(),
            write,
        })
}

fn serial_from_plan(plan: &[Step]) -> History {
    let mut store: Vec<(i64, MOpId, u64)> = vec![(0, MOpId::INITIAL, 0); OBJECTS];
    let mut seq = [0u32; 4];
    let mut records = Vec::new();
    let mut value = 1i64;
    for (i, step) in plan.iter().enumerate() {
        let p = ProcessId::new(step.process as u32);
        let id = MOpId::new(p, seq[step.process as usize]);
        seq[step.process as usize] += 1;
        let mut ops = Vec::new();
        for &o in &step.objects {
            let obj = ObjectId::new(o as u32);
            if step.write {
                let (_, _, ver) = store[o as usize];
                store[o as usize] = (value, id, ver + 1);
                ops.push(CompletedOp::write(obj, value, id, ver + 1));
                value += 1;
            } else {
                let (v, w, ver) = store[o as usize];
                ops.push(CompletedOp::read(obj, v, w, ver));
            }
        }
        let t = i as u64 * 10;
        records.push(MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(t),
            responded_at: EventTime::from_nanos(t + 5),
            ops,
            outputs: Vec::new(),
            treated_as: if step.write {
                MOpClass::Update
            } else {
                MOpClass::Query
            },
            label: format!("s{i}"),
        });
    }
    History::new(OBJECTS, records).expect("serial plan is well-formed")
}

/// Rewires each read to a random writer of the same object, producing
/// arbitrary (often inadmissible) histories.
fn scramble(h: &History, choices: &[u8]) -> History {
    let mut records = h.records().to_vec();
    let mut c = choices.iter().cycle();
    for rec in &mut records {
        let id = rec.id;
        for op in &mut rec.ops {
            if op.is_read() {
                let writers: Vec<_> = h
                    .writers_of(op.object)
                    .iter()
                    .map(|&w| h.record(w))
                    .filter(|r| r.id != id)
                    .collect();
                let pick = *c.next().unwrap() as usize;
                if writers.is_empty() || pick % (writers.len() + 1) == writers.len() {
                    *op = CompletedOp::read(op.object, 0, MOpId::INITIAL, 0);
                } else {
                    let w = writers[pick % (writers.len() + 1)];
                    let wr = w
                        .final_writes()
                        .into_iter()
                        .find(|x| x.object == op.object)
                        .unwrap();
                    *op = CompletedOp::read(op.object, wr.value, w.id, wr.version);
                }
            }
        }
    }
    History::new(h.num_objects(), records).expect("scramble keeps well-formedness")
}

/// Replaces the value at `path` (a chain of object keys) in a JSON
/// document, panicking if the path is absent — mutations must hit.
fn set_field(doc: &Json, path: &[&str], value: Json) -> Json {
    match doc {
        Json::Obj(fields) => {
            let (key, rest) = (path[0], &path[1..]);
            let mut out = Vec::with_capacity(fields.len());
            let mut hit = false;
            for (k, v) in fields {
                if k == key {
                    hit = true;
                    out.push((
                        k.clone(),
                        if rest.is_empty() {
                            value.clone()
                        } else {
                            set_field(v, rest, value.clone())
                        },
                    ));
                } else {
                    out.push((k.clone(), v.clone()));
                }
            }
            assert!(hit, "mutation path {path:?} missing from certificate");
            Json::Obj(out)
        }
        _ => panic!("mutation path {path:?} traverses a non-object"),
    }
}

const CONDITIONS: [Condition; 3] = [
    Condition::MSequentialConsistency,
    Condition::MNormality,
    Condition::MLinearizability,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pruned_search_agrees_with_naive_on_the_corpus(
        plan in proptest::collection::vec(step_strategy(), 1..9),
        choices in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let h = scramble(&serial_from_plan(&plan), &choices);
        let rel = process_order(&h).union(&reads_from(&h));
        let limits = SearchLimits::with_max_nodes(300_000);
        let (naive, _) = find_legal_extension(&h, &rel, limits);
        let (pruned, _) = find_legal_extension_pruned(&h, &rel, limits);
        if !matches!(naive, SearchOutcome::LimitExceeded)
            && !matches!(pruned, SearchOutcome::LimitExceeded)
        {
            prop_assert_eq!(naive.is_admissible(), pruned.is_admissible());
        }
    }

    #[test]
    fn symmetry_reduction_agrees_with_its_ablation(
        plan in proptest::collection::vec(step_strategy(), 1..9),
        choices in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let h = scramble(&serial_from_plan(&plan), &choices);
        let rel = process_order(&h).union(&reads_from(&h));
        let limits = SearchLimits::with_max_nodes(300_000);
        let (on, _) = find_legal_extension(&h, &rel, limits);
        let (off, s_off) = find_legal_extension(&h, &rel, limits.without_symmetry());
        if !matches!(on, SearchOutcome::LimitExceeded)
            && !matches!(off, SearchOutcome::LimitExceeded)
        {
            prop_assert_eq!(on.is_admissible(), off.is_admissible());
            prop_assert_eq!(s_off.symmetry_skips, 0);
        }
    }

    #[test]
    fn emitted_certificates_pass_the_independent_audit(
        plan in proptest::collection::vec(step_strategy(), 1..8),
        choices in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let h = scramble(&serial_from_plan(&plan), &choices);
        for condition in CONDITIONS {
            let limits = SearchLimits::with_max_nodes(300_000);
            if let Ok((report, cert)) = check_certified(&h, condition, limits) {
                let verdict = moc_audit::audit(&h, &cert.to_text());
                let verdict = verdict.expect("checker-emitted certificate must audit");
                // The verdict kind matches the report.
                prop_assert_eq!(cert.admissible, report.satisfied);
                if report.satisfied {
                    prop_assert!(verdict.is_verified());
                }
            }
        }
    }

    #[test]
    fn mutated_certificates_are_rejected(
        plan in proptest::collection::vec(step_strategy(), 1..8),
        choices in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let h = scramble(&serial_from_plan(&plan), &choices);
        let limits = SearchLimits::with_max_nodes(300_000);
        let Ok((_, cert)) = check_certified(
            &h, Condition::MSequentialConsistency, limits) else { return; };
        let doc = json::parse(&cert.to_text()).unwrap();

        // Fingerprint tamper: the certificate no longer binds to `h`.
        let bad = set_field(
            &doc,
            &["history", "fnv1a"],
            Json::Str("0000000000000000".into()),
        );
        prop_assert!(moc_audit::audit(&h, &bad.render()).is_err());

        // Version bump: unknown format versions are refused.
        let bad = set_field(&doc, &["version"], Json::Num(2.0));
        prop_assert!(moc_audit::audit(&h, &bad.render()).is_err());

        // Verdict flip: the proof no longer matches the claimed verdict.
        let flipped = if cert.admissible { "inadmissible" } else { "admissible" };
        let bad = set_field(&doc, &["verdict"], Json::Str(flipped.into()));
        prop_assert!(moc_audit::audit(&h, &bad.render()).is_err());

        // Duplicated witness entry: no longer a permutation.
        if cert.admissible && h.len() > 1 {
            let order = doc
                .get("proof")
                .and_then(|p| p.get("order"))
                .and_then(Json::as_arr)
                .expect("witness certificates carry an order")
                .to_vec();
            let mut dup = order.clone();
            dup[0] = dup[order.len() - 1].clone();
            let bad = set_field(&doc, &["proof", "order"], Json::Arr(dup));
            prop_assert!(moc_audit::audit(&h, &bad.render()).is_err());
        }
    }
}
