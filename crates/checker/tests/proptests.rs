//! Property tests for the checkers.
//!
//! * Serial executions are admissible under every condition, and the
//!   brute-force searcher finds them without backtracking.
//! * The checker is total on arbitrary random-provenance histories
//!   (no panics, stable verdicts) and its positive verdicts always carry
//!   validating witnesses.
//! * On real-time-total histories (every pair ordered), the Theorem 7
//!   fast path agrees with the brute force under the OO-constraint.

use moc_checker::admissible::{find_legal_extension, SearchLimits, SearchOutcome};
use moc_checker::fast::check_under_constraint;
use moc_checker::witness::{is_sequential, make_sequential_history};
use moc_core::constraints::Constraint;
use moc_core::history::History;
use moc_core::ids::{MOpId, ObjectId, ProcessId};
use moc_core::legality::sequence_witnesses_admissibility;
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::op::CompletedOp;
use moc_core::relations::{process_order, reads_from, real_time};
use proptest::prelude::*;

/// One step of a serial execution plan: which process acts, which objects
/// it touches, and whether it writes.
#[derive(Debug, Clone)]
struct Step {
    process: u8,
    objects: Vec<u8>,
    write: bool,
}

const OBJECTS: usize = 3;

fn step_strategy() -> impl Strategy<Value = Step> {
    (
        0u8..4,
        proptest::collection::btree_set(0u8..OBJECTS as u8, 1..=2),
        any::<bool>(),
    )
        .prop_map(|(process, objects, write)| Step {
            process,
            objects: objects.into_iter().collect(),
            write,
        })
}

/// Materializes a serial history from a plan: steps execute one at a time
/// against a simulated store.
fn serial_from_plan(plan: &[Step]) -> History {
    let mut store: Vec<(i64, MOpId, u64)> = vec![(0, MOpId::INITIAL, 0); OBJECTS];
    let mut seq = [0u32; 4];
    let mut records = Vec::new();
    let mut value = 1i64;
    for (i, step) in plan.iter().enumerate() {
        let p = ProcessId::new(step.process as u32);
        let id = MOpId::new(p, seq[step.process as usize]);
        seq[step.process as usize] += 1;
        let mut ops = Vec::new();
        for &o in &step.objects {
            let obj = ObjectId::new(o as u32);
            if step.write {
                let (_, _, ver) = store[o as usize];
                store[o as usize] = (value, id, ver + 1);
                ops.push(CompletedOp::write(obj, value, id, ver + 1));
                value += 1;
            } else {
                let (v, w, ver) = store[o as usize];
                ops.push(CompletedOp::read(obj, v, w, ver));
            }
        }
        let t = i as u64 * 10;
        records.push(MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(t),
            responded_at: EventTime::from_nanos(t + 5),
            ops,
            outputs: Vec::new(),
            treated_as: if step.write {
                MOpClass::Update
            } else {
                MOpClass::Query
            },
            label: format!("s{i}"),
        });
    }
    History::new(OBJECTS, records).expect("serial plan is well-formed")
}

/// Rewires each read of a serial history to a random writer of the same
/// object, producing arbitrary (usually inconsistent) histories.
fn scramble(h: &History, choices: &[u8]) -> History {
    let mut records = h.records().to_vec();
    let mut c = choices.iter().cycle();
    for rec in &mut records {
        let id = rec.id;
        for op in &mut rec.ops {
            if op.is_read() {
                let writers: Vec<_> = h
                    .writers_of(op.object)
                    .iter()
                    .map(|&w| h.record(w))
                    .filter(|r| r.id != id)
                    .collect();
                let pick = *c.next().unwrap() as usize;
                if writers.is_empty() || pick % (writers.len() + 1) == writers.len() {
                    *op = CompletedOp::read(op.object, 0, MOpId::INITIAL, 0);
                } else {
                    let w = writers[pick % (writers.len() + 1)];
                    let wr = w
                        .final_writes()
                        .into_iter()
                        .find(|x| x.object == op.object)
                        .unwrap();
                    *op = CompletedOp::read(op.object, wr.value, w.id, wr.version);
                }
            }
        }
    }
    History::new(h.num_objects(), records).expect("scramble keeps well-formedness")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn serial_histories_are_always_admissible(
        plan in proptest::collection::vec(step_strategy(), 1..12),
    ) {
        let h = serial_from_plan(&plan);
        let rel = process_order(&h)
            .union(&reads_from(&h))
            .union(&real_time(&h));
        let (outcome, stats) = find_legal_extension(&h, &rel, SearchLimits::default());
        let witness = outcome.witness().expect("serial history admissible");
        prop_assert!(sequence_witnesses_admissibility(&h, &rel, witness));
        prop_assert!(stats.nodes <= h.len() as u64 + 1, "no backtracking needed");

        // Witness materialization round-trips.
        let serial = make_sequential_history(&h, witness).unwrap();
        prop_assert!(is_sequential(&serial));
        prop_assert!(serial.equivalent(&h));

        // Real-time-total serial histories satisfy OO; the fast path must
        // agree (it always accepts here).
        let fast = check_under_constraint(&h, &rel, Constraint::Oo)
            .expect("serial history is under OO via real time");
        prop_assert!(fast.is_admissible());
    }

    #[test]
    fn checker_is_total_and_witnesses_validate(
        plan in proptest::collection::vec(step_strategy(), 1..10),
        choices in proptest::collection::vec(any::<u8>(), 1..20),
    ) {
        let h = scramble(&serial_from_plan(&plan), &choices);
        let rel = process_order(&h).union(&reads_from(&h));
        // Scrambling may create reads-from cycles: still must not panic.
        let (outcome, _) =
            find_legal_extension(&h, &rel, SearchLimits::with_max_nodes(300_000));
        if let SearchOutcome::Admissible(w) = &outcome {
            prop_assert!(sequence_witnesses_admissibility(&h, &rel, w));
        }
        // Verdicts are deterministic.
        let (again, _) =
            find_legal_extension(&h, &rel, SearchLimits::with_max_nodes(300_000));
        prop_assert_eq!(
            matches!(outcome, SearchOutcome::Admissible(_)),
            matches!(again, SearchOutcome::Admissible(_))
        );
    }

    #[test]
    fn memo_ablation_never_changes_verdicts(
        plan in proptest::collection::vec(step_strategy(), 1..8),
        choices in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        let h = scramble(&serial_from_plan(&plan), &choices);
        let rel = process_order(&h).union(&reads_from(&h));
        let limits = SearchLimits::with_max_nodes(200_000);
        let (with_memo, _) = find_legal_extension(&h, &rel, limits);
        let (without, _) = find_legal_extension(&h, &rel, limits.without_memo());
        // Compare verdicts when both finished within budget.
        if !matches!(with_memo, SearchOutcome::LimitExceeded)
            && !matches!(without, SearchOutcome::LimitExceeded)
        {
            prop_assert_eq!(with_memo.is_admissible(), without.is_admissible());
        }
    }
}
