//! # moc-monitor
//!
//! The online consistency sentinel: a streaming checker that ingests
//! m-operation invocation/response events *as they happen*, maintains the
//! set of unsettled m-operations, and decides the configured condition
//! (m-SC, m-linearizability or m-normality) window by window — emitting a
//! versioned rolling `moc-cert` certificate at each quiescence point —
//! while keeping live-graph memory bounded under unbounded traffic.
//!
//! ## Windows, retirement and the peeling seam
//!
//! The batch checker's memory is superlinear in history length (the `~H+`
//! closure is an n×n relation). The monitor bounds it by *retiring* settled
//! prefixes, reusing the forced-prefix peeling seam of the pruned search
//! ([`moc_checker::precedence`]): after a window is certified admissible,
//! any m-operation ordered by the saturated closure `~H+` before every
//! other unsettled m-operation can never be reordered by future events'
//! constraints within the window machinery, so it leaves the live set. For
//! m-linearizability a quiescence point settles *everything*: every future
//! invocation follows every current response in real time, so the real-time
//! base relation alone pins the whole prefix (the quiescence-decomposition
//! folklore for linearizability).
//!
//! Retired writers do not vanish: a compact per-writer summary (identity,
//! event times, writes) is kept so that a later read whose provenance
//! reaches into the retired region can be re-based — the summary is
//! synthesized back into the window as a write-only record at its original
//! event times, keeping [`History::new`]'s read-provenance validation and
//! the real-time order faithful. Each rolling certificate therefore binds a
//! self-contained sub-history that the batch checker and the independent
//! `moc-audit` crate accept unchanged: cross-validation is replaying the
//! certificate's own window.
//!
//! ## Bounded memory and degradation
//!
//! Two hard caps replace OOM with explicit, counted degradation:
//!
//! * [`MonitorConfig::max_live_nodes`] bounds the live set. When traffic
//!   outruns retirement (e.g. an m-SC stream with no forced prefix), the
//!   oldest live records are force-dropped — summarized, never certified —
//!   and the monitor reports [`MonitorMode::Degraded`] with the exact
//!   `dropped_prefix` count plus backpressure counters, instead of growing
//!   without bound.
//! * The writer-summary map is capped as well; evicting a summary may make
//!   a later deep-stale read unresolvable, in which case that record is
//!   skipped (counted, degraded) rather than mis-flagged.
//!
//! ## Fail-fast on refutation
//!
//! The first inadmissible window — or any structurally corrupt stream
//! (duplicate completion, invalid provenance), the signature of a sabotaged
//! or misbehaving replica — latches a [`Violation`] carrying the refutation
//! certificate, the culprit process and the detection latency. The latch is
//! permanent: ingestion stops doing work, so a violation can never be
//! papered over by later traffic.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use moc_checker::certificate::{check_certified, Certificate, Proof};
use moc_checker::precedence::PrecedenceGraph;
use moc_checker::{Condition, SearchLimits};
use moc_core::codec;
use moc_core::history::{History, MOpIdx};
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::{EventTime, MOpRecord};
use moc_core::op::{CompletedOp, OpKind};

/// When a stream never quiesces, a window check is forced anyway once this
/// many windows' worth of fresh completions pile up (retirement then uses
/// peeling only, never the quiescence rule).
const FORCED_CHECK_FACTOR: usize = 4;

/// Writer summaries kept per live-node of budget (see module docs).
const SUMMARY_BUDGET_FACTOR: usize = 4;

/// Configuration of an [`OnlineMonitor`].
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// The condition the sentinel decides window by window.
    pub condition: Condition,
    /// Minimum fresh completions before a quiescence point triggers a
    /// window check (batching knob: smaller = lower detection latency,
    /// larger = fewer checks).
    pub window: usize,
    /// Hard cap on the live (unsettled) set. Crossing it force-drops the
    /// oldest live records and degrades, instead of growing without bound.
    pub max_live_nodes: usize,
    /// Search budget for each window check.
    pub limits: SearchLimits,
}

impl MonitorConfig {
    /// Defaults: window 16, 4096 live nodes, default search limits.
    pub fn new(condition: Condition) -> Self {
        MonitorConfig {
            condition,
            window: 16,
            max_live_nodes: 4096,
            limits: SearchLimits::default(),
        }
    }

    /// Overrides the window batching threshold (clamped to ≥ 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Overrides the live-set hard cap (clamped to ≥ 2).
    pub fn with_max_live_nodes(mut self, cap: usize) -> Self {
        self.max_live_nodes = cap.max(2);
        self
    }

    /// Overrides the per-window search budget.
    pub fn with_limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// Health of the sentinel's coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorMode {
    /// Every completed m-operation was covered by an emitted certificate
    /// (or is still live awaiting its window).
    Healthy,
    /// Backpressure: `dropped_prefix` m-operations were settled *without*
    /// certification — force-dropped at the cap or skipped for
    /// unresolvable retired provenance. Verdicts remain sound for what was
    /// checked; coverage is no longer total.
    Degraded {
        /// Completed m-operations never covered by a certificate.
        dropped_prefix: u64,
    },
}

/// Backpressure and progress counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Invocation events ingested.
    pub invocations: u64,
    /// Completion events ingested.
    pub completions: u64,
    /// Window checks run.
    pub windows_checked: u64,
    /// Rolling certificates emitted (admissible windows).
    pub certs_emitted: u64,
    /// Records retired through the peeling / quiescence seam (certified
    /// before leaving the live set).
    pub retired: u64,
    /// Records force-dropped at the live-set cap (never certified).
    pub force_dropped: u64,
    /// Records skipped from a window because their read provenance
    /// reached beyond the summary horizon (never certified).
    pub skipped: u64,
    /// Reads whose writer had been evicted from the summary map.
    pub provenance_misses: u64,
    /// Writer summaries evicted at the summary cap.
    pub summaries_evicted: u64,
    /// Window checks that exhausted the search budget (no verdict).
    pub check_errors: u64,
    /// Times the live-set cap forced a drop.
    pub backpressure_events: u64,
    /// High-water mark of the live set.
    pub peak_live_nodes: usize,
    /// High-water mark of a checked window (live + synthesized writers).
    pub peak_window: usize,
}

/// A versioned rolling certificate: one quiescence window's verdict, bound
/// to a self-contained replayable sub-history.
#[derive(Debug, Clone)]
pub struct RollingCert {
    /// Monotone version of this certificate in the stream.
    pub version: u64,
    /// The condition decided.
    pub condition: Condition,
    /// Records settled (retired/dropped/skipped) before this window.
    pub base: u64,
    /// Records in the window (including synthesized retired writers).
    pub window_len: usize,
    /// Stream time at emission (ns).
    pub emitted_at_ns: u64,
    /// FNV-1a fingerprint of the window history.
    pub fingerprint: u64,
    /// The verdict.
    pub admissible: bool,
    /// The `moc-cert` JSON text (audits against `window` unchanged).
    pub cert_text: String,
    /// The self-contained window the certificate is bound to.
    pub window: History,
}

/// One verdict on the live timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Stream time of the check (ns).
    pub at_ns: u64,
    /// Certificate version the check produced.
    pub version: u64,
    /// The verdict.
    pub admissible: bool,
    /// Live-set size at the check.
    pub live_nodes: usize,
}

/// The latched fail-fast refutation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stream time of detection (ns).
    pub at_ns: u64,
    /// Human-readable cause.
    pub detail: String,
    /// The process most plausibly responsible (the latest-responding
    /// participant of the refutation core) — the containment target.
    pub culprit: Option<ProcessId>,
    /// Detection latency: stream time between the newest response in the
    /// offending window and the verdict.
    pub detection_latency_ns: u64,
    /// The refutation certificate, when the checker produced one
    /// (structural violations latch without a certificate).
    pub cert: Option<RollingCert>,
}

/// Everything a finished monitor leaves behind.
#[derive(Debug, Clone)]
pub struct MonitorRunSummary {
    /// Final coverage mode.
    pub mode: MonitorMode,
    /// Counters.
    pub stats: MonitorStats,
    /// The verdict timeline.
    pub timeline: Vec<TimelinePoint>,
    /// All admissible rolling certificates, in version order.
    pub certs: Vec<RollingCert>,
    /// The latched violation, if any.
    pub violation: Option<Violation>,
}

/// Compact memory of a retired writer: enough to re-base a later read's
/// provenance into a window without keeping the full record live.
#[derive(Debug, Clone)]
struct WriterSummary {
    invoked: EventTime,
    responded: EventTime,
    writes: Vec<CompletedOp>,
}

impl WriterSummary {
    fn of(rec: &MOpRecord) -> Option<Self> {
        let writes: Vec<CompletedOp> = rec
            .ops
            .iter()
            .filter(|op| op.kind == OpKind::Write)
            .cloned()
            .collect();
        if writes.is_empty() {
            return None;
        }
        Some(WriterSummary {
            invoked: rec.invoked_at,
            responded: rec.responded_at,
            writes,
        })
    }

    fn synthesize(&self, id: MOpId) -> MOpRecord {
        MOpRecord {
            id,
            invoked_at: self.invoked,
            responded_at: self.responded,
            ops: self.writes.clone(),
            outputs: Vec::new(),
            treated_as: moc_core::mop::MOpClass::Update,
            label: "retired".into(),
        }
    }
}

/// The streaming sentinel. Feed it [`OnlineMonitor::on_invoke`] /
/// [`OnlineMonitor::on_complete`] in stream order; read verdicts off
/// [`OnlineMonitor::violation`], [`OnlineMonitor::certs`] and
/// [`OnlineMonitor::timeline`].
#[derive(Debug)]
pub struct OnlineMonitor {
    cfg: MonitorConfig,
    num_objects: usize,
    /// Unsettled records, in completion order.
    live: Vec<MOpRecord>,
    live_ids: BTreeSet<MOpId>,
    /// Completions since the last certified window.
    fresh: usize,
    /// Outstanding invocations (global quiescence = 0).
    inflight: u64,
    summaries: BTreeMap<MOpId, WriterSummary>,
    summary_order: VecDeque<MOpId>,
    /// Records settled (retired + dropped + skipped) so far.
    settled: u64,
    version: u64,
    stats: MonitorStats,
    timeline: Vec<TimelinePoint>,
    certs: Vec<RollingCert>,
    violation: Option<Violation>,
}

impl OnlineMonitor {
    /// A monitor over a universe of `num_objects` objects.
    pub fn new(num_objects: usize, cfg: MonitorConfig) -> Self {
        OnlineMonitor {
            cfg,
            num_objects,
            live: Vec::new(),
            live_ids: BTreeSet::new(),
            fresh: 0,
            inflight: 0,
            summaries: BTreeMap::new(),
            summary_order: VecDeque::new(),
            settled: 0,
            version: 0,
            stats: MonitorStats::default(),
            timeline: Vec::new(),
            certs: Vec::new(),
            violation: None,
        }
    }

    /// An invocation event entered the system.
    pub fn on_invoke(&mut self, _id: MOpId, _now_ns: u64) {
        self.stats.invocations += 1;
        self.inflight += 1;
    }

    /// A response event: the m-operation completed with `rec`. Returns the
    /// latched violation, if any (including one this event just triggered).
    pub fn on_complete(&mut self, rec: MOpRecord, now_ns: u64) -> Option<&Violation> {
        self.stats.completions += 1;
        self.inflight = self.inflight.saturating_sub(1);
        if self.violation.is_some() {
            // Fail-fast latch: no further bookkeeping or checking.
            return self.violation.as_ref();
        }
        if self.live_ids.contains(&rec.id) || self.summaries.contains_key(&rec.id) {
            let last = self.newest_response();
            self.violation = Some(Violation {
                at_ns: now_ns,
                detail: format!(
                    "duplicate completion of {:?}: the stream re-applied an \
                     already-settled m-operation",
                    rec.id
                ),
                culprit: Some(rec.id.process),
                detection_latency_ns: now_ns.saturating_sub(last),
                cert: None,
            });
            return self.violation.as_ref();
        }
        self.live_ids.insert(rec.id);
        self.live.push(rec);
        self.fresh += 1;
        if self.live.len() > self.cfg.max_live_nodes {
            self.force_drop();
        }
        self.stats.peak_live_nodes = self.stats.peak_live_nodes.max(self.live.len());
        let quiescent = self.inflight == 0;
        if (quiescent && self.fresh >= self.cfg.window)
            || self.fresh >= self.cfg.window * FORCED_CHECK_FACTOR
        {
            self.check_window(now_ns, quiescent);
        }
        self.violation.as_ref()
    }

    /// Checks any remaining fresh completions (end of stream).
    pub fn flush(&mut self, now_ns: u64) -> Option<&Violation> {
        if self.violation.is_none() && self.fresh > 0 {
            self.check_window(now_ns, self.inflight == 0);
        }
        self.violation.as_ref()
    }

    /// Current coverage mode.
    pub fn mode(&self) -> MonitorMode {
        let dropped = self.stats.force_dropped + self.stats.skipped;
        if dropped == 0 {
            MonitorMode::Healthy
        } else {
            MonitorMode::Degraded {
                dropped_prefix: dropped,
            }
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// The verdict timeline so far.
    pub fn timeline(&self) -> &[TimelinePoint] {
        &self.timeline
    }

    /// Admissible rolling certificates emitted so far.
    pub fn certs(&self) -> &[RollingCert] {
        &self.certs
    }

    /// The latched violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// Current live-set size.
    pub fn live_nodes(&self) -> usize {
        self.live.len()
    }

    /// Consumes the monitor into its final summary.
    pub fn into_summary(self) -> MonitorRunSummary {
        MonitorRunSummary {
            mode: self.mode(),
            stats: self.stats,
            timeline: self.timeline,
            certs: self.certs,
            violation: self.violation,
        }
    }

    fn newest_response(&self) -> u64 {
        self.live
            .iter()
            .map(|r| r.responded_at.as_nanos())
            .max()
            .unwrap_or(0)
    }

    /// Backpressure: the live set crossed the hard cap. The oldest records
    /// are settled *uncertified* — summarized so later provenance still
    /// resolves — and the monitor degrades instead of growing.
    fn force_drop(&mut self) {
        self.stats.backpressure_events += 1;
        while self.live.len() > self.cfg.max_live_nodes {
            let rec = self.live.remove(0);
            self.live_ids.remove(&rec.id);
            if let Some(s) = WriterSummary::of(&rec) {
                self.remember(rec.id, s);
            }
            self.stats.force_dropped += 1;
            self.settled += 1;
            self.fresh = self.fresh.min(self.live.len());
        }
    }

    fn remember(&mut self, id: MOpId, summary: WriterSummary) {
        if self.summaries.insert(id, summary).is_none() {
            self.summary_order.push_back(id);
        }
        let cap = (self.cfg.max_live_nodes * SUMMARY_BUDGET_FACTOR).max(64);
        while self.summaries.len() > cap {
            let old = self.summary_order.pop_front().expect("order tracks map");
            self.summaries.remove(&old);
            self.stats.summaries_evicted += 1;
        }
    }

    /// Builds the self-contained window history: retained live records
    /// plus synthesized summaries for every retired writer they read from.
    /// Live records whose provenance cannot be resolved are settled as
    /// skipped (degraded). Returns the history and, per window index, the
    /// originating live index (`None` for synthesized writers).
    fn window_history(&mut self) -> Result<(History, Vec<Option<usize>>), String> {
        // Settle records whose read provenance is beyond every horizon.
        let mut extra: BTreeMap<MOpId, WriterSummary> = BTreeMap::new();
        let all_live: BTreeSet<MOpId> = self.live_ids.clone();
        let mut keep = vec![true; self.live.len()];
        for (i, rec) in self.live.iter().enumerate() {
            for op in &rec.ops {
                if op.kind != OpKind::Read || op.writer == MOpId::INITIAL || op.writer == rec.id {
                    continue;
                }
                if !(all_live.contains(&op.writer)
                    || self.summaries.contains_key(&op.writer)
                    || extra.contains_key(&op.writer))
                {
                    self.stats.provenance_misses += 1;
                    keep[i] = false;
                }
            }
            if !keep[i] {
                if let Some(s) = WriterSummary::of(rec) {
                    extra.insert(rec.id, s);
                }
            }
        }
        let mut retained: Vec<MOpRecord> = Vec::with_capacity(self.live.len());
        let mut skipped = 0u64;
        for (i, rec) in std::mem::take(&mut self.live).into_iter().enumerate() {
            if keep[i] {
                retained.push(rec);
            } else {
                self.live_ids.remove(&rec.id);
                skipped += 1;
            }
        }
        self.stats.skipped += skipped;
        self.settled += skipped;
        for (id, s) in extra {
            self.remember(id, s);
        }

        // Synthesize every retired writer the retained records read from.
        let mut needed: BTreeSet<MOpId> = BTreeSet::new();
        for rec in &retained {
            for op in &rec.ops {
                if op.kind == OpKind::Read
                    && op.writer != MOpId::INITIAL
                    && op.writer != rec.id
                    && !self.live_ids.contains(&op.writer)
                {
                    needed.insert(op.writer);
                }
            }
        }
        let mut synth: Vec<MOpRecord> = needed
            .iter()
            .map(|id| {
                self.summaries
                    .get(id)
                    .expect("unresolvable reads were settled above")
                    .synthesize(*id)
            })
            .collect();
        synth.sort_by_key(|r| (r.invoked_at, r.responded_at, r.id));

        let mut map: Vec<Option<usize>> = vec![None; synth.len()];
        let mut records = synth;
        for (pos, rec) in retained.iter().enumerate() {
            map.push(Some(pos));
            records.push(rec.clone());
        }
        self.live = retained;
        match History::new(self.num_objects, records) {
            Ok(h) => Ok((h, map)),
            Err(e) => Err(format!("window history rejected: {e:?}")),
        }
    }

    fn check_window(&mut self, now_ns: u64, quiescent: bool) {
        self.stats.windows_checked += 1;
        let last_response = self.newest_response();
        let (h, map) = match self.window_history() {
            Ok(t) => t,
            Err(detail) => {
                let culprit = self.live.last().map(|r| r.id.process);
                self.violation = Some(Violation {
                    at_ns: now_ns,
                    detail,
                    culprit,
                    detection_latency_ns: now_ns.saturating_sub(last_response),
                    cert: None,
                });
                return;
            }
        };
        self.stats.peak_window = self.stats.peak_window.max(h.len());
        let (report, cert) = match check_certified(&h, self.cfg.condition, self.cfg.limits) {
            Ok(rc) => rc,
            Err(_) => {
                // Budget exhausted without a verdict: count it, keep the
                // window live, and let the cap backstop memory.
                self.stats.check_errors += 1;
                self.fresh = 0;
                return;
            }
        };
        self.version += 1;
        let rolling = RollingCert {
            version: self.version,
            condition: self.cfg.condition,
            base: self.settled,
            window_len: h.len(),
            emitted_at_ns: now_ns,
            fingerprint: codec::fingerprint(&h),
            admissible: report.satisfied,
            cert_text: cert.to_text(),
            window: h.clone(),
        };
        self.timeline.push(TimelinePoint {
            at_ns: now_ns,
            version: self.version,
            admissible: report.satisfied,
            live_nodes: self.live.len(),
        });
        if report.satisfied {
            self.stats.certs_emitted += 1;
            self.certs.push(rolling);
            self.retire(&h, &map, quiescent);
            self.fresh = 0;
        } else {
            let culprit = self.culprit_of(&h, &cert, &map);
            self.violation = Some(Violation {
                at_ns: now_ns,
                detail: report
                    .reason
                    .unwrap_or_else(|| "window refuted".to_string()),
                culprit,
                detection_latency_ns: now_ns.saturating_sub(last_response),
                cert: Some(rolling),
            });
        }
    }

    /// Settles the certified window's forced prefix out of the live set.
    ///
    /// Under m-linearizability a quiescence point settles everything: all
    /// current responses precede (in real time) every future invocation.
    /// Otherwise the peeling criterion of the pruned search applies: a
    /// record `u` with `u ~H+ v` for every other window member is a fixed
    /// prefix of every legal linearization of the window.
    fn retire(&mut self, h: &History, map: &[Option<usize>], quiescent: bool) {
        let mut retire_live: Vec<usize> = Vec::new();
        if quiescent && self.cfg.condition == Condition::MLinearizability {
            retire_live.extend(map.iter().flatten().copied());
        } else {
            let graph = PrecedenceGraph::for_condition(h, self.cfg.condition);
            let closed = graph.closed();
            let mut remaining: Vec<usize> = (0..h.len()).collect();
            while let Some(pos) = remaining.iter().position(|&u| {
                remaining
                    .iter()
                    .all(|&v| v == u || closed.contains(MOpIdx(u), MOpIdx(v)))
            }) {
                let u = remaining.swap_remove(pos);
                if let Some(li) = map[u] {
                    retire_live.push(li);
                }
            }
        }
        if retire_live.is_empty() {
            return;
        }
        let retire_set: BTreeSet<usize> = retire_live.into_iter().collect();
        let mut kept = Vec::with_capacity(self.live.len() - retire_set.len());
        for (i, rec) in std::mem::take(&mut self.live).into_iter().enumerate() {
            if retire_set.contains(&i) {
                self.live_ids.remove(&rec.id);
                if let Some(s) = WriterSummary::of(&rec) {
                    self.remember(rec.id, s);
                }
                self.stats.retired += 1;
                self.settled += 1;
            } else {
                kept.push(rec);
            }
        }
        self.live = kept;
    }

    /// The latest-responding live participant of the refutation core.
    fn culprit_of(
        &self,
        h: &History,
        cert: &Certificate,
        map: &[Option<usize>],
    ) -> Option<ProcessId> {
        let candidates: Vec<MOpIdx> = match &cert.proof {
            Proof::Cycle(proof) => proof
                .edges
                .iter()
                .flat_map(|pe| [pe.edge.from, pe.edge.to])
                .collect(),
            _ => (0..h.len()).map(MOpIdx).collect(),
        };
        candidates
            .into_iter()
            .filter(|idx| map.get(idx.0).copied().flatten().is_some())
            .max_by_key(|&idx| h.record(idx).responded_at)
            .map(|idx| h.record(idx).id.process)
    }
}

/// Replays a recorded history through a monitor as a live stream: both
/// event kinds of every m-operation, merged in event-time order (responses
/// before invocations at equal times, so quiescence points are visible),
/// then a final flush one tick after the last event. Returns the summary.
pub fn replay(h: &History, mut mon: OnlineMonitor) -> MonitorRunSummary {
    // (time, kind, seq): kind 0 = response, 1 = invocation.
    let mut events: Vec<(u64, u8, usize)> = Vec::with_capacity(2 * h.len());
    for (i, rec) in h.records().iter().enumerate() {
        events.push((rec.invoked_at.as_nanos(), 1, i));
        events.push((rec.responded_at.as_nanos(), 0, i));
    }
    events.sort_unstable_by_key(|&(t, k, i)| (t, k, h.records()[i].id));
    let mut last = 0u64;
    for (t, kind, i) in events {
        last = t;
        let rec = &h.records()[i];
        if kind == 1 {
            mon.on_invoke(rec.id, t);
        } else {
            mon.on_complete(rec.clone(), t);
        }
    }
    mon.flush(last + 1);
    mon.into_summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::history::HistoryBuilder;
    use moc_core::ids::ObjectId;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    /// Every emitted rolling certificate must agree with the batch checker
    /// on its own window and re-audit cleanly.
    fn cross_validate(summary: &MonitorRunSummary) {
        for cert in &summary.certs {
            let (report, _) =
                check_certified(&cert.window, cert.condition, SearchLimits::default())
                    .expect("batch check on a certified window");
            assert_eq!(
                report.satisfied, cert.admissible,
                "v{}: streaming and batch verdicts must agree",
                cert.version
            );
            moc_audit::audit(&cert.window, &cert.cert_text)
                .unwrap_or_else(|e| panic!("v{} failed audit: {e}", cert.version));
        }
        if let Some(v) = &summary.violation {
            if let Some(cert) = &v.cert {
                assert!(!cert.admissible);
                moc_audit::audit(&cert.window, &cert.cert_text)
                    .expect("refutation certificate must audit");
            }
        }
    }

    /// Two quiescence-separated phases under m-linearizability: phase one
    /// retires completely, phase two's read re-bases onto a synthesized
    /// summary of the retired writer.
    #[test]
    fn quiescence_retires_and_summaries_carry_provenance() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        let w = b.mop(pid(0)).at(0, 10).write(x, 7).finish();
        b.mop(pid(1)).at(20, 30).read_from(x, 7, w).finish();
        b.mop(pid(0)).at(40, 50).read_from(x, 7, w).finish();
        let h = b.build().unwrap();

        let cfg = MonitorConfig::new(Condition::MLinearizability).with_window(1);
        let summary = replay(&h, OnlineMonitor::new(1, cfg));
        assert!(summary.violation.is_none(), "{:?}", summary.violation);
        assert_eq!(summary.mode, MonitorMode::Healthy);
        assert_eq!(summary.certs.len(), 3, "one cert per quiescence point");
        assert!(summary.stats.retired >= 1, "phase one must retire");
        // Later windows contain the synthesized retired writer.
        assert!(summary.certs[1].window.len() >= 2);
        cross_validate(&summary);
    }

    /// The classic SC litmus refutes: fail-fast latch, refutation cert,
    /// culprit and detection latency all populated.
    #[test]
    fn violation_latches_fail_fast_with_refutation_cert() {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        b.mop(pid(0)).at(20, 30).read_init(y).finish();
        b.mop(pid(1)).at(0, 10).write(y, 1).finish();
        b.mop(pid(1)).at(20, 30).read_init(x).finish();
        let h = b.build().unwrap();

        let cfg = MonitorConfig::new(Condition::MSequentialConsistency).with_window(1);
        let summary = replay(&h, OnlineMonitor::new(2, cfg));
        let v = summary.violation.as_ref().expect("litmus must refute");
        assert!(v.culprit.is_some());
        let cert = v.cert.as_ref().expect("refutation is certified");
        assert!(!cert.admissible);
        assert!(cert.cert_text.contains("inadmissible"));
        cross_validate(&summary);
        // The latch halted certification at the refuted window.
        assert!(summary.timeline.last().is_some_and(|p| !p.admissible));
    }

    /// Re-applying an already-settled m-operation (sabotage signature) is
    /// caught structurally, before any graph work.
    #[test]
    fn duplicate_completion_is_flagged() {
        let x = oid(0);
        let mut b = HistoryBuilder::new(1);
        b.mop(pid(0)).at(0, 10).write(x, 1).finish();
        let h = b.build().unwrap();
        let rec = h.records()[0].clone();

        let mut mon = OnlineMonitor::new(
            1,
            MonitorConfig::new(Condition::MSequentialConsistency).with_window(8),
        );
        mon.on_invoke(rec.id, 0);
        assert!(mon.on_complete(rec.clone(), 10).is_none());
        let v = mon.on_complete(rec, 11).expect("duplicate must latch");
        assert!(v.detail.contains("duplicate"));
        assert_eq!(v.culprit, Some(pid(0)));
    }

    /// An m-SC stream with no forced prefix cannot retire; the hard cap
    /// must bound the live set and degrade instead of growing or dying.
    #[test]
    fn bounded_memory_under_non_retiring_stream() {
        let cap = 8;
        let mut mon = OnlineMonitor::new(
            1,
            MonitorConfig::new(Condition::MSequentialConsistency)
                .with_window(4)
                .with_max_live_nodes(cap),
        );
        let x = oid(0);
        for i in 0..50u32 {
            // Distinct processes, no reads: no process or ~rw edges, so
            // nothing ever peels under m-SC.
            let id = MOpId::new(pid(i), 0);
            let t = 100 * u64::from(i);
            mon.on_invoke(id, t);
            let rec = MOpRecord {
                id,
                invoked_at: EventTime(t),
                responded_at: EventTime(t + 10),
                ops: vec![CompletedOp::write(x, i64::from(i), id, u64::from(i) + 1)],
                outputs: vec![],
                treated_as: moc_core::mop::MOpClass::Update,
                label: "w".into(),
            };
            assert!(mon.on_complete(rec, t + 10).is_none(), "never a violation");
        }
        assert!(mon.stats().peak_live_nodes <= cap, "hard cap holds");
        assert!(matches!(
            mon.mode(),
            MonitorMode::Degraded { dropped_prefix } if dropped_prefix > 0
        ));
        assert!(mon.stats().backpressure_events > 0);
        assert!(mon.stats().certs_emitted > 0, "still certifying windows");
        cross_validate(&mon.into_summary());
    }

    /// Streaming verdicts agree with the batch checker window by window
    /// across a longer mixed read/write m-lin stream.
    #[test]
    fn rolling_certs_cross_validate_on_mixed_stream() {
        let x = oid(0);
        let y = oid(1);
        let mut b = HistoryBuilder::new(2);
        let mut last_w = None;
        for phase in 0..6u64 {
            let t = phase * 100;
            let w = b
                .mop(pid(0))
                .at(t, t + 10)
                .write(x, phase as i64)
                .write(y, phase as i64)
                .finish();
            if let Some(prev) = last_w {
                b.mop(pid(1))
                    .at(t + 20, t + 30)
                    .read_from(x, phase as i64, w)
                    .read_from(y, (phase - 1) as i64, prev)
                    .finish();
            }
            last_w = Some(w);
        }
        let h = b.build().unwrap();
        // Reading the previous phase's y after the current phase's x is
        // only legal while the previous write is still the... it is not:
        // this history is NOT m-linearizable. Use a clean variant instead.
        let lin = check_certified(&h, Condition::MLinearizability, SearchLimits::default());
        let mut b = HistoryBuilder::new(2);
        for phase in 0..6u64 {
            let t = phase * 100;
            let w = b
                .mop(pid(0))
                .at(t, t + 10)
                .write(x, phase as i64)
                .write(y, phase as i64)
                .finish();
            b.mop(pid(1))
                .at(t + 20, t + 30)
                .read_from(x, phase as i64, w)
                .read_from(y, phase as i64, w)
                .finish();
        }
        let clean = b.build().unwrap();
        let cfg = MonitorConfig::new(Condition::MLinearizability).with_window(2);
        let summary = replay(&clean, OnlineMonitor::new(2, cfg));
        assert!(summary.violation.is_none(), "{:?}", summary.violation);
        assert!(summary.certs.len() >= 2, "multiple rolling windows");
        assert_eq!(
            summary.stats.retired, 12,
            "under m-lin every quiescence point settles all live records"
        );
        cross_validate(&summary);
        // The stale-read variant must refute when streamed too.
        if let Ok((report, _)) = lin {
            if !report.satisfied {
                let cfg = MonitorConfig::new(Condition::MLinearizability).with_window(2);
                let s2 = replay(&h, OnlineMonitor::new(2, cfg));
                assert!(s2.violation.is_some(), "stale stream must refute online");
                cross_validate(&s2);
            }
        }
    }
}
