//! # moc-sim
//!
//! A deterministic discrete-event simulator for asynchronous
//! message-passing systems.
//!
//! The Section 5 protocols of Mittal & Garg (1998) assume exactly this
//! substrate: "processes and channels are reliable and a message sent is
//! eventually received. However, the messages can get reordered." The
//! simulator provides:
//!
//! * virtual time ([`SimTime`], nanosecond granularity);
//! * reliable channels — every message is delivered exactly once, never
//!   dropped or duplicated — with per-message random delays drawn from a
//!   configurable [`DelayModel`], which reorders messages arbitrarily;
//! * deterministic execution: the same seed and the same node logic always
//!   produce the same schedule, making protocol bugs reproducible;
//! * externally injected events ([`World::schedule_call`]) so a test
//!   harness can invoke operations on nodes at chosen virtual times.
//!
//! Nodes are pure state machines implementing [`Node`]; all effects go
//! through the [`Context`] handed to each handler.
//!
//! ```
//! use moc_core::ids::ProcessId;
//! use moc_sim::{Context, DelayModel, NetworkConfig, Node, World};
//!
//! /// Each node forwards a counter to the next node, n hops.
//! struct Hop {
//!     hops_seen: u64,
//! }
//! impl Node for Hop {
//!     type Msg = u64;
//!     fn on_message(&mut self, _from: ProcessId, msg: u64, ctx: &mut Context<'_, u64>) {
//!         self.hops_seen += 1;
//!         if msg > 0 {
//!             let next = ProcessId::new((ctx.me().as_u32() + 1) % ctx.num_processes() as u32);
//!             ctx.send(next, msg - 1);
//!         }
//!     }
//! }
//!
//! let mut world = World::new(
//!     (0..3).map(|_| Hop { hops_seen: 0 }).collect(),
//!     NetworkConfig::with_delay(DelayModel::Uniform { lo: 10, hi: 100 }),
//!     42,
//! );
//! world.schedule_call(0, ProcessId::new(0), |node, ctx| {
//!     node.hops_seen += 1;
//!     let next = ProcessId::new(1);
//!     ctx.send(next, 5);
//! });
//! let stats = world.run_until_quiescent(10_000);
//! assert_eq!(stats.messages_delivered, 6);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use moc_core::ids::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point in virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time advanced by `delta_ns` nanoseconds.
    pub const fn after(self, delta_ns: u64) -> SimTime {
        SimTime(self.0 + delta_ns)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// Distribution of per-message network delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this many nanoseconds (FIFO network).
    Fixed(u64),
    /// Uniform in `[lo, hi]` — adjacent messages reorder freely.
    Uniform {
        /// Minimum delay (ns).
        lo: u64,
        /// Maximum delay (ns).
        hi: u64,
    },
    /// Exponential with the given mean — occasional stragglers, heavy
    /// reordering.
    Exponential {
        /// Mean delay (ns).
        mean: u64,
    },
}

impl DelayModel {
    /// Samples one delay.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { lo, hi } => rng.gen_range(lo..=hi.max(lo)),
            DelayModel::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-(u.ln()) * mean as f64) as u64
            }
        }
    }
}

/// Network configuration for a [`World`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Delay model for inter-process messages.
    pub delay: DelayModel,
    /// Delay model for messages a process sends to itself (loopback).
    pub self_delay: DelayModel,
}

impl NetworkConfig {
    /// A configuration using `delay` for remote links and a fast fixed
    /// loopback.
    pub fn with_delay(delay: DelayModel) -> Self {
        NetworkConfig {
            delay,
            self_delay: DelayModel::Fixed(1),
        }
    }

    /// A FIFO network with a fixed per-message delay — useful for
    /// reproducing the paper's worked example executions exactly.
    pub fn fifo(delay_ns: u64) -> Self {
        NetworkConfig {
            delay: DelayModel::Fixed(delay_ns),
            self_delay: DelayModel::Fixed(1),
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::with_delay(DelayModel::Uniform { lo: 50, hi: 5_000 })
    }
}

/// Handle to a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A deterministic state machine hosted by the simulator.
pub trait Node {
    /// The message type exchanged between nodes.
    type Msg;

    /// Called once at virtual time zero, before any event.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message arrives.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (timer, ctx);
    }
}

/// The effect interface handed to node handlers: sends, timers, identity
/// and the current virtual time. Effects are buffered and applied by the
/// [`World`] after the handler returns, so handlers stay pure.
#[derive(Debug)]
pub struct Context<'a, M> {
    me: ProcessId,
    n: usize,
    now: SimTime,
    sends: Vec<(ProcessId, M)>,
    timers: Vec<(u64, TimerId)>,
    next_timer: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// The hosting process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the world.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` (which may be `self.me()`; loopback messages are
    /// also delivered asynchronously).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends a copy of `msg` to every process, including the sender — the
    /// "send to all processes" of the paper's protocols.
    pub fn send_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for p in 0..self.n {
            self.sends.push((ProcessId::new(p as u32), msg.clone()));
        }
    }

    /// Schedules a timer `delay_ns` from now; `on_timer` fires with the
    /// returned id.
    pub fn set_timer(&mut self, delay_ns: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.timers.push((delay_ns, id));
        id
    }
}

enum Payload<N: Node> {
    Message {
        from: ProcessId,
        msg: N::Msg,
    },
    Timer(TimerId),
    #[allow(clippy::type_complexity)]
    Call(Box<dyn FnOnce(&mut N, &mut Context<'_, N::Msg>)>),
}

struct Event<N: Node> {
    at: SimTime,
    seq: u64,
    to: ProcessId,
    payload: Payload<N>,
}

impl<N: Node> PartialEq for Event<N> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<N: Node> Eq for Event<N> {}
impl<N: Node> PartialOrd for Event<N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<N: Node> Ord for Event<N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Counters describing a finished (or paused) simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events processed in total.
    pub events_processed: u64,
    /// Messages handed to `on_message`.
    pub messages_delivered: u64,
    /// Messages submitted by nodes.
    pub messages_sent: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Injected calls executed.
    pub calls_executed: u64,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
}

/// A simulated world of `n` nodes plus the event queue and network.
pub struct World<N: Node> {
    nodes: Vec<N>,
    queue: BinaryHeap<Reverse<Event<N>>>,
    time: SimTime,
    seq: u64,
    next_timer: u64,
    rng: StdRng,
    config: NetworkConfig,
    stats: RunStats,
    started: bool,
}

impl<N: Node> World<N> {
    /// Creates a world hosting `nodes` with the given network `config`,
    /// deterministically seeded by `seed`.
    pub fn new(nodes: Vec<N>, config: NetworkConfig, seed: u64) -> Self {
        World {
            nodes,
            queue: BinaryHeap::new(),
            time: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            rng: StdRng::seed_from_u64(seed),
            config,
            stats: RunStats::default(),
            started: false,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Immutable access to a node.
    pub fn node(&self, p: ProcessId) -> &N {
        &self.nodes[p.index()]
    }

    /// Mutable access to a node. Note that mutating protocol state behind
    /// the simulator's back can break determinism; prefer
    /// [`World::schedule_call`].
    pub fn node_mut(&mut self, p: ProcessId) -> &mut N {
        &mut self.nodes[p.index()]
    }

    /// Consumes the world and returns the nodes (e.g. to extract recorded
    /// histories after a run).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats;
        s.end_time = self.time;
        s
    }

    /// Schedules `f` to run on node `to` at absolute virtual time `at_ns`
    /// (clamped to "now" if already past). This is how harnesses inject
    /// m-operation invocations.
    pub fn schedule_call(
        &mut self,
        at_ns: u64,
        to: ProcessId,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg>) + 'static,
    ) {
        let at = SimTime(at_ns.max(self.time.0));
        let seq = self.bump_seq();
        self.queue.push(Reverse(Event {
            at,
            seq,
            to,
            payload: Payload::Call(Box::new(f)),
        }));
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn flush_effects(
        &mut self,
        from: ProcessId,
        sends: Vec<(ProcessId, N::Msg)>,
        timers: Vec<(u64, TimerId)>,
    ) {
        for (to, msg) in sends {
            self.stats.messages_sent += 1;
            let model = if to == from {
                self.config.self_delay
            } else {
                self.config.delay
            };
            let delay = model.sample(&mut self.rng);
            let at = self.time.after(delay.max(1));
            let seq = self.bump_seq();
            self.queue.push(Reverse(Event {
                at,
                seq,
                to,
                payload: Payload::Message { from, msg },
            }));
        }
        for (delay, id) in timers {
            let at = self.time.after(delay.max(1));
            let seq = self.bump_seq();
            self.queue.push(Reverse(Event {
                at,
                seq,
                to: from,
                payload: Payload::Timer(id),
            }));
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            let me = ProcessId::new(i as u32);
            let mut ctx = Context {
                me,
                n: self.nodes.len(),
                now: self.time,
                sends: Vec::new(),
                timers: Vec::new(),
                next_timer: &mut self.next_timer,
            };
            self.nodes[i].on_start(&mut ctx);
            let sends = std::mem::take(&mut ctx.sends);
            let timers = std::mem::take(&mut ctx.timers);
            drop(ctx);
            self.flush_effects(me, sends, timers);
        }
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.time, "time went backwards");
        self.time = ev.at;
        self.stats.events_processed += 1;
        let to = ev.to;
        let mut ctx = Context {
            me: to,
            n: self.nodes.len(),
            now: self.time,
            sends: Vec::new(),
            timers: Vec::new(),
            next_timer: &mut self.next_timer,
        };
        let node = &mut self.nodes[to.index()];
        match ev.payload {
            Payload::Message { from, msg } => {
                self.stats.messages_delivered += 1;
                node.on_message(from, msg, &mut ctx);
            }
            Payload::Timer(id) => {
                self.stats.timers_fired += 1;
                node.on_timer(id, &mut ctx);
            }
            Payload::Call(f) => {
                self.stats.calls_executed += 1;
                f(node, &mut ctx);
            }
        }
        let sends = std::mem::take(&mut ctx.sends);
        let timers = std::mem::take(&mut ctx.timers);
        drop(ctx);
        self.flush_effects(to, sends, timers);
        true
    }

    /// Runs until no events remain or `max_events` have been processed.
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is hit — a protocol that never quiesces on a
    /// finite workload is a bug in this codebase's context, and silent
    /// truncation would invalidate recorded histories.
    pub fn run_until_quiescent(&mut self, max_events: u64) -> RunStats {
        let mut processed = 0u64;
        self.start_if_needed();
        while self.step() {
            processed += 1;
            assert!(
                processed <= max_events,
                "simulation did not quiesce within {max_events} events"
            );
        }
        self.stats()
    }

    /// Runs while the next event is at or before `until_ns`.
    pub fn run_until(&mut self, until_ns: u64) -> RunStats {
        self.start_if_needed();
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at.0 > until_ns {
                break;
            }
            self.step();
        }
        self.stats()
    }
}

impl<N: Node> fmt::Debug for World<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.nodes.len())
            .field("time", &self.time)
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo node: replies to every `Ping(k)` with `Pong(k)` to the sender;
    /// the initiator counts pongs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum PingMsg {
        Ping(u64),
        Pong(u64),
    }

    #[derive(Default)]
    struct PingNode {
        pongs: Vec<u64>,
        delivered_at: Vec<SimTime>,
    }

    impl Node for PingNode {
        type Msg = PingMsg;
        fn on_message(&mut self, from: ProcessId, msg: PingMsg, ctx: &mut Context<'_, PingMsg>) {
            match msg {
                PingMsg::Ping(k) => ctx.send(from, PingMsg::Pong(k)),
                PingMsg::Pong(k) => {
                    self.pongs.push(k);
                    self.delivered_at.push(ctx.now());
                }
            }
        }
    }

    fn ping_world(seed: u64, delay: DelayModel) -> World<PingNode> {
        World::new(
            vec![PingNode::default(), PingNode::default()],
            NetworkConfig::with_delay(delay),
            seed,
        )
    }

    #[test]
    fn request_reply_roundtrip() {
        let mut w = ping_world(1, DelayModel::Fixed(100));
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), PingMsg::Ping(7));
        });
        let stats = w.run_until_quiescent(100);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(w.node(ProcessId::new(0)).pongs, vec![7]);
        // Fixed 100ns each way: pong lands at t=200.
        assert_eq!(w.node(ProcessId::new(0)).delivered_at[0], SimTime(200));
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut w = ping_world(seed, DelayModel::Uniform { lo: 1, hi: 1000 });
            for k in 0..20 {
                w.schedule_call(k, ProcessId::new(0), move |_, ctx| {
                    ctx.send(ProcessId::new(1), PingMsg::Ping(k));
                });
            }
            w.run_until_quiescent(10_000);
            w.into_nodes().remove(0).pongs
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should reorder");
    }

    #[test]
    fn uniform_delays_reorder_messages() {
        let mut w = ping_world(7, DelayModel::Uniform { lo: 1, hi: 100_000 });
        for k in 0..50 {
            w.schedule_call(k, ProcessId::new(0), move |_, ctx| {
                ctx.send(ProcessId::new(1), PingMsg::Ping(k));
            });
        }
        w.run_until_quiescent(10_000);
        let pongs = &w.node(ProcessId::new(0)).pongs;
        assert_eq!(pongs.len(), 50, "reliable: nothing lost");
        let mut sorted = pongs.clone();
        sorted.sort_unstable();
        assert_ne!(*pongs, sorted, "messages should arrive out of order");
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_delays_are_reliable_too() {
        let mut w = ping_world(3, DelayModel::Exponential { mean: 500 });
        for k in 0..30 {
            w.schedule_call(k * 10, ProcessId::new(0), move |_, ctx| {
                ctx.send(ProcessId::new(1), PingMsg::Ping(k));
            });
        }
        let stats = w.run_until_quiescent(10_000);
        assert_eq!(stats.messages_delivered, 60);
        assert_eq!(w.node(ProcessId::new(0)).pongs.len(), 30);
    }

    struct TimerNode {
        fired: Vec<(TimerId, SimTime)>,
        armed: Option<TimerId>,
    }

    impl Node for TimerNode {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            self.armed = Some(ctx.set_timer(500));
        }
        fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut Context<'_, ()>) {}
        fn on_timer(&mut self, t: TimerId, ctx: &mut Context<'_, ()>) {
            self.fired.push((t, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        let mut w = World::new(
            vec![TimerNode {
                fired: vec![],
                armed: None,
            }],
            NetworkConfig::fifo(10),
            0,
        );
        w.run_until_quiescent(10);
        let node = &w.node(ProcessId::new(0));
        assert_eq!(node.fired.len(), 1);
        assert_eq!(node.fired[0].0, node.armed.unwrap());
        assert_eq!(node.fired[0].1, SimTime(500));
    }

    struct FanoutNode {
        seen: usize,
    }
    impl Node for FanoutNode {
        type Msg = u8;
        fn on_message(&mut self, _f: ProcessId, _m: u8, _c: &mut Context<'_, u8>) {
            self.seen += 1;
        }
    }

    #[test]
    fn send_all_includes_self() {
        let mut w = World::new(
            (0..4).map(|_| FanoutNode { seen: 0 }).collect(),
            NetworkConfig::default(),
            5,
        );
        w.schedule_call(0, ProcessId::new(2), |_, ctx| ctx.send_all(9));
        let stats = w.run_until_quiescent(100);
        assert_eq!(stats.messages_sent, 4);
        for p in 0..4 {
            assert_eq!(w.node(ProcessId::new(p)).seen, 1);
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut w = ping_world(1, DelayModel::Fixed(1000));
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), PingMsg::Ping(1));
        });
        w.run_until(500);
        assert_eq!(w.stats().messages_delivered, 0, "ping still in flight");
        w.run_until(5000);
        assert_eq!(w.stats().messages_delivered, 2);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn livelock_is_detected() {
        struct Bouncer;
        impl Node for Bouncer {
            type Msg = ();
            fn on_message(&mut self, from: ProcessId, _m: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let mut w = World::new(vec![Bouncer, Bouncer], NetworkConfig::default(), 0);
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), ())
        });
        w.run_until_quiescent(100);
    }

    #[test]
    fn delay_models_sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!(DelayModel::Fixed(7).sample(&mut rng), 7);
            let u = DelayModel::Uniform { lo: 10, hi: 20 }.sample(&mut rng);
            assert!((10..=20).contains(&u));
        }
        // Exponential: mean roughly right over many samples.
        let mean: u64 = 1000;
        let total: u64 = (0..20_000)
            .map(|_| DelayModel::Exponential { mean }.sample(&mut rng))
            .sum();
        let avg = total / 20_000;
        assert!((800..=1200).contains(&avg), "avg {avg} too far from mean");
    }
}
