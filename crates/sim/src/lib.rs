//! # moc-sim
//!
//! A deterministic discrete-event simulator for asynchronous
//! message-passing systems.
//!
//! The Section 5 protocols of Mittal & Garg (1998) assume exactly this
//! substrate: "processes and channels are reliable and a message sent is
//! eventually received. However, the messages can get reordered." The
//! simulator provides:
//!
//! * virtual time ([`SimTime`], nanosecond granularity);
//! * asynchronous channels with per-message random delays drawn from a
//!   configurable [`DelayModel`], which reorders messages arbitrarily. By
//!   default channels are reliable — every message is delivered exactly
//!   once — matching the paper's channel model;
//! * **fault injection**, when a [`FaultPlan`] is installed: per-message
//!   drop and duplication probabilities, scheduled one-way partitions
//!   with healing, and replica crash/restart windows. Fault decisions are
//!   drawn from a dedicated RNG derived from the seed, so a given
//!   (seed, plan) pair replays its schedule byte-for-byte;
//! * deterministic execution: the same seed and the same node logic always
//!   produce the same schedule, making protocol bugs reproducible;
//! * externally injected events ([`World::schedule_call`]) so a test
//!   harness can invoke operations on nodes at chosen virtual times.
//!
//! Nodes are pure state machines implementing [`Node`]; all effects go
//! through the [`Context`] handed to each handler.
//!
//! ```
//! use moc_core::ids::ProcessId;
//! use moc_sim::{Context, DelayModel, NetworkConfig, Node, World};
//!
//! /// Each node forwards a counter to the next node, n hops.
//! struct Hop {
//!     hops_seen: u64,
//! }
//! impl Node for Hop {
//!     type Msg = u64;
//!     fn on_message(&mut self, _from: ProcessId, msg: u64, ctx: &mut Context<'_, u64>) {
//!         self.hops_seen += 1;
//!         if msg > 0 {
//!             let next = ProcessId::new((ctx.me().as_u32() + 1) % ctx.num_processes() as u32);
//!             ctx.send(next, msg - 1);
//!         }
//!     }
//! }
//!
//! let mut world = World::new(
//!     (0..3).map(|_| Hop { hops_seen: 0 }).collect(),
//!     NetworkConfig::with_delay(DelayModel::Uniform { lo: 10, hi: 100 }),
//!     42,
//! );
//! world.schedule_call(0, ProcessId::new(0), |node, ctx| {
//!     node.hops_seen += 1;
//!     let next = ProcessId::new(1);
//!     ctx.send(next, 5);
//! });
//! let stats = world.run_until_quiescent(10_000);
//! assert_eq!(stats.messages_delivered, 6);
//! ```
//!
//! Fault semantics: a partitioned link drops messages sent while the
//! window `[from_ns, until_ns)` is active; random drops and duplicates
//! are decided per remote send; a crashed replica silently loses every
//! message, timer and injected call addressed to it until its scheduled
//! restart, at which point [`Node::on_restart`] fires so recovery logic
//! (e.g. a reliable-link rejoin handshake) can run. All of it is
//! deterministic per (seed, plan):
//!
//! ```
//! use moc_core::ids::ProcessId;
//! use moc_sim::{Context, FaultPlan, NetworkConfig, Node, World};
//!
//! struct Sink;
//! impl Node for Sink {
//!     type Msg = u8;
//!     fn on_message(&mut self, _f: ProcessId, _m: u8, _c: &mut Context<'_, u8>) {}
//! }
//!
//! // A one-way partition 0 → 1 that never heals: the send is dropped.
//! let plan = FaultPlan::default().with_partition(
//!     ProcessId::new(0),
//!     ProcessId::new(1),
//!     0,
//!     u64::MAX,
//! );
//! let mut world = World::with_faults(vec![Sink, Sink], NetworkConfig::fifo(10), plan, 1);
//! world.schedule_call(0, ProcessId::new(0), |_, ctx| ctx.send(ProcessId::new(1), 7));
//! let stats = world.run_until_quiescent(100);
//! assert_eq!(stats.messages_dropped, 1);
//! assert_eq!(stats.messages_delivered, 0);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use moc_core::ids::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point in virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time advanced by `delta_ns` nanoseconds.
    pub const fn after(self, delta_ns: u64) -> SimTime {
        SimTime(self.0 + delta_ns)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

/// Distribution of per-message network delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Every message takes exactly this many nanoseconds (FIFO network).
    Fixed(u64),
    /// Uniform in `[lo, hi]` — adjacent messages reorder freely.
    Uniform {
        /// Minimum delay (ns).
        lo: u64,
        /// Maximum delay (ns).
        hi: u64,
    },
    /// Exponential with the given mean — occasional stragglers, heavy
    /// reordering.
    Exponential {
        /// Mean delay (ns).
        mean: u64,
    },
}

impl DelayModel {
    /// Samples one delay.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { lo, hi } => rng.gen_range(lo..=hi.max(lo)),
            DelayModel::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-(u.ln()) * mean as f64) as u64
            }
        }
    }
}

/// Network configuration for a [`World`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Delay model for inter-process messages.
    pub delay: DelayModel,
    /// Delay model for messages a process sends to itself (loopback).
    pub self_delay: DelayModel,
}

impl NetworkConfig {
    /// A configuration using `delay` for remote links and a fast fixed
    /// loopback.
    pub fn with_delay(delay: DelayModel) -> Self {
        NetworkConfig {
            delay,
            self_delay: DelayModel::Fixed(1),
        }
    }

    /// A FIFO network with a fixed per-message delay — useful for
    /// reproducing the paper's worked example executions exactly.
    pub fn fifo(delay_ns: u64) -> Self {
        NetworkConfig {
            delay: DelayModel::Fixed(delay_ns),
            self_delay: DelayModel::Fixed(1),
        }
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::with_delay(DelayModel::Uniform { lo: 50, hi: 5_000 })
    }
}

/// A scheduled one-way partition: messages sent from `from` to `to`
/// while virtual time is in `[from_ns, until_ns)` are dropped at send
/// time. Use `until_ns = u64::MAX` for a partition that never heals.
///
/// Partitions are directional; block both directions with two entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Sending side of the severed link.
    pub from: ProcessId,
    /// Receiving side of the severed link.
    pub to: ProcessId,
    /// Virtual time the partition starts (inclusive).
    pub from_ns: u64,
    /// Virtual time the partition heals (exclusive).
    pub until_ns: u64,
}

/// A scheduled replica outage: the process is down over
/// `[at_ns, restart_ns)`. While down it loses every message, timer and
/// injected call addressed to it; at `restart_ns` it comes back with its
/// state intact (a network-outage / fail-recover model, not a
/// lose-your-disk one) and [`Node::on_restart`] fires so it can re-arm
/// timers and run recovery handshakes. `restart_ns = u64::MAX` means the
/// replica never returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The process that goes down.
    pub process: ProcessId,
    /// Virtual time the outage starts.
    pub at_ns: u64,
    /// Virtual time the process restarts (`u64::MAX`: never).
    pub restart_ns: u64,
}

/// A deterministic fault schedule for a [`World`].
///
/// Probabilistic faults (drops, duplicates) are decided by a dedicated
/// RNG derived from the world seed, so a given `(seed, plan)` pair
/// always produces the same fault schedule — and a plan with zero
/// probabilities and no scheduled events is byte-for-byte identical to
/// running with no plan at all. Loopback (self) sends are exempt from
/// all faults: a process can always talk to itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a remote send is silently dropped.
    pub drop_prob: f64,
    /// Probability in `[0, 1]` that a remote send is delivered twice
    /// (the duplicate takes an independently sampled delay).
    pub dup_prob: f64,
    /// Scheduled one-way link outages.
    pub partitions: Vec<Partition>,
    /// Scheduled replica crash/restart windows.
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// A plan that only drops messages, with the given probability.
    pub fn lossy(drop_prob: f64) -> Self {
        FaultPlan::default().with_drop(drop_prob)
    }

    /// Sets the per-message drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop_prob must be in [0, 1]");
        self.drop_prob = p;
        self
    }

    /// Sets the per-message duplication probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "dup_prob must be in [0, 1]");
        self.dup_prob = p;
        self
    }

    /// Adds a one-way partition of the `from → to` link over
    /// `[from_ns, until_ns)`.
    pub fn with_partition(
        mut self,
        from: ProcessId,
        to: ProcessId,
        from_ns: u64,
        until_ns: u64,
    ) -> Self {
        self.partitions.push(Partition {
            from,
            to,
            from_ns,
            until_ns,
        });
        self
    }

    /// Adds a crash of `process` over `[at_ns, restart_ns)`.
    pub fn with_crash(mut self, process: ProcessId, at_ns: u64, restart_ns: u64) -> Self {
        assert!(at_ns < restart_ns, "crash window must be non-empty");
        self.crashes.push(Crash {
            process,
            at_ns,
            restart_ns,
        });
        self
    }

    /// Adds a crash of the view-`view` coordinator (process `view mod n`)
    /// over `[at_ns, restart_ns)`. A convenience for sequencer-failover
    /// schedules that keeps the rotation arithmetic in one place.
    pub fn with_leader_crash(self, view: u64, n: usize, at_ns: u64, restart_ns: u64) -> Self {
        self.with_crash(view_leader(view, n), at_ns, restart_ns)
    }

    /// Schedules `count` successive leader crashes: the coordinator of
    /// view `first_view + k` goes down at `start_ns + k * period_ns` and
    /// restarts `down_ns` later. Requires `down_ns < period_ns` so each
    /// victim is back before the next one falls — the single-failure
    /// discipline the view-change quorum (every process except the
    /// suspected leader) depends on.
    pub fn with_successive_leader_crashes(
        mut self,
        first_view: u64,
        count: u64,
        n: usize,
        start_ns: u64,
        down_ns: u64,
        period_ns: u64,
    ) -> Self {
        assert!(
            down_ns < period_ns,
            "victims must restart before the next crash"
        );
        for k in 0..count {
            let at = start_ns + k * period_ns;
            self = self.with_leader_crash(first_view + k, n, at, at + down_ns);
        }
        self
    }

    /// Whether this plan can never perturb an execution (no probabilistic
    /// faults, no scheduled events).
    pub fn is_benign(&self) -> bool {
        self.drop_prob == 0.0
            && self.dup_prob == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }
}

/// The coordinator of view `view` in an `n`-process cluster under the
/// deterministic rotation used by the view-based atomic broadcast:
/// view `v` is led by process `v mod n`.
pub fn view_leader(view: u64, n: usize) -> ProcessId {
    assert!(n > 0, "need at least one process");
    ProcessId::new((view % n as u64) as u32)
}

/// Handle to a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A deterministic state machine hosted by the simulator.
pub trait Node {
    /// The message type exchanged between nodes. `Clone` is required so
    /// the fault injector can duplicate in-flight messages.
    type Msg: Clone;

    /// Called once at virtual time zero, before any event.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message arrives.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, Self::Msg>) {
        let _ = (timer, ctx);
    }

    /// Called when the process comes back from a scheduled [`Crash`].
    /// State survived the outage, but timers armed before (or during) it
    /// were suppressed and in-flight traffic was lost — re-arm timers and
    /// kick off recovery handshakes here.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// The effect interface handed to node handlers: sends, timers, identity
/// and the current virtual time. Effects are buffered and applied by the
/// [`World`] after the handler returns, so handlers stay pure.
#[derive(Debug)]
pub struct Context<'a, M> {
    me: ProcessId,
    n: usize,
    now: SimTime,
    sends: Vec<(ProcessId, M)>,
    timers: Vec<(u64, TimerId)>,
    next_timer: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// The hosting process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Number of processes in the world.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` (which may be `self.me()`; loopback messages are
    /// also delivered asynchronously).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((to, msg));
    }

    /// Sends a copy of `msg` to every process, including the sender — the
    /// "send to all processes" of the paper's protocols.
    pub fn send_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for p in 0..self.n {
            self.sends.push((ProcessId::new(p as u32), msg.clone()));
        }
    }

    /// Schedules a timer `delay_ns` from now; `on_timer` fires with the
    /// returned id.
    pub fn set_timer(&mut self, delay_ns: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.timers.push((delay_ns, id));
        id
    }
}

enum Payload<N: Node> {
    Message {
        from: ProcessId,
        msg: N::Msg,
    },
    Timer(TimerId),
    #[allow(clippy::type_complexity)]
    Call(Box<dyn FnOnce(&mut N, &mut Context<'_, N::Msg>)>),
    /// Scheduled fault-plan event: the target process goes down.
    Crash,
    /// Scheduled fault-plan event: the target process comes back up.
    Restart,
}

struct Event<N: Node> {
    at: SimTime,
    seq: u64,
    to: ProcessId,
    payload: Payload<N>,
}

impl<N: Node> PartialEq for Event<N> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<N: Node> Eq for Event<N> {}
impl<N: Node> PartialOrd for Event<N> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<N: Node> Ord for Event<N> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Counters describing a finished (or paused) simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Events processed in total.
    pub events_processed: u64,
    /// Messages handed to `on_message`.
    pub messages_delivered: u64,
    /// Messages submitted by nodes.
    pub messages_sent: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Injected calls executed.
    pub calls_executed: u64,
    /// Messages lost to the fault plan: random drops, partitioned links,
    /// and in-flight traffic addressed to a crashed process.
    pub messages_dropped: u64,
    /// Messages the fault plan delivered twice.
    pub messages_duplicated: u64,
    /// Timers that would have fired on a crashed process.
    pub timers_suppressed: u64,
    /// Injected calls addressed to a crashed process.
    pub calls_dropped: u64,
    /// Crash events executed.
    pub crashes: u64,
    /// Restart events executed.
    pub restarts: u64,
    /// Virtual time at the end of the run.
    pub end_time: SimTime,
}

/// Salt mixed into the seed for the fault RNG, so fault decisions are a
/// stream independent of the delay stream (a benign plan consumes no
/// fault randomness and leaves the schedule untouched).
const FAULT_SEED_SALT: u64 = 0x6d6f_635f_6368_616f; // "moc_chao"

/// A simulated world of `n` nodes plus the event queue and network.
pub struct World<N: Node> {
    nodes: Vec<N>,
    queue: BinaryHeap<Reverse<Event<N>>>,
    time: SimTime,
    seq: u64,
    next_timer: u64,
    rng: StdRng,
    fault_rng: StdRng,
    config: NetworkConfig,
    faults: FaultPlan,
    down: Vec<bool>,
    stats: RunStats,
    started: bool,
}

impl<N: Node> World<N> {
    /// Creates a world hosting `nodes` with the given network `config`,
    /// deterministically seeded by `seed`. Channels are fully reliable —
    /// equivalent to [`World::with_faults`] with a default (benign) plan.
    pub fn new(nodes: Vec<N>, config: NetworkConfig, seed: u64) -> Self {
        World::with_faults(nodes, config, FaultPlan::default(), seed)
    }

    /// Creates a world whose network misbehaves according to `faults`.
    /// The fault schedule is deterministic in `(seed, faults)`.
    pub fn with_faults(nodes: Vec<N>, config: NetworkConfig, faults: FaultPlan, seed: u64) -> Self {
        let n = nodes.len();
        for c in &faults.crashes {
            assert!(
                c.process.index() < n,
                "crash names process {} of {n}",
                c.process
            );
        }
        World {
            nodes,
            queue: BinaryHeap::new(),
            time: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            rng: StdRng::seed_from_u64(seed),
            fault_rng: StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            config,
            faults,
            down: vec![false; n],
            stats: RunStats::default(),
            started: false,
        }
    }

    /// Installs a fault plan on a not-yet-started world.
    ///
    /// # Panics
    ///
    /// Panics if any event has been processed already — a plan installed
    /// mid-run could not replay from the seed alone.
    pub fn set_fault_plan(&mut self, faults: FaultPlan) {
        assert!(
            !self.started,
            "fault plan must be installed before the run starts"
        );
        for c in &faults.crashes {
            assert!(
                c.process.index() < self.nodes.len(),
                "crash names process {} of {}",
                c.process,
                self.nodes.len()
            );
        }
        self.faults = faults;
    }

    /// The installed fault plan (default: benign).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether process `p` is currently inside a crash window.
    pub fn is_down(&self, p: ProcessId) -> bool {
        self.down[p.index()]
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Immutable access to a node.
    pub fn node(&self, p: ProcessId) -> &N {
        &self.nodes[p.index()]
    }

    /// Mutable access to a node. Note that mutating protocol state behind
    /// the simulator's back can break determinism; prefer
    /// [`World::schedule_call`].
    pub fn node_mut(&mut self, p: ProcessId) -> &mut N {
        &mut self.nodes[p.index()]
    }

    /// Consumes the world and returns the nodes (e.g. to extract recorded
    /// histories after a run).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// Run statistics so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats;
        s.end_time = self.time;
        s
    }

    /// Schedules `f` to run on node `to` at absolute virtual time `at_ns`
    /// (clamped to "now" if already past). This is how harnesses inject
    /// m-operation invocations.
    pub fn schedule_call(
        &mut self,
        at_ns: u64,
        to: ProcessId,
        f: impl FnOnce(&mut N, &mut Context<'_, N::Msg>) + 'static,
    ) {
        let at = SimTime(at_ns.max(self.time.0));
        let seq = self.bump_seq();
        self.queue.push(Reverse(Event {
            at,
            seq,
            to,
            payload: Payload::Call(Box::new(f)),
        }));
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Whether a partition currently severs the `from → to` link.
    fn link_blocked(&self, from: ProcessId, to: ProcessId) -> bool {
        let now = self.time.0;
        self.faults
            .partitions
            .iter()
            .any(|p| p.from == from && p.to == to && p.from_ns <= now && now < p.until_ns)
    }

    fn flush_effects(
        &mut self,
        from: ProcessId,
        sends: Vec<(ProcessId, N::Msg)>,
        timers: Vec<(u64, TimerId)>,
    ) {
        for (to, msg) in sends {
            self.stats.messages_sent += 1;
            let remote = to != from;
            // Loopback sends are exempt from faults. Fault decisions come
            // from the dedicated fault RNG so the delay stream — and with
            // it the fault-free schedule — is untouched by a benign plan.
            if remote
                && (self.link_blocked(from, to)
                    || (self.faults.drop_prob > 0.0
                        && self.fault_rng.gen_bool(self.faults.drop_prob)))
            {
                self.stats.messages_dropped += 1;
                continue;
            }
            let model = if remote {
                self.config.delay
            } else {
                self.config.self_delay
            };
            if remote && self.faults.dup_prob > 0.0 && self.fault_rng.gen_bool(self.faults.dup_prob)
            {
                self.stats.messages_duplicated += 1;
                let delay = model.sample(&mut self.fault_rng);
                let at = self.time.after(delay.max(1));
                let seq = self.bump_seq();
                self.queue.push(Reverse(Event {
                    at,
                    seq,
                    to,
                    payload: Payload::Message {
                        from,
                        msg: msg.clone(),
                    },
                }));
            }
            let delay = model.sample(&mut self.rng);
            let at = self.time.after(delay.max(1));
            let seq = self.bump_seq();
            self.queue.push(Reverse(Event {
                at,
                seq,
                to,
                payload: Payload::Message { from, msg },
            }));
        }
        for (delay, id) in timers {
            let at = self.time.after(delay.max(1));
            let seq = self.bump_seq();
            self.queue.push(Reverse(Event {
                at,
                seq,
                to: from,
                payload: Payload::Timer(id),
            }));
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // Schedule the fault plan's crash/restart events up front so the
        // whole outage schedule is fixed by (seed, plan) alone.
        for i in 0..self.faults.crashes.len() {
            let c = self.faults.crashes[i];
            let seq = self.bump_seq();
            self.queue.push(Reverse(Event {
                at: SimTime(c.at_ns),
                seq,
                to: c.process,
                payload: Payload::Crash,
            }));
            if c.restart_ns < u64::MAX {
                let seq = self.bump_seq();
                self.queue.push(Reverse(Event {
                    at: SimTime(c.restart_ns),
                    seq,
                    to: c.process,
                    payload: Payload::Restart,
                }));
            }
        }
        for i in 0..self.nodes.len() {
            let me = ProcessId::new(i as u32);
            let mut ctx = Context {
                me,
                n: self.nodes.len(),
                now: self.time,
                sends: Vec::new(),
                timers: Vec::new(),
                next_timer: &mut self.next_timer,
            };
            self.nodes[i].on_start(&mut ctx);
            let sends = std::mem::take(&mut ctx.sends);
            let timers = std::mem::take(&mut ctx.timers);
            drop(ctx);
            self.flush_effects(me, sends, timers);
        }
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.time, "time went backwards");
        self.time = ev.at;
        self.stats.events_processed += 1;
        let to = ev.to;
        // Fault lifecycle first: crash events, and deliveries addressed
        // to a process inside its crash window, never reach the node.
        match &ev.payload {
            Payload::Crash => {
                self.down[to.index()] = true;
                self.stats.crashes += 1;
                return true;
            }
            Payload::Restart => {
                self.down[to.index()] = false;
                self.stats.restarts += 1;
                // Falls through to invoke `on_restart` below.
            }
            Payload::Message { .. } if self.down[to.index()] => {
                self.stats.messages_dropped += 1;
                return true;
            }
            Payload::Timer(_) if self.down[to.index()] => {
                self.stats.timers_suppressed += 1;
                return true;
            }
            Payload::Call(_) if self.down[to.index()] => {
                self.stats.calls_dropped += 1;
                return true;
            }
            _ => {}
        }
        let mut ctx = Context {
            me: to,
            n: self.nodes.len(),
            now: self.time,
            sends: Vec::new(),
            timers: Vec::new(),
            next_timer: &mut self.next_timer,
        };
        let node = &mut self.nodes[to.index()];
        match ev.payload {
            Payload::Message { from, msg } => {
                self.stats.messages_delivered += 1;
                node.on_message(from, msg, &mut ctx);
            }
            Payload::Timer(id) => {
                self.stats.timers_fired += 1;
                node.on_timer(id, &mut ctx);
            }
            Payload::Call(f) => {
                self.stats.calls_executed += 1;
                f(node, &mut ctx);
            }
            Payload::Restart => node.on_restart(&mut ctx),
            Payload::Crash => unreachable!("crash events return early"),
        }
        let sends = std::mem::take(&mut ctx.sends);
        let timers = std::mem::take(&mut ctx.timers);
        drop(ctx);
        self.flush_effects(to, sends, timers);
        true
    }

    /// Runs until no events remain or `max_events` have been processed.
    ///
    /// # Panics
    ///
    /// Panics if `max_events` is hit — a protocol that never quiesces on a
    /// finite workload is a bug in this codebase's context, and silent
    /// truncation would invalidate recorded histories.
    pub fn run_until_quiescent(&mut self, max_events: u64) -> RunStats {
        let mut processed = 0u64;
        self.start_if_needed();
        while self.step() {
            processed += 1;
            assert!(
                processed <= max_events,
                "simulation did not quiesce within {max_events} events"
            );
        }
        self.stats()
    }

    /// Runs while the next event is at or before `until_ns`.
    pub fn run_until(&mut self, until_ns: u64) -> RunStats {
        self.start_if_needed();
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at.0 > until_ns {
                break;
            }
            self.step();
        }
        self.stats()
    }
}

impl<N: Node> fmt::Debug for World<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.nodes.len())
            .field("time", &self.time)
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo node: replies to every `Ping(k)` with `Pong(k)` to the sender;
    /// the initiator counts pongs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum PingMsg {
        Ping(u64),
        Pong(u64),
    }

    #[derive(Default)]
    struct PingNode {
        pongs: Vec<u64>,
        delivered_at: Vec<SimTime>,
    }

    impl Node for PingNode {
        type Msg = PingMsg;
        fn on_message(&mut self, from: ProcessId, msg: PingMsg, ctx: &mut Context<'_, PingMsg>) {
            match msg {
                PingMsg::Ping(k) => ctx.send(from, PingMsg::Pong(k)),
                PingMsg::Pong(k) => {
                    self.pongs.push(k);
                    self.delivered_at.push(ctx.now());
                }
            }
        }
    }

    fn ping_world(seed: u64, delay: DelayModel) -> World<PingNode> {
        World::new(
            vec![PingNode::default(), PingNode::default()],
            NetworkConfig::with_delay(delay),
            seed,
        )
    }

    #[test]
    fn request_reply_roundtrip() {
        let mut w = ping_world(1, DelayModel::Fixed(100));
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), PingMsg::Ping(7));
        });
        let stats = w.run_until_quiescent(100);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(w.node(ProcessId::new(0)).pongs, vec![7]);
        // Fixed 100ns each way: pong lands at t=200.
        assert_eq!(w.node(ProcessId::new(0)).delivered_at[0], SimTime(200));
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut w = ping_world(seed, DelayModel::Uniform { lo: 1, hi: 1000 });
            for k in 0..20 {
                w.schedule_call(k, ProcessId::new(0), move |_, ctx| {
                    ctx.send(ProcessId::new(1), PingMsg::Ping(k));
                });
            }
            w.run_until_quiescent(10_000);
            w.into_nodes().remove(0).pongs
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should reorder");
    }

    #[test]
    fn uniform_delays_reorder_messages() {
        let mut w = ping_world(7, DelayModel::Uniform { lo: 1, hi: 100_000 });
        for k in 0..50 {
            w.schedule_call(k, ProcessId::new(0), move |_, ctx| {
                ctx.send(ProcessId::new(1), PingMsg::Ping(k));
            });
        }
        w.run_until_quiescent(10_000);
        let pongs = &w.node(ProcessId::new(0)).pongs;
        assert_eq!(pongs.len(), 50, "reliable: nothing lost");
        let mut sorted = pongs.clone();
        sorted.sort_unstable();
        assert_ne!(*pongs, sorted, "messages should arrive out of order");
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_delays_are_reliable_too() {
        let mut w = ping_world(3, DelayModel::Exponential { mean: 500 });
        for k in 0..30 {
            w.schedule_call(k * 10, ProcessId::new(0), move |_, ctx| {
                ctx.send(ProcessId::new(1), PingMsg::Ping(k));
            });
        }
        let stats = w.run_until_quiescent(10_000);
        assert_eq!(stats.messages_delivered, 60);
        assert_eq!(w.node(ProcessId::new(0)).pongs.len(), 30);
    }

    struct TimerNode {
        fired: Vec<(TimerId, SimTime)>,
        armed: Option<TimerId>,
    }

    impl Node for TimerNode {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            self.armed = Some(ctx.set_timer(500));
        }
        fn on_message(&mut self, _f: ProcessId, _m: (), _c: &mut Context<'_, ()>) {}
        fn on_timer(&mut self, t: TimerId, ctx: &mut Context<'_, ()>) {
            self.fired.push((t, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        let mut w = World::new(
            vec![TimerNode {
                fired: vec![],
                armed: None,
            }],
            NetworkConfig::fifo(10),
            0,
        );
        w.run_until_quiescent(10);
        let node = &w.node(ProcessId::new(0));
        assert_eq!(node.fired.len(), 1);
        assert_eq!(node.fired[0].0, node.armed.unwrap());
        assert_eq!(node.fired[0].1, SimTime(500));
    }

    struct FanoutNode {
        seen: usize,
    }
    impl Node for FanoutNode {
        type Msg = u8;
        fn on_message(&mut self, _f: ProcessId, _m: u8, _c: &mut Context<'_, u8>) {
            self.seen += 1;
        }
    }

    #[test]
    fn send_all_includes_self() {
        let mut w = World::new(
            (0..4).map(|_| FanoutNode { seen: 0 }).collect(),
            NetworkConfig::default(),
            5,
        );
        w.schedule_call(0, ProcessId::new(2), |_, ctx| ctx.send_all(9));
        let stats = w.run_until_quiescent(100);
        assert_eq!(stats.messages_sent, 4);
        for p in 0..4 {
            assert_eq!(w.node(ProcessId::new(p)).seen, 1);
        }
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut w = ping_world(1, DelayModel::Fixed(1000));
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), PingMsg::Ping(1));
        });
        w.run_until(500);
        assert_eq!(w.stats().messages_delivered, 0, "ping still in flight");
        w.run_until(5000);
        assert_eq!(w.stats().messages_delivered, 2);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn livelock_is_detected() {
        struct Bouncer;
        impl Node for Bouncer {
            type Msg = ();
            fn on_message(&mut self, from: ProcessId, _m: (), ctx: &mut Context<'_, ()>) {
                ctx.send(from, ());
            }
        }
        let mut w = World::new(vec![Bouncer, Bouncer], NetworkConfig::default(), 0);
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), ())
        });
        w.run_until_quiescent(100);
    }

    #[test]
    fn drop_prob_one_loses_every_remote_message() {
        let mut w = World::with_faults(
            vec![PingNode::default(), PingNode::default()],
            NetworkConfig::fifo(100),
            FaultPlan::lossy(1.0),
            3,
        );
        for k in 0..10 {
            w.schedule_call(k, ProcessId::new(0), move |_, ctx| {
                ctx.send(ProcessId::new(1), PingMsg::Ping(k));
            });
        }
        let stats = w.run_until_quiescent(1_000);
        assert_eq!(stats.messages_sent, 10);
        assert_eq!(stats.messages_dropped, 10);
        assert_eq!(stats.messages_delivered, 0);
        assert!(w.node(ProcessId::new(0)).pongs.is_empty());
    }

    #[test]
    fn dup_prob_one_delivers_every_remote_message_twice() {
        let mut w = World::with_faults(
            (0..2).map(|_| FanoutNode { seen: 0 }).collect(),
            NetworkConfig::fifo(100),
            FaultPlan::default().with_dup(1.0),
            3,
        );
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), 9)
        });
        let stats = w.run_until_quiescent(1_000);
        assert_eq!(stats.messages_sent, 1);
        assert_eq!(stats.messages_duplicated, 1);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(w.node(ProcessId::new(1)).seen, 2);
    }

    #[test]
    fn loopback_is_exempt_from_faults() {
        let mut w = World::with_faults(
            vec![FanoutNode { seen: 0 }],
            NetworkConfig::fifo(100),
            FaultPlan::lossy(1.0).with_dup(1.0),
            3,
        );
        w.schedule_call(0, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(0), 1)
        });
        let stats = w.run_until_quiescent(100);
        assert_eq!(stats.messages_dropped, 0);
        assert_eq!(stats.messages_duplicated, 0);
        assert_eq!(w.node(ProcessId::new(0)).seen, 1);
    }

    #[test]
    fn partition_drops_until_it_heals() {
        let plan =
            FaultPlan::default().with_partition(ProcessId::new(0), ProcessId::new(1), 0, 1_000);
        let mut w = World::with_faults(
            (0..2).map(|_| FanoutNode { seen: 0 }).collect(),
            NetworkConfig::fifo(10),
            plan,
            3,
        );
        // Sent while partitioned: dropped. Sent after healing: delivered.
        w.schedule_call(500, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), 1)
        });
        w.schedule_call(1_000, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), 2)
        });
        // The reverse direction is never partitioned.
        w.schedule_call(500, ProcessId::new(1), |_, ctx| {
            ctx.send(ProcessId::new(0), 3)
        });
        let stats = w.run_until_quiescent(100);
        assert_eq!(stats.messages_dropped, 1);
        assert_eq!(stats.messages_delivered, 2);
        assert_eq!(w.node(ProcessId::new(1)).seen, 1);
        assert_eq!(w.node(ProcessId::new(0)).seen, 1);
    }

    /// Records deliveries and restarts; re-arms a timer on restart.
    #[derive(Default)]
    struct CrashProbe {
        seen: Vec<u8>,
        timer_fired_at: Vec<SimTime>,
        restarted_at: Vec<SimTime>,
    }

    impl Node for CrashProbe {
        type Msg = u8;
        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            ctx.set_timer(500); // lands inside the crash window below
        }
        fn on_message(&mut self, _f: ProcessId, m: u8, _c: &mut Context<'_, u8>) {
            self.seen.push(m);
        }
        fn on_timer(&mut self, _t: TimerId, ctx: &mut Context<'_, u8>) {
            self.timer_fired_at.push(ctx.now());
        }
        fn on_restart(&mut self, ctx: &mut Context<'_, u8>) {
            self.restarted_at.push(ctx.now());
            ctx.set_timer(100);
        }
    }

    #[test]
    fn crash_suppresses_deliveries_and_restart_hook_fires() {
        let plan = FaultPlan::default().with_crash(ProcessId::new(1), 100, 2_000);
        let mut w = World::with_faults(
            vec![CrashProbe::default(), CrashProbe::default()],
            NetworkConfig::fifo(10),
            plan,
            7,
        );
        // Arrives at ~510, inside P1's [100, 2000) outage: lost.
        w.schedule_call(500, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), 1)
        });
        // Arrives at ~2510, after the restart: delivered.
        w.schedule_call(2_500, ProcessId::new(0), |_, ctx| {
            ctx.send(ProcessId::new(1), 2)
        });
        let stats = w.run_until_quiescent(1_000);
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.messages_dropped, 1);
        // P1's on_start timer (t=500) fell inside the outage.
        assert_eq!(stats.timers_suppressed, 1);
        let p1 = w.node(ProcessId::new(1));
        assert_eq!(p1.seen, vec![2]);
        assert_eq!(p1.restarted_at, vec![SimTime(2_000)]);
        // The timer re-armed by on_restart fired; P0's start timer too.
        assert_eq!(p1.timer_fired_at, vec![SimTime(2_100)]);
        assert_eq!(w.node(ProcessId::new(0)).timer_fired_at, vec![SimTime(500)]);
    }

    #[test]
    fn faulty_runs_are_deterministic_and_benign_plan_is_identity() {
        let run = |plan: FaultPlan| {
            let mut w = World::with_faults(
                vec![PingNode::default(), PingNode::default()],
                NetworkConfig::with_delay(DelayModel::Uniform { lo: 1, hi: 1_000 }),
                plan,
                42,
            );
            for k in 0..30 {
                w.schedule_call(k, ProcessId::new(0), move |_, ctx| {
                    ctx.send(ProcessId::new(1), PingMsg::Ping(k));
                });
            }
            let stats = w.run_until_quiescent(10_000);
            (stats, w.into_nodes().remove(0).pongs)
        };
        let lossy = FaultPlan::lossy(0.3).with_dup(0.2);
        let (s1, p1) = run(lossy.clone());
        let (s2, p2) = run(lossy);
        assert_eq!(s1, s2, "same (seed, plan) ⇒ same stats");
        assert_eq!(p1, p2, "same (seed, plan) ⇒ same delivery order");
        assert!(s1.messages_dropped > 0 && s1.messages_duplicated > 0);

        // A benign plan is byte-for-byte the no-plan run.
        let (sb, pb) = run(FaultPlan::default());
        let mut w = World::new(
            vec![PingNode::default(), PingNode::default()],
            NetworkConfig::with_delay(DelayModel::Uniform { lo: 1, hi: 1_000 }),
            42,
        );
        for k in 0..30 {
            w.schedule_call(k, ProcessId::new(0), move |_, ctx| {
                ctx.send(ProcessId::new(1), PingMsg::Ping(k));
            });
        }
        let s0 = w.run_until_quiescent(10_000);
        assert_eq!(sb, s0);
        assert_eq!(pb, w.into_nodes().remove(0).pongs);
    }

    #[test]
    fn leader_crash_helpers_follow_the_rotation() {
        assert_eq!(view_leader(0, 3), ProcessId::new(0));
        assert_eq!(view_leader(4, 3), ProcessId::new(1));
        let plan =
            FaultPlan::default().with_successive_leader_crashes(0, 2, 3, 10_000, 5_000, 20_000);
        assert_eq!(
            plan.crashes,
            vec![
                Crash {
                    process: ProcessId::new(0),
                    at_ns: 10_000,
                    restart_ns: 15_000,
                },
                Crash {
                    process: ProcessId::new(1),
                    at_ns: 30_000,
                    restart_ns: 35_000,
                },
            ],
            "each victim restarts before the next one falls"
        );
        assert!(!plan.is_benign());
    }

    #[test]
    fn delay_models_sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert_eq!(DelayModel::Fixed(7).sample(&mut rng), 7);
            let u = DelayModel::Uniform { lo: 10, hi: 20 }.sample(&mut rng);
            assert!((10..=20).contains(&u));
        }
        // Exponential: mean roughly right over many samples.
        let mean: u64 = 1000;
        let total: u64 = (0..20_000)
            .map(|_| DelayModel::Exponential { mean }.sample(&mut rng))
            .sum();
        let avg = total / 20_000;
        assert!((800..=1200).contains(&avg), "avg {avg} too far from mean");
    }
}
