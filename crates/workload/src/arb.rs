//! Shared `Arbitrary`-style generators with shrinking.
//!
//! One grammar, two consumers: the analyzer's soundness proptests and the
//! `moc-synth` enumeration both draw programs and histories from the
//! seed-deterministic functions here, so a seed printed by either side
//! replays byte-identically in the other. The vendored proptest stub has
//! no shrinking, so minimal counterexamples come from the explicit
//! [`shrink_program`] / [`shrink_history`] candidate generators and the
//! greedy [`minimize`] driver instead.
//!
//! Everything is a plain function of `(&mut StdRng, &bounds)`; proptest
//! strategies wrap these via `any::<u64>().prop_map(|seed| ...)` at the
//! call site, keeping this crate free of a proptest dependency.

use moc_core::history::History;
use moc_core::ids::{MOpId, ObjectId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::op::CompletedOp;
use moc_core::program::{BinaryOp, CmpOp, Instr, Operand, Program, NUM_REGS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounds of the program grammar (factored from the analyzer's soundness
/// proptests — keep in sync with `crates/analyze/tests/soundness.rs`).
#[derive(Debug, Clone, Copy)]
pub struct ProgramBounds {
    /// Object universe size; reads and writes target `0..objects`.
    pub objects: u32,
    /// Maximum instruction count before the trailing `Return`.
    pub max_len: usize,
}

impl Default for ProgramBounds {
    fn default() -> Self {
        ProgramBounds {
            objects: 4,
            max_len: 12,
        }
    }
}

/// A random operand: register, small immediate, or argument.
pub fn operand(rng: &mut StdRng) -> Operand {
    match rng.gen_range(0..3) {
        0 => Operand::Reg(rng.gen_range(0..NUM_REGS as u8)),
        1 => Operand::Imm(rng.gen_range(-100i64..100)),
        _ => Operand::Arg(rng.gen_range(0..3u8)),
    }
}

fn binary_op(rng: &mut StdRng) -> BinaryOp {
    match rng.gen_range(0..5) {
        0 => BinaryOp::Add,
        1 => BinaryOp::Sub,
        2 => BinaryOp::Mul,
        3 => BinaryOp::Min,
        _ => BinaryOp::Max,
    }
}

fn cmp_op(rng: &mut StdRng) -> CmpOp {
    match rng.gen_range(0..6) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

/// A random instruction whose jump targets stay within `0..len`.
pub fn instr(rng: &mut StdRng, len: usize, bounds: &ProgramBounds) -> Instr {
    let obj = |rng: &mut StdRng| ObjectId::new(rng.gen_range(0..bounds.objects.max(1)));
    match rng.gen_range(0..7) {
        0 => Instr::Read {
            object: obj(rng),
            dst: rng.gen_range(0..NUM_REGS as u8),
        },
        1 => {
            let object = obj(rng);
            let src = operand(rng);
            Instr::Write { object, src }
        }
        2 => {
            let dst = rng.gen_range(0..NUM_REGS as u8);
            let src = operand(rng);
            Instr::Mov { dst, src }
        }
        3 => {
            let op = binary_op(rng);
            let dst = rng.gen_range(0..NUM_REGS as u8);
            let lhs = operand(rng);
            let rhs = operand(rng);
            Instr::Binary { op, dst, lhs, rhs }
        }
        4 => Instr::Jump {
            target: rng.gen_range(0..len.max(1)),
        },
        5 => {
            let lhs = operand(rng);
            let cmp = cmp_op(rng);
            let rhs = operand(rng);
            let target = rng.gen_range(0..len.max(1));
            Instr::JumpIf {
                lhs,
                cmp,
                rhs,
                target,
            }
        }
        _ => {
            let n = rng.gen_range(0..3);
            let outputs = (0..n).map(|_| operand(rng)).collect();
            Instr::Return { outputs }
        }
    }
}

/// A random program of `1..=max_len` instructions plus a trailing
/// `Return` so every path terminates.
pub fn program(rng: &mut StdRng, bounds: &ProgramBounds) -> Program {
    let len = rng.gen_range(1..bounds.max_len.max(2));
    let mut instrs: Vec<Instr> = (0..len).map(|_| instr(rng, len, bounds)).collect();
    instrs.push(Instr::Return { outputs: vec![] });
    Program::new("prop", instrs).expect("targets within range")
}

/// [`program`] from a bare seed — the replay entry point.
pub fn program_from_seed(seed: u64, bounds: &ProgramBounds) -> Program {
    program(&mut StdRng::seed_from_u64(seed), bounds)
}

/// Bounds of the history grammar: small m-operation programs (bounded
/// processes, objects, ops per m-op) under partially overlapping
/// intervals with free read provenance.
#[derive(Debug, Clone, Copy)]
pub struct HistoryBounds {
    /// Maximum number of processes.
    pub processes: usize,
    /// Maximum m-operations per process.
    pub mops_per_process: usize,
    /// Object universe size.
    pub objects: usize,
    /// Maximum objects one m-operation touches.
    pub max_span: usize,
    /// Probability an m-operation is an update (updates write at least
    /// one of their objects).
    pub update_fraction: f64,
}

impl Default for HistoryBounds {
    fn default() -> Self {
        HistoryBounds {
            processes: 3,
            mops_per_process: 2,
            objects: 3,
            max_span: 3,
            update_fraction: 0.6,
        }
    }
}

fn distinct_objects(rng: &mut StdRng, bounds: &HistoryBounds) -> Vec<ObjectId> {
    let span = rng.gen_range(1..=bounds.max_span.clamp(1, bounds.objects));
    let mut objs = Vec::with_capacity(span);
    while objs.len() < span {
        let o = ObjectId::new(rng.gen_range(0..bounds.objects) as u32);
        if !objs.contains(&o) {
            objs.push(o);
        }
    }
    objs
}

/// A random small history: per-process sequential windows (m-operation
/// `seq` occupies `[100·seq, 100·seq + ~60)`, so same-rank m-operations
/// of *different* processes overlap while each process stays
/// sequential), atomic multi-object updates, and reads with free
/// provenance — any writer of the object or the initial value. The
/// result is always well-formed; admissibility is decided only by the
/// checker, which is precisely what makes the family worth enumerating.
pub fn history(rng: &mut StdRng, bounds: &HistoryBounds) -> History {
    struct Shape {
        id: MOpId,
        objs: Vec<ObjectId>,
        write_mask: Vec<bool>,
        invoked: u64,
        responded: u64,
    }
    let processes = rng.gen_range(1..=bounds.processes.max(1));
    let mut shapes = Vec::new();
    for p in 0..processes {
        let count = rng.gen_range(1..=bounds.mops_per_process.max(1));
        for seq in 0..count {
            let id = MOpId::new(ProcessId::new(p as u32), seq as u32);
            let objs = distinct_objects(rng, bounds);
            let is_update = rng.gen_bool(bounds.update_fraction.clamp(0.0, 1.0));
            let mut write_mask: Vec<bool> = objs
                .iter()
                .map(|_| is_update && rng.gen_bool(0.7))
                .collect();
            if is_update && !write_mask.iter().any(|&w| w) {
                write_mask[0] = true;
            }
            let invoked = seq as u64 * 100 + rng.gen_range(0..10);
            let responded = invoked + rng.gen_range(40..80);
            shapes.push(Shape {
                id,
                objs,
                write_mask,
                invoked,
                responded,
            });
        }
    }
    // Writers per object, with globally unique values and per-object
    // version numbers.
    let mut writers: Vec<Vec<(MOpId, i64, u64)>> = vec![Vec::new(); bounds.objects];
    let mut write_values = std::collections::HashMap::new();
    let mut next_value = 1i64;
    for s in &shapes {
        for (i, &o) in s.objs.iter().enumerate() {
            if s.write_mask[i] {
                let v = next_value;
                next_value += 1;
                let ver = writers[o.index()].len() as u64 + 1;
                writers[o.index()].push((s.id, v, ver));
                write_values.insert((s.id, o), (v, ver));
            }
        }
    }
    let records = shapes
        .iter()
        .map(|s| {
            let ops = s
                .objs
                .iter()
                .enumerate()
                .map(|(i, &o)| {
                    if s.write_mask[i] {
                        let (v, ver) = write_values[&(s.id, o)];
                        CompletedOp::write(o, v, s.id, ver)
                    } else {
                        let cands: Vec<&(MOpId, i64, u64)> = writers[o.index()]
                            .iter()
                            .filter(|(w, _, _)| *w != s.id)
                            .collect();
                        if cands.is_empty() || rng.gen_bool(0.25) {
                            CompletedOp::read(o, 0, MOpId::INITIAL, 0)
                        } else {
                            let &(w, v, ver) = cands[rng.gen_range(0..cands.len())];
                            CompletedOp::read(o, v, w, ver)
                        }
                    }
                })
                .collect::<Vec<_>>();
            MOpRecord {
                id: s.id,
                invoked_at: EventTime::from_nanos(s.invoked),
                responded_at: EventTime::from_nanos(s.responded),
                ops,
                outputs: Vec::new(),
                treated_as: if s.write_mask.iter().any(|&w| w) {
                    MOpClass::Update
                } else {
                    MOpClass::Query
                },
                label: String::new(),
            }
        })
        .collect();
    History::new(bounds.objects, records).expect("grammar construction is well-formed")
}

/// [`history`] from a bare seed — the replay entry point used by the
/// synth registry and `moc synth`.
pub fn history_from_seed(seed: u64, bounds: &HistoryBounds) -> History {
    history(&mut StdRng::seed_from_u64(seed), bounds)
}

/// One-step shrink candidates for a program: each non-`Return`
/// instruction replaced by `Return { outputs: [] }`. Every candidate has
/// strictly fewer non-`Return` instructions (and unchanged jump
/// targets), so greedy minimization terminates.
pub fn shrink_program(p: &Program) -> Vec<Program> {
    let instrs = p.instrs();
    let mut out = Vec::new();
    for i in 0..instrs.len() {
        if matches!(instrs[i], Instr::Return { .. }) {
            continue;
        }
        let mut cand = instrs.to_vec();
        cand[i] = Instr::Return { outputs: vec![] };
        if let Ok(q) = Program::new(p.name(), cand) {
            out.push(q);
        }
    }
    out
}

/// One-step shrink candidates for a history: drop one whole m-operation
/// record, or one operation inside a record. Candidates that break
/// well-formedness (for example, removing a write some other record
/// reads from) are filtered by re-validation, so every candidate is a
/// genuine smaller history with strictly fewer operations.
pub fn shrink_history(h: &History) -> Vec<History> {
    let mut out = Vec::new();
    let records = h.records();
    for i in 0..records.len() {
        let mut cand = records.to_vec();
        cand.remove(i);
        if let Ok(smaller) = History::new(h.num_objects(), cand) {
            out.push(smaller);
        }
    }
    for i in 0..records.len() {
        if records[i].ops.len() < 2 {
            continue;
        }
        for j in 0..records[i].ops.len() {
            let mut cand = records.to_vec();
            cand[i].ops.remove(j);
            if let Ok(smaller) = History::new(h.num_objects(), cand) {
                out.push(smaller);
            }
        }
    }
    out
}

/// Greedy minimization: repeatedly replaces `value` with the first
/// shrink candidate still satisfying `pred`. Terminates because every
/// candidate the shrinkers produce is strictly smaller; the result is
/// 1-minimal with respect to the candidate moves.
pub fn minimize<T>(mut value: T, shrink: impl Fn(&T) -> Vec<T>, pred: impl Fn(&T) -> bool) -> T {
    loop {
        let mut advanced = false;
        for cand in shrink(&value) {
            if pred(&cand) {
                value = cand;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_checker::conditions::Condition;
    use moc_checker::{check_certified, SearchLimits};

    // `check_certified` rather than `check(.., Strategy::Auto)`: free
    // provenance can make the closed base relation itself cyclic, which
    // the certified path refutes statically while the plain fast path
    // reports as a `CyclicRelation` error. This is also the entry point
    // the synthesis pipeline classifies with.
    fn is_inadmissible(h: &History) -> bool {
        let (report, _) = check_certified(
            h,
            Condition::MSequentialConsistency,
            SearchLimits::default(),
        )
        .expect("bounded histories decide within default limits");
        !report.satisfied
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let b = HistoryBounds::default();
        let h1 = history_from_seed(7, &b);
        let h2 = history_from_seed(7, &b);
        assert_eq!(h1.records(), h2.records());
        let pb = ProgramBounds::default();
        assert_eq!(
            program_from_seed(7, &pb).instrs(),
            program_from_seed(7, &pb).instrs()
        );
    }

    #[test]
    fn histories_are_wellformed_and_decidable() {
        let b = HistoryBounds::default();
        let mut inadmissible = 0;
        for seed in 0..40 {
            let h = history_from_seed(seed, &b);
            assert!(!h.is_empty());
            if is_inadmissible(&h) {
                inadmissible += 1;
            }
        }
        assert!(
            inadmissible > 0,
            "free provenance should often be inadmissible"
        );
    }

    #[test]
    fn shrinking_preserves_inadmissibility_and_reaches_a_minimum() {
        let b = HistoryBounds::default();
        let inadmissible = is_inadmissible;
        let mut shrunk_any = false;
        for seed in 0..60 {
            let h = history_from_seed(seed, &b);
            if !inadmissible(&h) {
                continue;
            }
            let min = minimize(h.clone(), shrink_history, inadmissible);
            assert!(inadmissible(&min), "minimization must preserve the bug");
            let total_ops = |h: &History| h.records().iter().map(|r| r.ops.len()).sum::<usize>();
            assert!(total_ops(&min) <= total_ops(&h));
            if total_ops(&min) < total_ops(&h) {
                shrunk_any = true;
            }
            // 1-minimality: no single candidate move keeps the property.
            for cand in shrink_history(&min) {
                assert!(!inadmissible(&cand), "minimum must be 1-minimal");
            }
        }
        assert!(shrunk_any, "at least one specimen should actually shrink");
    }

    #[test]
    fn shrink_program_strictly_reduces() {
        let pb = ProgramBounds::default();
        let p = program_from_seed(11, &pb);
        let non_return = |p: &Program| {
            p.instrs()
                .iter()
                .filter(|i| !matches!(i, Instr::Return { .. }))
                .count()
        };
        for cand in shrink_program(&p) {
            assert!(non_return(&cand) < non_return(&p));
        }
    }
}
