//! # moc-workload
//!
//! Workload and history generators for exercising the multi-object
//! consistency protocols and checkers.
//!
//! * [`WorkloadSpec`] + [`scripts`] — randomized client scripts (mixes of
//!   multi-object queries, writes, read-modify-writes and DCAS, with a
//!   configurable update fraction, operation span and contention profile)
//!   for the protocol harness.
//! * [`histories`] — synthetic [`moc_core::History`] generators for the checker:
//!   serial (always admissible), random-provenance (usually not), and the
//!   adversarial reader/writer family whose brute-force verification cost
//!   grows combinatorially — the workloads behind the Theorem 1/2
//!   benchmarks.

use std::sync::Arc;

use moc_core::ids::ObjectId;
use moc_core::program::{arg, imm, reg, CmpOp, Program, ProgramBuilder};
use moc_protocol::{ClientScript, OpSpec};
use rand::rngs::StdRng;
use rand::Rng;

pub mod arb;
pub mod chaos;
pub mod histories;
pub mod skew;
pub mod synth;

/// Parameters of a randomized protocol workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of processes (one script per process).
    pub processes: usize,
    /// m-operations per process.
    pub ops_per_process: usize,
    /// Size of the shared-object universe.
    pub num_objects: usize,
    /// Probability an operation is an update.
    pub update_fraction: f64,
    /// Maximum number of objects a single m-operation touches.
    pub max_span: usize,
    /// Fraction of object picks that hit the "hot" prefix of the universe.
    pub hot_fraction: f64,
    /// Size of the hot prefix.
    pub hot_objects: usize,
    /// Client think time between operations (ns of virtual time).
    pub think_ns: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            processes: 4,
            ops_per_process: 10,
            num_objects: 8,
            update_fraction: 0.5,
            max_span: 3,
            hot_fraction: 0.5,
            hot_objects: 2,
            think_ns: 100,
        }
    }
}

impl WorkloadSpec {
    /// Total m-operations the workload will issue.
    pub fn total_ops(&self) -> usize {
        self.processes * self.ops_per_process
    }
}

fn pick_object(spec: &WorkloadSpec, rng: &mut StdRng) -> ObjectId {
    let hot = spec.hot_objects.clamp(1, spec.num_objects);
    let idx = if rng.gen_bool(spec.hot_fraction.clamp(0.0, 1.0)) {
        rng.gen_range(0..hot)
    } else {
        rng.gen_range(0..spec.num_objects)
    };
    ObjectId::new(idx as u32)
}

fn pick_span(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<ObjectId> {
    let span = rng.gen_range(1..=spec.max_span.clamp(1, spec.num_objects));
    let mut objs = Vec::with_capacity(span);
    while objs.len() < span {
        let o = pick_object(spec, rng);
        if !objs.contains(&o) {
            objs.push(o);
        }
    }
    objs
}

/// A multi-object read program over the given objects.
pub fn query_program(objects: &[ObjectId]) -> Arc<Program> {
    let mut b = ProgramBuilder::new(format!("q{}", objects.len()));
    for (i, &o) in objects.iter().enumerate() {
        b.read(o, i as u8);
    }
    b.ret((0..objects.len()).map(|i| reg(i as u8)).collect());
    Arc::new(b.build().expect("query program is well-formed"))
}

/// A multi-object write program over the given objects (argument `i` goes
/// to object `i`).
pub fn write_program(objects: &[ObjectId]) -> Arc<Program> {
    let mut b = ProgramBuilder::new(format!("w{}", objects.len()));
    for (i, &o) in objects.iter().enumerate() {
        b.write(o, arg(i as u8));
    }
    b.ret(vec![]);
    Arc::new(b.build().expect("write program is well-formed"))
}

/// A read-modify-write incrementing every given object.
pub fn rmw_program(objects: &[ObjectId]) -> Arc<Program> {
    let mut b = ProgramBuilder::new(format!("rmw{}", objects.len()));
    for &o in objects {
        b.read(o, 0).add(0, reg(0), imm(1)).write(o, reg(0));
    }
    b.ret(vec![]);
    Arc::new(b.build().expect("rmw program is well-formed"))
}

/// A DCAS over two objects.
pub fn dcas_program(x: ObjectId, y: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("dcas");
    let fail = b.fresh_label();
    b.read(x, 0)
        .read(y, 1)
        .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
        .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
        .write(x, arg(2))
        .write(y, arg(3))
        .ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    Arc::new(b.build().expect("dcas program is well-formed"))
}

/// A syntactic "update" whose only write is jumped over. The analyzer
/// flags the write as unreachable (MOC0001) and refines the whole program
/// to a query (MOC0006); the protocols then run it locally.
pub fn unreachable_write_program(x: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("dead-write");
    let end = b.fresh_label();
    b.read(x, 0).jump(end);
    b.write(x, imm(1));
    b.bind(end);
    b.ret(vec![reg(0)]);
    Arc::new(b.build().expect("dead-write program is well-formed"))
}

/// A program that stores a register no path has initialized — the
/// uninitialized-register-read (MOC0002) specimen. It still runs
/// (registers start at zero), which is exactly why it deserves a lint.
pub fn uninit_register_program(x: ObjectId) -> Arc<Program> {
    let mut b = ProgramBuilder::new("uninit-store");
    b.write(x, reg(4));
    b.ret(vec![]);
    Arc::new(b.build().expect("uninit-store program is well-formed"))
}

/// The example program set behind `moc analyze`: one representative of
/// each protocol workload shape plus two deliberately lint-triggering
/// specimens ([`unreachable_write_program`], [`uninit_register_program`]).
pub fn demo_programs() -> Vec<Arc<Program>> {
    let x = ObjectId::new(0);
    let y = ObjectId::new(1);
    vec![
        query_program(&[x, y]),
        write_program(&[x, y]),
        rmw_program(&[x]),
        dcas_program(x, y),
        unreachable_write_program(x),
        uninit_register_program(y),
    ]
}

/// A program set with *disjoint* query and update footprints: the only
/// query reads object 0, and every update writes objects 1 and 2 only. No
/// conflicting pair ever involves a query, so the analyzer certifies all
/// three Section 4 constraints (OO, WW, WO) up front — contrast with
/// [`demo_programs`], whose query/update overlap makes OO uncertifiable.
/// The demo configuration behind `moc analyze --workload disjoint`.
pub fn disjoint_programs() -> Vec<Arc<Program>> {
    let x = ObjectId::new(0);
    let y = ObjectId::new(1);
    let z = ObjectId::new(2);
    vec![
        query_program(&[x]),
        write_program(&[y, z]),
        rmw_program(&[y]),
        dcas_program(y, z),
    ]
}

/// Programs for a cleanly shardable deployment: `num_shards` disjoint
/// object groups (objects `2s` and `2s+1` for group `s`), each with a
/// two-object writer, an rmw and a query, and no program bridging groups.
/// `moc shard` partitions this into exactly `num_shards` shards with no
/// cross-shard edges — the golden accept fixture of the shard gate.
pub fn shardable_programs(num_shards: usize) -> Vec<Arc<Program>> {
    let mut out = Vec::new();
    for s in 0..num_shards.max(1) {
        let x = ObjectId::new((2 * s) as u32);
        let y = ObjectId::new((2 * s + 1) as u32);
        let mut b = ProgramBuilder::new(format!("s{s}-w"));
        b.write(x, arg(0)).write(y, arg(1)).ret(vec![]);
        out.push(Arc::new(b.build().expect("shard writer is well-formed")));
        let mut b = ProgramBuilder::new(format!("s{s}-rmw"));
        b.read(x, 0)
            .add(0, reg(0), imm(1))
            .write(x, reg(0))
            .ret(vec![]);
        out.push(Arc::new(b.build().expect("shard rmw is well-formed")));
        let mut b = ProgramBuilder::new(format!("s{s}-q"));
        b.read(x, 0).read(y, 1).ret(vec![reg(0), reg(1)]);
        out.push(Arc::new(b.build().expect("shard query is well-formed")));
    }
    out
}

/// A blind cross-shard writer spanning the first two shards of the
/// [`shardable_programs`] layout (objects 0 and 2): it writes both and
/// reads nothing. Under a shard plan it routes to the global channel and
/// conflicts only with shards 0 and 1, so a commute certificate's
/// delivery plan lets replicas skip every other shard's barrier when
/// applying it — the fast-path fixture of the commute-gated delivery
/// tests. Being read-free matters: a cross-shard *reader* could observe
/// an IRIW-style split between shard channels, which is exactly what the
/// mover analysis (MOC0014 aside) refuses to certify away.
pub fn cross_shard_writer_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new("x-w");
    b.write(ObjectId::new(0), arg(0))
        .write(ObjectId::new(2), arg(1))
        .ret(vec![]);
    Arc::new(b.build().expect("cross-shard writer is well-formed"))
}

/// Programs collapsed by one hub object: two otherwise-independent
/// groups ({0} and {1}) whose writers both also write the hub, object 2.
/// The interaction graph is a single component held together by the hub,
/// so `moc shard` finds one shard and flags MOC0010 — the reject fixture
/// of the shard gate. The hub is deliberately the *highest* object id:
/// under the sabotage [`moc_core::shard::RoutePolicy::FirstObject`] the
/// two writers' footprints start at different objects, so a mis-sharded
/// plan routes the conflicting hub writes into different channels.
pub fn hub_programs() -> Vec<Arc<Program>> {
    let a = ObjectId::new(0);
    let b_obj = ObjectId::new(1);
    let hub = ObjectId::new(2);
    let mut out = Vec::new();
    let mut b = ProgramBuilder::new("hub-w0");
    b.write(a, arg(0)).write(hub, arg(1)).ret(vec![]);
    out.push(Arc::new(b.build().expect("hub writer 0 is well-formed")));
    let mut b = ProgramBuilder::new("hub-w1");
    b.write(b_obj, arg(0)).write(hub, arg(1)).ret(vec![]);
    out.push(Arc::new(b.build().expect("hub writer 1 is well-formed")));
    let mut b = ProgramBuilder::new("hub-q0");
    b.read(a, 0).ret(vec![reg(0)]);
    out.push(Arc::new(b.build().expect("hub query 0 is well-formed")));
    let mut b = ProgramBuilder::new("hub-q1");
    b.read(b_obj, 0).ret(vec![reg(0)]);
    out.push(Arc::new(b.build().expect("hub query 1 is well-formed")));
    out
}

/// Process-confined client scripts over [`shardable_programs`]: process
/// `p` only ever touches shard `p % num_shards`'s objects. This is the
/// process-confinement side condition under which m-SC survives
/// per-shard sequencing (the certificate's `msc` verdict for multi-shard
/// plans); without it an IRIW-style split across shards is observable.
pub fn confined_scripts(
    num_shards: usize,
    processes: usize,
    ops_per_process: usize,
    think_ns: u64,
    rng: &mut StdRng,
) -> Vec<ClientScript> {
    let num_shards = num_shards.max(1);
    let programs = shardable_programs(num_shards);
    (0..processes)
        .map(|p| {
            let s = p % num_shards;
            let (w, rmw, q) = (&programs[3 * s], &programs[3 * s + 1], &programs[3 * s + 2]);
            let ops = (0..ops_per_process)
                .map(|_| match rng.gen_range(0..3u8) {
                    0 => OpSpec::new(
                        w.clone(),
                        vec![rng.gen_range(0..1_000), rng.gen_range(0..1_000)],
                    ),
                    1 => OpSpec::new(rmw.clone(), vec![]),
                    _ => OpSpec::new(q.clone(), vec![]),
                })
                .collect();
            ClientScript::new(ops).with_think_time(think_ns)
        })
        .collect()
}

/// [`confined_scripts`] with cross-shard traffic mixed in: each process
/// works its own shard but issues a [`cross_shard_writer_program`] write
/// every fourth operation. The cross writes route to the global channel
/// and conflict with shards 0 and 1 only, so with a commute plan
/// installed their delivery may bypass the barriers of shards `>= 2` —
/// the workload that exercises the certified delivery fast path while
/// keeping every data conflict barrier-ordered.
pub fn commuting_scripts(
    num_shards: usize,
    processes: usize,
    ops_per_process: usize,
    think_ns: u64,
    rng: &mut StdRng,
) -> Vec<ClientScript> {
    let num_shards = num_shards.max(1);
    let programs = shardable_programs(num_shards);
    let cross = cross_shard_writer_program();
    (0..processes)
        .map(|p| {
            let s = p % num_shards;
            let (w, rmw, q) = (&programs[3 * s], &programs[3 * s + 1], &programs[3 * s + 2]);
            let ops = (0..ops_per_process)
                .map(|i| {
                    if i % 4 == 3 {
                        OpSpec::new(
                            cross.clone(),
                            vec![rng.gen_range(0..1_000), rng.gen_range(0..1_000)],
                        )
                    } else {
                        match rng.gen_range(0..3u8) {
                            0 => OpSpec::new(
                                w.clone(),
                                vec![rng.gen_range(0..1_000), rng.gen_range(0..1_000)],
                            ),
                            1 => OpSpec::new(rmw.clone(), vec![]),
                            _ => OpSpec::new(q.clone(), vec![]),
                        }
                    }
                })
                .collect();
            ClientScript::new(ops).with_think_time(think_ns)
        })
        .collect()
}

/// Client scripts over [`hub_programs`] for the sabotage control: every
/// process alternates the two hub writers (whose hub-object writes
/// conflict) with a query on its own group.
pub fn hub_scripts(
    processes: usize,
    ops_per_process: usize,
    think_ns: u64,
    rng: &mut StdRng,
) -> Vec<ClientScript> {
    let programs = hub_programs();
    (0..processes)
        .map(|p| {
            let ops = (0..ops_per_process)
                .map(|i| match i % 3 {
                    0 => OpSpec::new(
                        programs[0].clone(),
                        vec![rng.gen_range(0..1_000), rng.gen_range(0..1_000)],
                    ),
                    1 => OpSpec::new(
                        programs[1].clone(),
                        vec![rng.gen_range(0..1_000), rng.gen_range(0..1_000)],
                    ),
                    _ => OpSpec::new(programs[2 + p % 2].clone(), vec![]),
                })
                .collect();
            ClientScript::new(ops).with_think_time(think_ns)
        })
        .collect()
}

/// Generates one random operation.
fn random_op(spec: &WorkloadSpec, rng: &mut StdRng) -> OpSpec {
    if rng.gen_bool(spec.update_fraction.clamp(0.0, 1.0)) {
        match rng.gen_range(0..3u8) {
            0 => {
                let objs = pick_span(spec, rng);
                let args = (0..objs.len()).map(|_| rng.gen_range(0..1_000)).collect();
                OpSpec::new(write_program(&objs), args)
            }
            1 => OpSpec::new(rmw_program(&pick_span(spec, rng)), vec![]),
            _ => {
                if spec.num_objects >= 2 {
                    let objs = loop {
                        let objs = pick_span(spec, rng);
                        if objs.len() >= 2 {
                            break objs;
                        }
                    };
                    OpSpec::new(
                        dcas_program(objs[0], objs[1]),
                        vec![
                            rng.gen_range(0..3),
                            rng.gen_range(0..3),
                            rng.gen_range(0..1_000),
                            rng.gen_range(0..1_000),
                        ],
                    )
                } else {
                    OpSpec::new(rmw_program(&pick_span(spec, rng)), vec![])
                }
            }
        }
    } else {
        OpSpec::new(query_program(&pick_span(spec, rng)), vec![])
    }
}

/// Generates randomized client scripts per `spec`, one per process.
pub fn scripts(spec: &WorkloadSpec, rng: &mut StdRng) -> Vec<ClientScript> {
    (0..spec.processes)
        .map(|_| {
            let ops = (0..spec.ops_per_process)
                .map(|_| random_op(spec, rng))
                .collect();
            ClientScript::new(ops).with_think_time(spec.think_ns)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scripts_have_requested_shape() {
        let spec = WorkloadSpec {
            processes: 3,
            ops_per_process: 7,
            ..WorkloadSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let s = scripts(&spec, &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|c| c.ops.len() == 7));
        assert_eq!(spec.total_ops(), 21);
    }

    #[test]
    fn update_fraction_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let all_updates = WorkloadSpec {
            update_fraction: 1.0,
            ..WorkloadSpec::default()
        };
        for s in scripts(&all_updates, &mut rng) {
            assert!(s.ops.iter().all(|o| o.program.is_potential_update()));
        }
        let all_queries = WorkloadSpec {
            update_fraction: 0.0,
            ..WorkloadSpec::default()
        };
        for s in scripts(&all_queries, &mut rng) {
            assert!(s.ops.iter().all(|o| !o.program.is_potential_update()));
        }
    }

    #[test]
    fn spans_respect_bounds() {
        let spec = WorkloadSpec {
            max_span: 2,
            num_objects: 4,
            ..WorkloadSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for s in scripts(&spec, &mut rng) {
            for op in &s.ops {
                assert!(op.program.referenced_objects().len() <= 2);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::default();
        let names = |seed: u64| -> Vec<String> {
            let mut rng = StdRng::seed_from_u64(seed);
            scripts(&spec, &mut rng)
                .into_iter()
                .flat_map(|s| s.ops.into_iter().map(|o| o.program.name().to_string()))
                .collect()
        };
        assert_eq!(names(7), names(7));
        assert_ne!(names(7), names(8));
    }

    #[test]
    fn demo_programs_are_valid_and_distinct() {
        let demos = demo_programs();
        assert!(demos.len() >= 6);
        let names: std::collections::BTreeSet<_> =
            demos.iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names.len(), demos.len(), "demo program names are unique");
        // The two lint specimens look like updates to the syntactic rule.
        assert!(demos
            .iter()
            .any(|p| p.name() == "dead-write" && p.is_potential_update()));
        assert!(demos
            .iter()
            .any(|p| p.name() == "uninit-store" && p.is_potential_update()));
    }

    #[test]
    fn disjoint_programs_separate_query_and_update_footprints() {
        let progs = disjoint_programs();
        assert_eq!(progs.len(), 4);
        let queries: Vec<_> = progs.iter().filter(|p| !p.is_potential_update()).collect();
        let updates: Vec<_> = progs.iter().filter(|p| p.is_potential_update()).collect();
        assert!(!queries.is_empty() && !updates.is_empty());
        // No object referenced by a query is referenced by any update.
        let q_objs: std::collections::BTreeSet<_> = queries
            .iter()
            .flat_map(|p| p.referenced_objects())
            .collect();
        let u_objs: std::collections::BTreeSet<_> = updates
            .iter()
            .flat_map(|p| p.referenced_objects())
            .collect();
        assert!(q_objs.is_disjoint(&u_objs));
    }

    #[test]
    fn shardable_programs_keep_groups_disjoint() {
        let progs = shardable_programs(3);
        assert_eq!(progs.len(), 9);
        let names: std::collections::BTreeSet<_> =
            progs.iter().map(|p| p.name().to_string()).collect();
        assert_eq!(names.len(), progs.len(), "names are unique");
        // Group s touches exactly objects {2s, 2s+1}.
        for s in 0..3usize {
            let group: std::collections::BTreeSet<_> = progs[3 * s..3 * s + 3]
                .iter()
                .flat_map(|p| p.referenced_objects())
                .collect();
            let want: std::collections::BTreeSet<_> =
                [ObjectId::new(2 * s as u32), ObjectId::new(2 * s as u32 + 1)]
                    .into_iter()
                    .collect();
            assert_eq!(group, want);
        }
    }

    #[test]
    fn hub_programs_share_only_the_hub() {
        let progs = hub_programs();
        let hub = ObjectId::new(2);
        let writers: Vec<_> = progs.iter().filter(|p| p.is_potential_update()).collect();
        assert_eq!(writers.len(), 2);
        for w in &writers {
            assert!(w.potential_writes().contains(&hub));
        }
        // The writers' non-hub footprints are disjoint.
        let rest: Vec<std::collections::BTreeSet<_>> = writers
            .iter()
            .map(|w| {
                w.referenced_objects()
                    .into_iter()
                    .filter(|&o| o != hub)
                    .collect()
            })
            .collect();
        assert!(rest[0].is_disjoint(&rest[1]));
    }

    #[test]
    fn confined_scripts_respect_process_confinement() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = confined_scripts(2, 4, 6, 100, &mut rng);
        assert_eq!(s.len(), 4);
        for (p, script) in s.iter().enumerate() {
            let shard = p % 2;
            let allowed: std::collections::BTreeSet<_> = [
                ObjectId::new(2 * shard as u32),
                ObjectId::new(2 * shard as u32 + 1),
            ]
            .into_iter()
            .collect();
            for op in &script.ops {
                assert!(op
                    .program
                    .referenced_objects()
                    .iter()
                    .all(|o| allowed.contains(o)));
            }
        }
    }

    #[test]
    fn single_object_universe_degenerates_gracefully() {
        let spec = WorkloadSpec {
            num_objects: 1,
            max_span: 3,
            update_fraction: 1.0,
            ..WorkloadSpec::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let s = scripts(&spec, &mut rng);
        for c in &s {
            for op in &c.ops {
                assert!(op.program.referenced_objects().len() <= 1);
            }
        }
    }
}
