//! Synthetic history generators for the consistency checkers.
//!
//! Three families:
//!
//! * [`serial_history`] — a random *serial* execution: m-operations run one
//!   at a time against a simulated store, so the history is legal and
//!   m-linearizable by construction. Positive control for checkers at any
//!   size.
//! * [`random_history`] — operations get *random* read provenance (any
//!   writer of the object, or the initial value), decoupled from any real
//!   execution. Most such histories are inadmissible; deciding them forces
//!   the brute-force checker to actually search. Fuel for the Theorem 1/2
//!   scaling benchmarks.
//! * [`concurrent_writers_history`] — the adversarial family: `k`
//!   concurrent multi-object writers and `k` readers, each reader
//!   consistent with a *different* interleaving. Verification must consider
//!   many writer orders, exhibiting the exponential worst case.
//! * [`multi_component_history`] — several *disjoint* copies of the
//!   adversarial family, each on its own object and process range. A naive
//!   search multiplies the per-component state spaces; a component-aware
//!   search only sums them, so this family separates the two
//!   experimentally.
//! * [`poisoned_multi_component_history`] — the multi-component family
//!   plus one stale reader spliced into component 0: it reads a writer's
//!   value and then, later on the same process, reads the initial value
//!   back. The forced `~rw` edge closes a `~H+` cycle, so precedence
//!   analysis refutes the whole history without any search.

use moc_core::history::History;
use moc_core::ids::{MOpId, ObjectId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::op::CompletedOp;
use rand::rngs::StdRng;
use rand::Rng;

/// Parameters for the synthetic history generators.
#[derive(Debug, Clone, Copy)]
pub struct HistorySpec {
    /// Number of processes.
    pub processes: usize,
    /// m-operations per process.
    pub ops_per_process: usize,
    /// Object universe size.
    pub num_objects: usize,
    /// Probability an m-operation is an update.
    pub update_fraction: f64,
    /// Maximum objects per m-operation.
    pub max_span: usize,
}

impl Default for HistorySpec {
    fn default() -> Self {
        HistorySpec {
            processes: 3,
            ops_per_process: 4,
            num_objects: 4,
            update_fraction: 0.5,
            max_span: 2,
        }
    }
}

fn distinct_objects(spec: &HistorySpec, rng: &mut StdRng) -> Vec<ObjectId> {
    let span = rng.gen_range(1..=spec.max_span.clamp(1, spec.num_objects));
    let mut objs = Vec::with_capacity(span);
    while objs.len() < span {
        let o = ObjectId::new(rng.gen_range(0..spec.num_objects) as u32);
        if !objs.contains(&o) {
            objs.push(o);
        }
    }
    objs
}

/// A random serial execution: always legal, m-linearizable, m-normal and
/// m-sequentially consistent.
pub fn serial_history(spec: &HistorySpec, rng: &mut StdRng) -> History {
    let mut store: Vec<(i64, MOpId, u64)> = vec![(0, MOpId::INITIAL, 0); spec.num_objects];
    let mut next_seq = vec![0u32; spec.processes];
    let mut remaining: Vec<usize> = vec![spec.ops_per_process; spec.processes];
    let mut records = Vec::new();
    let mut t = 0u64;
    let mut next_value = 1i64;

    while remaining.iter().any(|&r| r > 0) {
        let p = loop {
            let p = rng.gen_range(0..spec.processes);
            if remaining[p] > 0 {
                break p;
            }
        };
        remaining[p] -= 1;
        let pid = ProcessId::new(p as u32);
        let id = MOpId::new(pid, next_seq[p]);
        next_seq[p] += 1;

        let objs = distinct_objects(spec, rng);
        let is_update = rng.gen_bool(spec.update_fraction.clamp(0.0, 1.0));
        let mut ops = Vec::new();
        for &o in &objs {
            if is_update && rng.gen_bool(0.7) {
                let (_, _, ver) = store[o.index()];
                let v = next_value;
                next_value += 1;
                store[o.index()] = (v, id, ver + 1);
                ops.push(CompletedOp::write(o, v, id, ver + 1));
            } else {
                let (v, w, ver) = store[o.index()];
                ops.push(CompletedOp::read(o, v, w, ver));
            }
        }
        let invoked = t;
        t += 10;
        let responded = t;
        t += 10;
        records.push(MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(invoked),
            responded_at: EventTime::from_nanos(responded),
            ops,
            outputs: Vec::new(),
            treated_as: if is_update {
                MOpClass::Update
            } else {
                MOpClass::Query
            },
            label: "serial".into(),
        });
    }
    History::new(spec.num_objects, records).expect("serial construction is well-formed")
}

/// A history whose reads get random provenance — any writer of the object
/// or the initial value — under fully overlapping intervals. Usually
/// inadmissible; decided only by search.
pub fn random_history(spec: &HistorySpec, rng: &mut StdRng) -> History {
    // First pass: decide the shape (who writes what).
    struct Shape {
        id: MOpId,
        objs: Vec<ObjectId>,
        write_mask: Vec<bool>,
        invoked: u64,
        responded: u64,
    }
    let mut shapes = Vec::new();
    for p in 0..spec.processes {
        let mut t = 0u64;
        for seq in 0..spec.ops_per_process {
            let id = MOpId::new(ProcessId::new(p as u32), seq as u32);
            let objs = distinct_objects(spec, rng);
            let is_update = rng.gen_bool(spec.update_fraction.clamp(0.0, 1.0));
            let write_mask = objs
                .iter()
                .map(|_| is_update && rng.gen_bool(0.7))
                .collect::<Vec<_>>();
            let invoked = t + rng.gen_range(0..5);
            let responded = invoked + rng.gen_range(1..20);
            t = responded;
            shapes.push(Shape {
                id,
                objs,
                write_mask,
                invoked,
                responded,
            });
        }
    }
    // Collect writers per object.
    let mut writers: Vec<Vec<(MOpId, i64, u64)>> = vec![Vec::new(); spec.num_objects];
    let mut next_value = 1i64;
    let mut write_values = std::collections::HashMap::new();
    for s in &shapes {
        for (i, &o) in s.objs.iter().enumerate() {
            if s.write_mask[i] {
                let v = next_value;
                next_value += 1;
                let ver = writers[o.index()].len() as u64 + 1;
                writers[o.index()].push((s.id, v, ver));
                write_values.insert((s.id, o), (v, ver));
            }
        }
    }
    // Second pass: emit records with random read provenance.
    let records = shapes
        .iter()
        .map(|s| {
            let ops = s
                .objs
                .iter()
                .enumerate()
                .map(|(i, &o)| {
                    if s.write_mask[i] {
                        let (v, ver) = write_values[&(s.id, o)];
                        CompletedOp::write(o, v, s.id, ver)
                    } else {
                        // Random provenance among writers of o (excluding
                        // this op, which never writes o) or initial.
                        let cands: Vec<&(MOpId, i64, u64)> = writers[o.index()]
                            .iter()
                            .filter(|(w, _, _)| *w != s.id)
                            .collect();
                        if cands.is_empty() || rng.gen_bool(0.2) {
                            CompletedOp::read(o, 0, MOpId::INITIAL, 0)
                        } else {
                            let &(w, v, ver) = cands[rng.gen_range(0..cands.len())];
                            CompletedOp::read(o, v, w, ver)
                        }
                    }
                })
                .collect::<Vec<_>>();
            MOpRecord {
                id: s.id,
                invoked_at: EventTime::from_nanos(s.invoked),
                responded_at: EventTime::from_nanos(s.responded),
                ops,
                outputs: Vec::new(),
                treated_as: if s.write_mask.iter().any(|&w| w) {
                    MOpClass::Update
                } else {
                    MOpClass::Query
                },
                label: "random".into(),
            }
        })
        .collect();
    History::new(spec.num_objects, records).expect("random construction is well-formed")
}

/// The adversarial reader/writer family parameterized by `k`:
///
/// * `k` writer processes, each atomically writing all of `x_0..x_{m-1}`
///   (fully concurrent intervals);
/// * `k` reader processes, each reading all objects from a *randomly
///   chosen* writer (consistently — so each reader is individually
///   satisfiable, but the set of readers pins down interleavings).
///
/// Deciding m-sequential consistency over this family forces the search to
/// explore writer permutations; cost grows combinatorially with `k`.
pub fn concurrent_writers_history(k: usize, num_objects: usize, rng: &mut StdRng) -> History {
    let mut records = Vec::new();
    let objects: Vec<ObjectId> = (0..num_objects).map(|i| ObjectId::new(i as u32)).collect();
    // Writers: all concurrent.
    for w in 0..k {
        let id = MOpId::new(ProcessId::new(w as u32), 0);
        let ops = objects
            .iter()
            .map(|&o| CompletedOp::write(o, (w + 1) as i64, id, 1))
            .collect();
        records.push(MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(1_000),
            ops,
            outputs: Vec::new(),
            treated_as: MOpClass::Update,
            label: format!("writer{w}"),
        });
    }
    // Readers: each snapshots one random writer's values, concurrent with
    // everything.
    for r in 0..k {
        let id = MOpId::new(ProcessId::new((k + r) as u32), 0);
        let w = rng.gen_range(0..k);
        let wid = MOpId::new(ProcessId::new(w as u32), 0);
        let ops = objects
            .iter()
            .map(|&o| CompletedOp::read(o, (w + 1) as i64, wid, 1))
            .collect();
        records.push(MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(1_000),
            ops,
            outputs: Vec::new(),
            treated_as: MOpClass::Query,
            label: format!("reader{r}"),
        });
    }
    History::new(num_objects, records).expect("adversarial construction is well-formed")
}

/// One component of the multi-component family: the `k`-writer/`k`-reader
/// adversarial history translated to objects
/// `[c·m, (c+1)·m)` and processes `[c·2k, (c+1)·2k)`.
fn component_records(
    c: usize,
    k: usize,
    objects_per_component: usize,
    rng: &mut StdRng,
    records: &mut Vec<MOpRecord>,
) {
    let obj_base = c * objects_per_component;
    let proc_base = (c * 2 * k) as u32;
    let objects: Vec<ObjectId> = (0..objects_per_component)
        .map(|i| ObjectId::new((obj_base + i) as u32))
        .collect();
    for w in 0..k {
        let id = MOpId::new(ProcessId::new(proc_base + w as u32), 0);
        let ops = objects
            .iter()
            .map(|&o| CompletedOp::write(o, (w + 1) as i64, id, 1))
            .collect();
        records.push(MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(1_000),
            ops,
            outputs: Vec::new(),
            treated_as: MOpClass::Update,
            label: format!("c{c}writer{w}"),
        });
    }
    for r in 0..k {
        let id = MOpId::new(ProcessId::new(proc_base + (k + r) as u32), 0);
        let w = rng.gen_range(0..k);
        let wid = MOpId::new(ProcessId::new(proc_base + w as u32), 0);
        let ops = objects
            .iter()
            .map(|&o| CompletedOp::read(o, (w + 1) as i64, wid, 1))
            .collect();
        records.push(MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(1_000),
            ops,
            outputs: Vec::new(),
            treated_as: MOpClass::Query,
            label: format!("c{c}reader{r}"),
        });
    }
}

/// `components` disjoint copies of [`concurrent_writers_history`]: copy
/// `c` lives on objects `[c·m, (c+1)·m)` and processes `[c·2k, (c+1)·2k)`,
/// sharing nothing with the other copies. All intervals are fully
/// concurrent, so only the object footprints partition the history.
///
/// The family is always admissible (each reader snapshots one writer), but
/// a search that cannot decompose it must interleave all `components·2k`
/// m-operations at once, multiplying the per-component state spaces; a
/// component-aware search solves each copy independently and sums them.
pub fn multi_component_history(
    components: usize,
    k: usize,
    objects_per_component: usize,
    rng: &mut StdRng,
) -> History {
    let mut records = Vec::new();
    for c in 0..components {
        component_records(c, k, objects_per_component, rng, &mut records);
    }
    History::new(components * objects_per_component, records)
        .expect("multi-component construction is well-formed")
}

/// [`multi_component_history`] plus a stale reader appended to component 0:
/// a fresh process whose first m-operation reads object 0 from writer 0 and
/// whose second reads the *initial* value of the same object back.
///
/// The initial m-operation precedes every writer, so the second read forces
/// the `~rw` edge `stale ~rw writer0` (D 4.11) unconditionally, closing the
/// cycle `writer0 ~rf fresh ~p stale ~rw writer0` in `~H+`. Precedence
/// analysis therefore refutes this family in polynomial time, while a
/// search-only checker still has to explore and exhaust orderings.
pub fn poisoned_multi_component_history(
    components: usize,
    k: usize,
    objects_per_component: usize,
    rng: &mut StdRng,
) -> History {
    assert!(components >= 1 && k >= 1 && objects_per_component >= 1);
    let mut records = Vec::new();
    for c in 0..components {
        component_records(c, k, objects_per_component, rng, &mut records);
    }
    let pid = ProcessId::new((components * 2 * k) as u32);
    let w0 = MOpId::new(ProcessId::new(0), 0);
    let x = ObjectId::new(0);
    records.push(MOpRecord {
        id: MOpId::new(pid, 0),
        invoked_at: EventTime::from_nanos(0),
        responded_at: EventTime::from_nanos(100),
        ops: vec![CompletedOp::read(x, 1, w0, 1)],
        outputs: Vec::new(),
        treated_as: MOpClass::Query,
        label: "fresh".into(),
    });
    records.push(MOpRecord {
        id: MOpId::new(pid, 1),
        invoked_at: EventTime::from_nanos(200),
        responded_at: EventTime::from_nanos(300),
        ops: vec![CompletedOp::read(x, 0, MOpId::INITIAL, 0)],
        outputs: Vec::new(),
        treated_as: MOpClass::Query,
        label: "stale".into(),
    });
    History::new(components * objects_per_component, records)
        .expect("poisoned construction is well-formed")
}

/// Lays `tiles` disjoint copies of `h` end to end as one long stream:
/// tile `t` shifts every object by `t * h.num_objects()` (a fresh object
/// range, so tiles never interact), every per-process sequence number
/// past the previous tile's, every event time past the previous tile's
/// horizon, and remaps read provenance onto the shifted writer ids
/// within the same tile.
///
/// The result models unbounded traffic with repeating structure: it is
/// admissible under a condition exactly when `h` is, and because every
/// inter-tile pair of m-operations is both object-disjoint and
/// real-time ordered, an online checker can retire each tile at its
/// quiescence point. This is the workload behind the monitor's
/// bounded-memory gate and `bench_monitor`: live-graph memory must stay
/// flat no matter how many tiles stream past.
pub fn tile_history(h: &History, tiles: usize) -> History {
    assert!(tiles >= 1, "need at least one tile");
    let num_objects = h.num_objects();
    let horizon = h
        .records()
        .iter()
        .map(|r| r.responded_at.as_nanos())
        .max()
        .unwrap_or(0)
        + 10;
    let seq_stride = h.records().iter().map(|r| r.id.seq).max().unwrap_or(0) + 1;
    let mut records = Vec::with_capacity(h.len() * tiles);
    for t in 0..tiles {
        let dt = t as u64 * horizon;
        let dseq = t as u32 * seq_stride;
        let dobj = (t * num_objects) as u32;
        let shift_id = |id: MOpId| {
            if id == MOpId::INITIAL {
                id
            } else {
                MOpId::new(id.process, id.seq + dseq)
            }
        };
        for r in h.records() {
            records.push(MOpRecord {
                id: shift_id(r.id),
                invoked_at: EventTime::from_nanos(r.invoked_at.as_nanos() + dt),
                responded_at: EventTime::from_nanos(r.responded_at.as_nanos() + dt),
                ops: r
                    .ops
                    .iter()
                    .map(|op| CompletedOp {
                        object: ObjectId::new(op.object.as_u32() + dobj),
                        writer: shift_id(op.writer),
                        ..*op
                    })
                    .collect(),
                outputs: r.outputs.clone(),
                treated_as: r.treated_as,
                label: r.label.clone(),
            });
        }
    }
    History::new(num_objects * tiles, records).expect("tiling preserves well-formedness")
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_checker::conditions::{check, Condition, Strategy};
    use moc_checker::SearchLimits;
    use rand::SeedableRng;

    #[test]
    fn serial_histories_satisfy_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..5 {
            let _ = seed;
            let h = serial_history(&HistorySpec::default(), &mut rng);
            for c in [
                Condition::MSequentialConsistency,
                Condition::MNormality,
                Condition::MLinearizability,
            ] {
                assert!(check(&h, c, Strategy::Auto).unwrap().satisfied, "{c}");
            }
        }
    }

    #[test]
    fn random_histories_are_wellformed_and_checkable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rejected = 0;
        for _ in 0..20 {
            let h = random_history(&HistorySpec::default(), &mut rng);
            assert!(!h.is_empty());
            let r = check(
                &h,
                Condition::MSequentialConsistency,
                Strategy::BruteForce(SearchLimits::with_max_nodes(200_000)),
            );
            if let Ok(report) = r {
                if !report.satisfied {
                    rejected += 1;
                }
            }
        }
        assert!(rejected > 0, "random provenance should often be rejected");
    }

    #[test]
    fn concurrent_writers_with_consistent_readers_is_satisfiable() {
        // Each reader snapshots exactly one writer's full write set, so a
        // witness always exists: order the writers arbitrarily and place
        // every reader immediately after the writer it observed.
        let mut rng = StdRng::seed_from_u64(3);
        let h = concurrent_writers_history(4, 3, &mut rng);
        assert_eq!(h.len(), 8);
        let report = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(report.satisfied);
    }

    #[test]
    fn torn_reader_is_rejected() {
        // Build the k=2 family, then tear one reader: x from writer 0, the
        // rest from writer 1 — inadmissible (writers write all objects
        // atomically).
        let mut rng = StdRng::seed_from_u64(4);
        let h = concurrent_writers_history(2, 2, &mut rng);
        let mut records = h.records().to_vec();
        let w0 = MOpId::new(ProcessId::new(0), 0);
        let w1 = MOpId::new(ProcessId::new(1), 0);
        // Find a reader record and tear it.
        let reader = records
            .iter_mut()
            .find(|r| r.label.starts_with("reader"))
            .unwrap();
        reader.ops[0] = CompletedOp::read(ObjectId::new(0), 1, w0, 1);
        reader.ops[1] = CompletedOp::read(ObjectId::new(1), 2, w1, 1);
        let torn = History::new(2, records).unwrap();
        let report = check(&torn, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(
            !report.satisfied,
            "mixed-writer snapshot must be inadmissible"
        );
    }

    #[test]
    fn multi_component_is_admissible_and_decomposes() {
        let mut rng = StdRng::seed_from_u64(5);
        let h = multi_component_history(3, 2, 2, &mut rng);
        assert_eq!(h.len(), 12);
        assert_eq!(h.num_objects(), 6);
        let report = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(report.satisfied);
        // The components really are disjoint: no object appears in two.
        use std::collections::BTreeMap;
        let mut comp_of_obj: BTreeMap<usize, usize> = BTreeMap::new();
        for (_, rec) in h.iter() {
            let c: usize = rec.label[1..2].parse().unwrap();
            for op in &rec.ops {
                assert_eq!(*comp_of_obj.entry(op.object.index()).or_insert(c), c);
            }
        }
    }

    #[test]
    fn poisoned_family_is_refuted_without_search() {
        let mut rng = StdRng::seed_from_u64(6);
        let h = poisoned_multi_component_history(2, 2, 2, &mut rng);
        let report = check(&h, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert!(!report.satisfied, "stale reader must be inadmissible");
        // The precedence graph alone refutes it: a ~H+ cycle exists.
        use moc_core::relations::{process_order, reads_from};
        let rel = process_order(&h).union(&reads_from(&h));
        let g = moc_checker::PrecedenceGraph::from_relation(&h, &rel);
        assert!(g.cycle_proof().is_some(), "cycle must be forced statically");
    }

    #[test]
    fn tiling_preserves_admissibility_and_isolates_tiles() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = HistorySpec {
            processes: 2,
            ops_per_process: 3,
            num_objects: 2,
            ..HistorySpec::default()
        };
        let h = serial_history(&spec, &mut rng);
        let tiled = tile_history(&h, 4);
        assert_eq!(tiled.len(), 4 * h.len());
        assert_eq!(tiled.num_objects(), 4 * h.num_objects());
        let report = check(&tiled, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(report.satisfied, "serial tiles stay m-linearizable");
        // Tiles are object-disjoint and laid out in non-overlapping time
        // ranges, so an online checker can retire each at quiescence.
        let horizon = h
            .records()
            .iter()
            .map(|r| r.responded_at.as_nanos())
            .max()
            .unwrap()
            + 10;
        for r in tiled.records() {
            let tile = r.invoked_at.as_nanos() / horizon;
            assert_eq!(r.responded_at.as_nanos() / horizon, tile, "no tile overlap");
            for op in &r.ops {
                assert_eq!(op.object.index() / h.num_objects(), tile as usize);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            serial_history(&HistorySpec::default(), &mut rng)
                .records()
                .to_vec()
        };
        assert_eq!(gen(9), gen(9));
    }
}
