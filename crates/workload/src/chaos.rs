//! Canned fault plans and workload families for the chaos conformance
//! suite.
//!
//! The chaos sweep is a cross product: *workload family* × *fault
//! family* × *seed*. Each family here is a named, parameter-free recipe
//! so a failing `(protocol, workload, faults, seed)` tuple printed by the
//! suite (or by `moc chaos`) is enough to replay the exact run.
//!
//! Every fault family is **recoverable**: partitions heal, crashed
//! replicas restart, and drop probabilities stay well below 1. Over the
//! reliable-link sublayer such plans must be invisible to the
//! consistency checker — that is precisely the conformance claim the
//! suite sweeps.

use moc_core::ids::ProcessId;
use moc_sim::FaultPlan;

use crate::WorkloadSpec;

/// A named, recoverable fault-plan recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFamily {
    /// No faults at all (control group).
    None,
    /// 10% independent per-message drop probability.
    Lossy,
    /// 30% drops plus 10% duplicates: heavy but recoverable loss.
    LossyDup,
    /// A one-way partition from P1 to P0 (the sequencer) over the middle
    /// of the run, healing before the horizon.
    Partition,
    /// The last replica crashes early and restarts mid-run; light drops
    /// throughout.
    Crash,
    /// Everything at once: drops, duplicates, a healing partition and a
    /// crash-restart.
    Storm,
    /// The current coordinator (view-0 leader, P0) crashes late in the
    /// run, when most traffic has drained, and restarts before the
    /// horizon. Exercises failover at a quiet moment on an otherwise
    /// clean network.
    LeaderCrashQuiet,
    /// The coordinator crashes early, with the submission pipeline full,
    /// under light drops. Unordered submissions must be re-proposed in
    /// the new view.
    LeaderCrashBurst,
    /// Two successive coordinators (views 0 and 1) crash one after the
    /// other, each restarting before the next falls — the repeated
    /// failover case.
    LeaderCrashRepeat,
}

impl FaultFamily {
    /// All original families, in sweep order.
    ///
    /// Leader-crash families live in [`LEADER_CRASH`](Self::LEADER_CRASH),
    /// not here: existing sweeps derive their seeds from positions in this
    /// array, so appending to it would silently reshuffle every replay
    /// line ever printed.
    pub const ALL: [FaultFamily; 6] = [
        FaultFamily::None,
        FaultFamily::Lossy,
        FaultFamily::LossyDup,
        FaultFamily::Partition,
        FaultFamily::Crash,
        FaultFamily::Storm,
    ];

    /// The coordinator-crash families, in sweep order. Only meaningful
    /// for runs whose atomic broadcast can survive a leader crash; under
    /// the fixed sequencer they serve as negative controls.
    pub const LEADER_CRASH: [FaultFamily; 3] = [
        FaultFamily::LeaderCrashQuiet,
        FaultFamily::LeaderCrashBurst,
        FaultFamily::LeaderCrashRepeat,
    ];

    /// The family's stable name (used in replay lines and reports).
    pub fn name(&self) -> &'static str {
        match self {
            FaultFamily::None => "none",
            FaultFamily::Lossy => "lossy",
            FaultFamily::LossyDup => "lossy-dup",
            FaultFamily::Partition => "partition",
            FaultFamily::Crash => "crash",
            FaultFamily::Storm => "storm",
            FaultFamily::LeaderCrashQuiet => "leader-crash-quiet",
            FaultFamily::LeaderCrashBurst => "leader-crash-burst",
            FaultFamily::LeaderCrashRepeat => "leader-crash-repeat",
        }
    }

    /// Looks a family up by [`name`](Self::name).
    pub fn by_name(name: &str) -> Option<FaultFamily> {
        FaultFamily::ALL
            .into_iter()
            .chain(FaultFamily::LEADER_CRASH)
            .find(|f| f.name() == name)
    }

    /// Instantiates the plan for a cluster of `n` processes whose run is
    /// expected to quiesce within roughly `horizon_ns` of virtual time.
    /// Scheduled faults (partitions, crashes) are placed inside the
    /// horizon and always heal/restart before it ends.
    pub fn plan(&self, n: usize, horizon_ns: u64) -> FaultPlan {
        let h = horizon_ns.max(10);
        match self {
            FaultFamily::None => FaultPlan::default(),
            FaultFamily::Lossy => FaultPlan::lossy(0.10),
            FaultFamily::LossyDup => FaultPlan::lossy(0.30).with_dup(0.10),
            FaultFamily::Partition => {
                let from = ProcessId::new(if n > 1 { 1 } else { 0 });
                FaultPlan::default().with_partition(from, ProcessId::new(0), h / 4, h / 2)
            }
            FaultFamily::Crash => {
                let victim = ProcessId::new(n.saturating_sub(1) as u32);
                FaultPlan::lossy(0.05).with_crash(victim, h / 8, h / 3)
            }
            FaultFamily::Storm => {
                let victim = ProcessId::new(n.saturating_sub(1) as u32);
                let from = ProcessId::new(if n > 2 { 2 } else { 0 });
                FaultPlan::lossy(0.15)
                    .with_dup(0.10)
                    .with_partition(from, ProcessId::new(0), h / 5, h / 3)
                    .with_crash(victim, h / 2, (h / 2).saturating_add(h / 6))
            }
            FaultFamily::LeaderCrashQuiet => {
                FaultPlan::default().with_leader_crash(0, n, h / 2, (h / 2).saturating_add(h / 4))
            }
            FaultFamily::LeaderCrashBurst => {
                FaultPlan::lossy(0.05).with_leader_crash(0, n, h / 10, h / 3)
            }
            // Windows sized so the first outage outlasts the suspicion
            // timeout (view 1 actually installs under P1) and the second
            // kills P1 while it is the acting leader with traffic still
            // in flight.
            FaultFamily::LeaderCrashRepeat => FaultPlan::default().with_successive_leader_crashes(
                0,
                2.min(n as u64),
                n,
                h / 4,
                h / 8,
                h / 5,
            ),
        }
    }
}

/// A named workload-shape recipe for the chaos sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadFamily {
    /// The default mixed workload: 50% updates, moderate contention.
    Mixed,
    /// Query-dominated (80% reads): stresses mlin's query/response path.
    ReadHeavy,
    /// Update-dominated (80% writes): stresses the abcast pipe.
    WriteHeavy,
    /// Everyone hammers a two-object hot set with wide m-operations.
    HotSpot,
}

impl WorkloadFamily {
    /// All families, in sweep order.
    pub const ALL: [WorkloadFamily; 4] = [
        WorkloadFamily::Mixed,
        WorkloadFamily::ReadHeavy,
        WorkloadFamily::WriteHeavy,
        WorkloadFamily::HotSpot,
    ];

    /// The family's stable name (used in replay lines and reports).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadFamily::Mixed => "mixed",
            WorkloadFamily::ReadHeavy => "read-heavy",
            WorkloadFamily::WriteHeavy => "write-heavy",
            WorkloadFamily::HotSpot => "hot-spot",
        }
    }

    /// Looks a family up by [`name`](Self::name).
    pub fn by_name(name: &str) -> Option<WorkloadFamily> {
        WorkloadFamily::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The workload spec for `processes` processes issuing
    /// `ops_per_process` m-operations each.
    pub fn spec(&self, processes: usize, ops_per_process: usize) -> WorkloadSpec {
        let base = WorkloadSpec {
            processes,
            ops_per_process,
            ..WorkloadSpec::default()
        };
        match self {
            WorkloadFamily::Mixed => base,
            WorkloadFamily::ReadHeavy => WorkloadSpec {
                update_fraction: 0.2,
                ..base
            },
            WorkloadFamily::WriteHeavy => WorkloadSpec {
                update_fraction: 0.8,
                ..base
            },
            WorkloadFamily::HotSpot => WorkloadSpec {
                num_objects: 4,
                hot_objects: 2,
                hot_fraction: 0.9,
                max_span: 2,
                ..base
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_families() -> impl Iterator<Item = FaultFamily> {
        FaultFamily::ALL
            .into_iter()
            .chain(FaultFamily::LEADER_CRASH)
    }

    #[test]
    fn every_fault_family_is_recoverable() {
        for fam in all_families() {
            let plan = fam.plan(4, 1_000_000);
            assert!(
                plan.drop_prob < 1.0,
                "{}: drop prob must allow progress",
                fam.name()
            );
            for p in &plan.partitions {
                assert!(
                    p.until_ns < u64::MAX,
                    "{}: partitions must heal",
                    fam.name()
                );
            }
            for c in &plan.crashes {
                assert!(
                    c.restart_ns < u64::MAX,
                    "{}: crashes must restart",
                    fam.name()
                );
                assert!((c.process.index()) < 4, "{}: victim in range", fam.name());
            }
        }
    }

    #[test]
    fn only_the_control_family_is_benign() {
        for fam in all_families() {
            let benign = fam.plan(3, 500_000).is_benign();
            assert_eq!(benign, fam == FaultFamily::None, "{}", fam.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for fam in all_families() {
            assert_eq!(FaultFamily::by_name(fam.name()), Some(fam));
        }
        for fam in WorkloadFamily::ALL {
            assert_eq!(WorkloadFamily::by_name(fam.name()), Some(fam));
        }
        assert_eq!(FaultFamily::by_name("bogus"), None);
    }

    #[test]
    fn leader_crash_families_target_the_rotation() {
        let quiet = FaultFamily::LeaderCrashQuiet.plan(3, 1_000_000);
        assert_eq!(quiet.crashes.len(), 1);
        assert_eq!(quiet.crashes[0].process, ProcessId::new(0), "view-0 leader");
        let repeat = FaultFamily::LeaderCrashRepeat.plan(3, 1_000_000);
        assert_eq!(repeat.crashes.len(), 2);
        assert_eq!(repeat.crashes[0].process, ProcessId::new(0));
        assert_eq!(repeat.crashes[1].process, ProcessId::new(1));
        assert!(
            repeat.crashes[0].restart_ns <= repeat.crashes[1].at_ns,
            "single-failure discipline: P0 is back before P1 falls"
        );
    }

    #[test]
    fn workload_families_shape_the_spec() {
        let read = WorkloadFamily::ReadHeavy.spec(4, 10);
        let write = WorkloadFamily::WriteHeavy.spec(4, 10);
        assert!(read.update_fraction < write.update_fraction);
        let hot = WorkloadFamily::HotSpot.spec(4, 10);
        assert!(hot.hot_fraction > 0.8);
        assert_eq!(hot.processes, 4);
        assert_eq!(hot.ops_per_process, 10);
    }
}
