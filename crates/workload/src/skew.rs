//! Seed-deterministic key-skew generators for the load harness.
//!
//! The runtime benchmark drives N client threads, each picking the keys
//! its m-operations touch. For results to be reproducible the key
//! sequence of thread `t` must depend only on `(seed, t)` — never on how
//! many other threads run, how the OS schedules them, or which platform
//! executes the binary. These generators therefore sit on a private
//! splitmix64 stream (no shared state, no library RNG whose algorithm
//! could drift) and derive one independent stream per thread index.
//!
//! Three profiles:
//!
//! * [`KeySkew::Uniform`] — every key equally likely.
//! * [`KeySkew::Zipfian`] — the YCSB-style power-law favourite: key 0 is
//!   hottest, with tail weight controlled by `theta` (0.99 is the
//!   classic benchmark setting).
//! * [`KeySkew::Normal`] — a Gaussian bump centred mid-keyspace,
//!   clamped to the range; `stddev_frac` scales the spread relative to
//!   the keyspace size.

/// The sole PRNG behind key picking: splitmix64, chosen because its
/// output is fixed by the algorithm (stable across platforms and
/// dependency versions) and each call advances a single `u64` state.
#[derive(Debug, Clone, Copy)]
pub struct SkewRng {
    state: u64,
}

impl SkewRng {
    /// A stream fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        SkewRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The key-popularity profile of a load-harness client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeySkew {
    /// Every key equally likely.
    Uniform,
    /// YCSB-style zipfian: rank-`k` key has weight `1/(k+1)^theta`.
    /// `theta` must be in `(0, 1)`; 0.99 is the classic hot-spot setting.
    Zipfian {
        /// Skew exponent.
        theta: f64,
    },
    /// Gaussian over the keyspace, centred at `num_keys / 2`, standard
    /// deviation `stddev_frac * num_keys`, clamped to the valid range.
    Normal {
        /// Spread as a fraction of the keyspace.
        stddev_frac: f64,
    },
}

impl KeySkew {
    /// Parses a profile name as used by the bench CLI: `uniform`,
    /// `zipfian` (theta 0.99) or `normal` (stddev 1/8th of keyspace).
    pub fn parse(name: &str) -> Option<KeySkew> {
        match name {
            "uniform" => Some(KeySkew::Uniform),
            "zipfian" => Some(KeySkew::Zipfian { theta: 0.99 }),
            "normal" => Some(KeySkew::Normal { stddev_frac: 0.125 }),
            _ => None,
        }
    }

    /// The bench-row label of the profile.
    pub fn label(&self) -> &'static str {
        match self {
            KeySkew::Uniform => "uniform",
            KeySkew::Zipfian { .. } => "zipfian",
            KeySkew::Normal { .. } => "normal",
        }
    }
}

/// A per-thread key stream: feed it the workload seed and the thread's
/// index, then call [`KeyPicker::next_key`] for each operation. The
/// sequence is a pure function of `(skew, num_keys, seed, thread)`.
#[derive(Debug, Clone, Copy)]
pub struct KeyPicker {
    skew: KeySkew,
    num_keys: usize,
    rng: SkewRng,
    /// Precomputed zipfian constants (`zetan`, `eta`, `alpha`); zero for
    /// the other profiles.
    zipf: (f64, f64, f64),
}

impl KeyPicker {
    /// A picker for `thread`'s stream of the `(skew, seed)` workload over
    /// keys `0..num_keys`.
    pub fn new(skew: KeySkew, num_keys: usize, seed: u64, thread: usize) -> Self {
        assert!(num_keys > 0, "need at least one key");
        // Decorrelate the thread streams by running the thread index
        // through the same mixer; thread 0 is not the raw seed stream.
        let mut mixer = SkewRng::new(seed ^ (thread as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        let stream_seed = mixer.next_u64();
        let zipf = match skew {
            KeySkew::Zipfian { theta } => {
                assert!(
                    theta > 0.0 && theta < 1.0,
                    "zipfian theta must be in (0, 1)"
                );
                let zetan: f64 = (1..=num_keys).map(|i| 1.0 / (i as f64).powf(theta)).sum();
                let zeta2: f64 = (1..=2.min(num_keys))
                    .map(|i| 1.0 / (i as f64).powf(theta))
                    .sum();
                let eta = (1.0 - (2.0 / num_keys as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                let alpha = 1.0 / (1.0 - theta);
                (zetan, eta, alpha)
            }
            _ => (0.0, 0.0, 0.0),
        };
        KeyPicker {
            skew,
            num_keys,
            rng: SkewRng::new(stream_seed),
            zipf,
        }
    }

    /// The next key of the stream.
    pub fn next_key(&mut self) -> u32 {
        let n = self.num_keys;
        let key = match self.skew {
            KeySkew::Uniform => (self.rng.next_u64() % n as u64) as usize,
            KeySkew::Zipfian { theta } => {
                // Gray et al.'s constant-time zipfian sampler, as used by
                // YCSB: ranks map to keys directly (key 0 hottest).
                let (zetan, eta, alpha) = self.zipf;
                let u = self.rng.next_f64();
                let uz = u * zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + 0.5f64.powf(theta) {
                    1.min(n - 1)
                } else {
                    let k = (n as f64 * (eta * u - eta + 1.0).powf(alpha)) as usize;
                    k.min(n - 1)
                }
            }
            KeySkew::Normal { stddev_frac } => {
                // Box–Muller, one variate per call (the second is
                // discarded to keep the stream a pure function of draw
                // count).
                let u1 = self.rng.next_f64().max(f64::MIN_POSITIVE);
                let u2 = self.rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let centre = n as f64 / 2.0;
                let sample = centre + z * stddev_frac * n as f64;
                (sample.round().clamp(0.0, (n - 1) as f64)) as usize
            }
        };
        key as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(skew: KeySkew, n: usize, seed: u64, thread: usize, count: usize) -> Vec<u32> {
        let mut p = KeyPicker::new(skew, n, seed, thread);
        (0..count).map(|_| p.next_key()).collect()
    }

    /// The determinism contract: the key sequence of a thread is a pure
    /// function of `(skew, num_keys, seed, thread)` — identical across
    /// separate instantiations (separate "runs") and unaffected by how
    /// many sibling threads exist or how the OS interleaves them.
    #[test]
    fn sequences_are_deterministic_across_runs_and_thread_counts() {
        for skew in [
            KeySkew::Uniform,
            KeySkew::Zipfian { theta: 0.99 },
            KeySkew::Normal { stddev_frac: 0.125 },
        ] {
            // Same (seed, thread) twice: identical sequence.
            assert_eq!(
                take(skew, 16, 42, 0, 256),
                take(skew, 16, 42, 0, 256),
                "{skew:?}: re-run must reproduce"
            );
            // Reference sequences computed serially...
            let serial: Vec<Vec<u32>> = (0..8).map(|t| take(skew, 16, 42, t, 256)).collect();
            // ...must match what real threads produce, for 4- and 8-thread
            // deployments alike (a thread's stream ignores the others).
            for threads in [4usize, 8] {
                let handles: Vec<_> = (0..threads)
                    .map(|t| std::thread::spawn(move || take(skew, 16, 42, t, 256)))
                    .collect();
                for (t, h) in handles.into_iter().enumerate() {
                    assert_eq!(
                        h.join().unwrap(),
                        serial[t],
                        "{skew:?}: thread {t} of {threads} diverged"
                    );
                }
            }
            // Different seeds and different threads give different streams.
            assert_ne!(take(skew, 16, 42, 0, 256), take(skew, 16, 43, 0, 256));
            assert_ne!(take(skew, 16, 42, 0, 256), take(skew, 16, 42, 1, 256));
        }
    }

    #[test]
    fn zipfian_favours_low_keys() {
        let keys = take(KeySkew::Zipfian { theta: 0.99 }, 64, 7, 0, 20_000);
        let mut counts = [0usize; 64];
        for k in &keys {
            counts[*k as usize] += 1;
        }
        assert!(
            counts[0] > counts[32] * 5,
            "rank 0 must dominate mid-range keys: {} vs {}",
            counts[0],
            counts[32]
        );
        assert!(keys.iter().all(|&k| k < 64), "keys stay in range");
    }

    #[test]
    fn normal_centres_mid_keyspace() {
        let keys = take(KeySkew::Normal { stddev_frac: 0.125 }, 64, 7, 0, 20_000);
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        assert!(
            (mean - 32.0).abs() < 2.0,
            "mean key ~ keyspace centre, got {mean}"
        );
        let lo = keys.iter().filter(|&&k| k < 8).count();
        assert!(
            lo < keys.len() / 20,
            "far tails must be rare, got {lo} of {}",
            keys.len()
        );
    }

    #[test]
    fn uniform_covers_the_keyspace_evenly() {
        let keys = take(KeySkew::Uniform, 16, 9, 0, 16_000);
        let mut counts = [0usize; 16];
        for k in &keys {
            counts[*k as usize] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "key {k} count {c} outside uniform band"
            );
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for name in ["uniform", "zipfian", "normal"] {
            assert_eq!(KeySkew::parse(name).unwrap().label(), name);
        }
        assert!(KeySkew::parse("bogus").is_none());
    }
}
