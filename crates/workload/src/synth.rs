//! Named, seed-replayable regression families discovered by `moc synth`.
//!
//! `crates/synth` enumerates the [`crate::arb`] history grammar, dedupes
//! isomorphic specimens, and hunts the boundary: legal-but-inadmissible
//! histories, configurations one conflict edge away from the Theorem 7
//! fast path, pruned-engine node-count maxima, and statically refutable
//! cycles. Every survivor of a pinned hunt lives here as a named family
//! so `moc synth --family NAME` (and the golden corpus under
//! `tests/fixtures/synth/`) replays it from nothing but a seed.
//!
//! Like the chaos registries, [`SynthFamily::ALL`] is append-only **per
//! hunt generation**: entries regenerate from `(seed, smoke_bounds())`,
//! so reordering or re-seeding silently changes every replay line and
//! fixture ever printed. New hunts append; they never reshuffle.

use moc_core::history::History;
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::MOpRecord;

use crate::arb::{self, HistoryBounds};

/// The bounded grammar every pinned family regenerates under — and the
/// grammar `moc synth --smoke` enumerates. Changing any field is a
/// corpus-breaking event (all seeds re-roll); bump the hunt instead of
/// editing in place.
pub fn smoke_bounds() -> HistoryBounds {
    HistoryBounds {
        processes: 4,
        mops_per_process: 2,
        objects: 4,
        max_span: 3,
        update_fraction: 0.7,
    }
}

/// The boundary category a synthesized family was selected for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthCategory {
    /// Legal w.r.t. the closed base relation, yet inadmissible — the
    /// checker had to exhaust a genuine search to refute it (D 4.7's
    /// NP-core: no polynomial certificate of either answer is evident).
    LegalInadmissible,
    /// The derived configuration misses the Theorem 7 fast path by
    /// exactly one uncovered conflict pair.
    OneEdgeFromFastPath,
    /// Maximal pruned-engine node count among all enumerated specimens
    /// of the same size — the search-hardest shapes the grammar found.
    NodePeak,
    /// Refuted without search by a `~H+` cycle (D 4.12): the polynomial
    /// refutation boundary, and the zero-search stress base.
    StaticCycle,
}

impl SynthCategory {
    /// Stable tag used in names, manifests and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            SynthCategory::LegalInadmissible => "lbi",
            SynthCategory::OneEdgeFromFastPath => "edge",
            SynthCategory::NodePeak => "peak",
            SynthCategory::StaticCycle => "cycle",
        }
    }
}

/// A pinned synthesis discovery: regenerates from its seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthFamily {
    /// Stable name (used in replay lines, fixtures and bench rows).
    pub name: &'static str,
    /// Why the hunt selected it.
    pub category: SynthCategory,
    /// Seed into [`arb::history_from_seed`] under [`smoke_bounds`].
    pub seed: u64,
}

impl SynthFamily {
    /// All pinned families, in hunt selection order. Append-only.
    pub const ALL: [SynthFamily; 12] = [
        SynthFamily {
            name: "lbi-0",
            category: SynthCategory::LegalInadmissible,
            seed: 135,
        },
        SynthFamily {
            name: "lbi-1",
            category: SynthCategory::LegalInadmissible,
            seed: 347,
        },
        SynthFamily {
            name: "lbi-2",
            category: SynthCategory::LegalInadmissible,
            seed: 360,
        },
        SynthFamily {
            name: "edge-0",
            category: SynthCategory::OneEdgeFromFastPath,
            seed: 6,
        },
        SynthFamily {
            name: "edge-1",
            category: SynthCategory::OneEdgeFromFastPath,
            seed: 12,
        },
        SynthFamily {
            name: "edge-2",
            category: SynthCategory::OneEdgeFromFastPath,
            seed: 14,
        },
        SynthFamily {
            name: "peak-0",
            category: SynthCategory::NodePeak,
            seed: 697,
        },
        SynthFamily {
            name: "peak-1",
            category: SynthCategory::NodePeak,
            seed: 507,
        },
        SynthFamily {
            name: "peak-2",
            category: SynthCategory::NodePeak,
            seed: 873,
        },
        SynthFamily {
            name: "peak-3",
            category: SynthCategory::NodePeak,
            seed: 705,
        },
        SynthFamily {
            name: "cycle-0",
            category: SynthCategory::StaticCycle,
            seed: 5,
        },
        SynthFamily {
            name: "cycle-1",
            category: SynthCategory::StaticCycle,
            seed: 7,
        },
    ];

    /// Looks a family up by name.
    pub fn by_name(name: &str) -> Option<SynthFamily> {
        SynthFamily::ALL.into_iter().find(|f| f.name == name)
    }

    /// Regenerates the family's history from its seed.
    pub fn history(&self) -> History {
        arb::history_from_seed(self.seed, &smoke_bounds())
    }

    /// The command line that replays this family.
    pub fn replay_line(&self) -> String {
        format!("moc synth --family {}", self.name)
    }
}

/// `copies` disjoint translates of `h`: copy `c` lives on objects
/// `[c·m, (c+1)·m)` and processes `[c·P, (c+1)·P)` where `m`/`P` are the
/// base history's object/process counts. Used to scale a discovered
/// boundary specimen into a checker stress row: interaction components
/// multiply while per-component structure is pinned by the seed.
pub fn tiled(h: &History, copies: usize) -> History {
    let m = h.num_objects();
    let procs = h
        .records()
        .iter()
        .map(|r| r.id.process.index() + 1)
        .max()
        .unwrap_or(1);
    let translate_id = |id: MOpId, c: usize| {
        MOpId::new(
            ProcessId::new((id.process.index() + c * procs) as u32),
            id.seq,
        )
    };
    let mut records = Vec::with_capacity(h.len() * copies);
    for c in 0..copies {
        for r in h.records() {
            let mut rec: MOpRecord = r.clone();
            rec.id = translate_id(r.id, c);
            rec.label = format!("c{c}{}", r.label);
            for op in &mut rec.ops {
                op.object = moc_core::ids::ObjectId::new((op.object.index() + c * m) as u32);
                if op.writer != MOpId::INITIAL {
                    op.writer = translate_id(op.writer, c);
                }
            }
            records.push(rec);
        }
    }
    History::new(m * copies, records).expect("disjoint translation preserves well-formedness")
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_checker::conditions::{check, Condition, Strategy};

    #[test]
    fn names_are_unique_and_round_trip() {
        for f in SynthFamily::ALL {
            assert_eq!(SynthFamily::by_name(f.name), Some(f));
            assert!(f.replay_line().contains(f.name));
        }
        let mut names: Vec<_> = SynthFamily::ALL.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SynthFamily::ALL.len());
    }

    #[test]
    fn families_regenerate_deterministically() {
        for f in SynthFamily::ALL {
            assert_eq!(f.history().records(), f.history().records());
        }
    }

    #[test]
    fn tiling_multiplies_disjoint_components() {
        let base = SynthFamily::by_name("lbi-0").unwrap().history();
        let t = tiled(&base, 3);
        assert_eq!(t.len(), base.len() * 3);
        assert_eq!(t.num_objects(), base.num_objects() * 3);
        // The tile preserves the verdict in every copy: an inadmissible
        // base stays inadmissible, and copies do not interfere.
        let br = check(&base, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        let tr = check(&t, Condition::MSequentialConsistency, Strategy::Auto).unwrap();
        assert_eq!(br.satisfied, tr.satisfied);
    }
}
