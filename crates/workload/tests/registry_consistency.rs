//! Consistency of every named-family registry in the crate: the fault
//! families (original + leader-crash), the workload-shape families and
//! the synthesized boundary families. A replay line printed by any
//! sweep or by `moc synth` is only as good as these invariants — names
//! must round-trip through `by_name`, and regeneration from the name
//! (plus a seed where one applies) must be deterministic.

use moc_workload::chaos::{FaultFamily, WorkloadFamily};
use moc_workload::synth::SynthFamily;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fault_families() -> impl Iterator<Item = FaultFamily> {
    FaultFamily::ALL
        .into_iter()
        .chain(FaultFamily::LEADER_CRASH)
}

#[test]
fn fault_family_names_are_unique_and_round_trip() {
    let mut names: Vec<&str> = fault_families().map(|f| f.name()).collect();
    for f in fault_families() {
        assert_eq!(FaultFamily::by_name(f.name()), Some(f));
    }
    assert!(FaultFamily::by_name("no-such-family").is_none());
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), fault_families().count());
}

#[test]
fn fault_family_plans_are_deterministic() {
    // The plan is a pure function of (family, n, horizon): two
    // instantiations must be equal, and scale with the horizon only
    // through scheduled-event placement — never by losing recoverability.
    for f in fault_families() {
        for &(n, h) in &[(3usize, 500_000u64), (4, 1_000_000), (7, 123_457)] {
            assert_eq!(f.plan(n, h), f.plan(n, h), "{}", f.name());
        }
    }
}

#[test]
fn workload_family_names_are_unique_and_round_trip() {
    let mut names: Vec<&str> = WorkloadFamily::ALL.iter().map(|f| f.name()).collect();
    for f in WorkloadFamily::ALL {
        assert_eq!(WorkloadFamily::by_name(f.name()), Some(f));
    }
    assert!(WorkloadFamily::by_name("no-such-family").is_none());
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), WorkloadFamily::ALL.len());
}

#[test]
fn workload_family_scripts_are_seed_deterministic() {
    // `ClientScript` carries no PartialEq; the Debug rendering is a
    // faithful structural view, so equality of renderings is equality
    // of generated workloads.
    for f in WorkloadFamily::ALL {
        let spec = f.spec(3, 4);
        for seed in [0u64, 7, 99] {
            let a = moc_workload::scripts(&spec, &mut StdRng::seed_from_u64(seed));
            let b = moc_workload::scripts(&spec, &mut StdRng::seed_from_u64(seed));
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{} seed {seed}",
                f.name()
            );
        }
        // The family honours its declared shape: one script per process,
        // each issuing the requested number of m-operations.
        let scripts = moc_workload::scripts(&spec, &mut StdRng::seed_from_u64(1));
        assert_eq!(scripts.len(), spec.processes, "{}", f.name());
        for s in &scripts {
            assert_eq!(s.ops.len(), spec.ops_per_process, "{}", f.name());
        }
    }
}

#[test]
fn synth_family_names_are_unique_and_round_trip() {
    let mut names: Vec<&str> = SynthFamily::ALL.iter().map(|f| f.name).collect();
    for f in SynthFamily::ALL {
        assert_eq!(SynthFamily::by_name(f.name), Some(f));
        assert!(
            f.replay_line().contains(f.name),
            "replay line names the family"
        );
        assert!(f.replay_line().starts_with("moc synth --family "));
    }
    assert!(SynthFamily::by_name("no-such-family").is_none());
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), SynthFamily::ALL.len());
}

#[test]
fn synth_families_regenerate_deterministically_and_well_formed() {
    for f in SynthFamily::ALL {
        let a = f.history();
        let b = f.history();
        assert_eq!(a.records(), b.records(), "{}", f.name);
        assert!(!a.records().is_empty(), "{}", f.name);
    }
}
