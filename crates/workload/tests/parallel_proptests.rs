//! Thread-count determinism across the workload families.
//!
//! The parallel engine promises that `SearchLimits::threads` is invisible
//! in every observable output: for each generator family and each of the
//! three conditions, running the certified checker at 1, 2, 4 and 8
//! threads must produce
//!
//! * the identical verdict,
//! * the identical canonical witness (smallest branch index wins,
//!   regardless of which worker found a witness first),
//! * a byte-identical certificate — modulo the `"threads"` run-metadata
//!   field of exhaustion proofs, which records the count actually used
//!   and is masked before comparing, and
//! * a certificate the *independent* auditor (`moc-audit`, which imports
//!   only `moc-core`) accepts.
//!
//! Sequential (`threads == 1`) output is the reference; any divergence at
//! a higher thread count is a cancellation or fold-order bug.

use moc_checker::certificate::check_certified;
use moc_checker::conditions::Condition;
use moc_checker::SearchLimits;
use moc_core::history::History;
use moc_workload::histories::{
    concurrent_writers_history, multi_component_history, poisoned_multi_component_history,
    random_history, serial_history, HistorySpec,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [2, 4, 8];

/// Replaces the exhaustion proof's recorded thread count (run metadata,
/// intentionally thread-dependent) with a fixed value so the rest of the
/// certificate can be compared byte for byte.
fn mask_threads(cert_text: &str) -> String {
    let Some(start) = cert_text.find("\"threads\":") else {
        return cert_text.to_string();
    };
    let digits_at = start + "\"threads\":".len();
    let end = cert_text[digits_at..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(cert_text.len(), |i| digits_at + i);
    format!("{}\"threads\":0{}", &cert_text[..start], &cert_text[end..])
}

const CONDITIONS: [Condition; 3] = [
    Condition::MSequentialConsistency,
    Condition::MNormality,
    Condition::MLinearizability,
];

/// One history from each generator family, seeded deterministically.
fn families(seed: u64) -> Vec<(&'static str, History)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = HistorySpec {
        processes: 3,
        ops_per_process: 3,
        num_objects: 3,
        update_fraction: 0.5,
        max_span: 2,
    };
    vec![
        ("serial", serial_history(&spec, &mut rng)),
        ("random", random_history(&spec, &mut rng)),
        ("writers", concurrent_writers_history(2, 2, &mut rng)),
        ("multi", multi_component_history(2, 2, 2, &mut rng)),
        (
            "poisoned",
            poisoned_multi_component_history(2, 2, 2, &mut rng),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn thread_count_is_invisible_in_all_outputs(seed in any::<u64>()) {
        for (family, h) in families(seed) {
            for condition in CONDITIONS {
                let base = SearchLimits::with_max_nodes(300_000);
                let reference = check_certified(&h, condition, base);

                // The sequential run is the reference; budget exhaustion
                // surfaces as Err and must reproduce identically too.
                let (ref_report, ref_text) = match &reference {
                    Ok((report, cert)) => (Some(report), Some(cert.to_text())),
                    Err(_) => (None, None),
                };

                if let (Some(report), Some(text)) = (&ref_report, &ref_text) {
                    let verdict = moc_audit::audit(&h, text).unwrap_or_else(|e| {
                        panic!("{family}/{condition}: sequential cert rejected: {e}")
                    });
                    if report.satisfied {
                        prop_assert!(verdict.is_verified(), "{family}/{condition}");
                    }
                }

                for threads in THREADS {
                    let limits = base.with_threads(threads);
                    let run = check_certified(&h, condition, limits);
                    match (&reference, &run) {
                        (Ok((r0, c0)), Ok((r1, c1))) => {
                            prop_assert_eq!(
                                r0.satisfied, r1.satisfied,
                                "{}/{} verdict differs at {} threads",
                                family, condition, threads
                            );
                            prop_assert_eq!(
                                &r0.witness, &r1.witness,
                                "{}/{} canonical witness differs at {} threads",
                                family, condition, threads
                            );
                            let t1 = c1.to_text();
                            prop_assert_eq!(
                                mask_threads(&c0.to_text()), mask_threads(&t1),
                                "{}/{} certificate differs at {} threads",
                                family, condition, threads
                            );
                            let verdict = moc_audit::audit(&h, &t1).unwrap_or_else(|e| {
                                panic!(
                                    "{family}/{condition}@{threads}: cert rejected: {e}"
                                )
                            });
                            if r1.satisfied {
                                prop_assert!(
                                    verdict.is_verified(),
                                    "{}/{} at {} threads",
                                    family, condition, threads
                                );
                            }
                        }
                        (Err(_), Err(_)) => {}
                        _ => prop_assert!(
                            false,
                            "{}/{} limit behaviour differs at {} threads",
                            family, condition, threads
                        ),
                    }
                }
            }
        }
    }
}
