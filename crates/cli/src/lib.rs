//! # moc-cli
//!
//! The `moc` command-line tool. Histories travel in the text format of
//! [`moc_core::codec`], so workflows compose through pipes:
//!
//! ```console
//! $ moc run --protocol msc --processes 4 --ops 6 > history.txt
//! $ moc check history.txt --condition sc
//! m-sequential consistency: SATISFIED (fast path, WW-constraint)
//! $ moc check history.txt --condition lin
//! m-linearizability: VIOLATED — no legal sequential extension exists
//! $ moc render history.txt
//! ```
//!
//! Commands are implemented as library functions returning their output,
//! so they are unit-testable; `src/bin/moc.rs` is a thin wrapper.

use std::collections::HashMap;

use moc_analyze::Severity;
use moc_checker::admissible::SearchLimits;
use moc_checker::causal::check_m_causal;
use moc_checker::certificate::check_certified;
use moc_checker::conditions::{check, Condition, Strategy};
use moc_core::codec::{from_text, to_text};
use moc_core::history::History;
use moc_core::render::{render_listing, render_timeline};
use moc_protocol::{
    run_cluster, AggregateOverSequencer, ClusterConfig, MlinOverSequencer, MlinOverView,
    MscOverSequencer, MscOverView,
};
use moc_sim::{DelayModel, NetworkConfig};
use moc_workload::histories::{
    concurrent_writers_history, random_history, serial_history, HistorySpec,
};
use moc_workload::{scripts, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A parsed command line: positional arguments and `--key value` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (flags map to `"true"`).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (excluding program name and subcommand).
    /// Options that look like `--flag` followed by another option or
    /// nothing are treated as boolean flags.
    pub fn parse(raw: &[String]) -> Args {
        let mut args = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(key) = a.strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--"));
                match value {
                    Some(v) => {
                        args.options.insert(key.to_string(), v.clone());
                        i += 2;
                    }
                    None => {
                        args.options.insert(key.to_string(), "true".into());
                        i += 1;
                    }
                }
            } else {
                args.positional.push(a.clone());
                i += 1;
            }
        }
        args
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} needs a number")),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} needs a number")),
        }
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} needs a number")),
        }
    }

    fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

/// Usage text for `moc help`.
pub const USAGE: &str = "\
moc — multi-object operation histories: generate, run, render, check

USAGE:
  moc run    [--protocol msc|mlin|aggregate] [--processes N] [--ops K]
             [--objects M] [--seed S] [--update-frac F]
      Run a simulated cluster workload; print its history.
  moc gen    [--kind serial|random|writers] [--processes N] [--ops K]
             [--objects M] [--seed S] [--update-frac F] [--k K]
      Generate a synthetic history; print it.
  moc check  <file|-> [--condition sc|lin|normal|causal] [--brute]
             [--max-nodes N] [--threads N|auto] [--witness] [--minimize]
             [--certificate PATH|-]
      Check a history against a consistency condition. --max-nodes caps
      the search's node budget (default 5000000); --threads fans the
      component/branch search out across N workers (default auto: 1 below
      32 m-operations, else the machine's cores capped at 8) — verdicts,
      witnesses and certificates are identical at every thread count,
      modulo the recorded thread count in exhaustion proofs. The output
      ends with a replay line echoing the resolved search flags.
      With --minimize, a violating history is shrunk to its 1-minimal core
      and printed. With --certificate, the verdict's moc-cert proof
      document is written to PATH (or printed with `-`); see
      docs/CERTIFICATES.md and docs/CHECKER-PERF.md.
  moc audit  <history-file|-> <cert-file>
      Independently re-validate a moc-cert certificate against a history:
      replay the witness, or check the ~H+ refutation cycle edge by edge.
  moc audit  <cert-file|-> --programs demo|disjoint|protocol|
             shardable|hub [--shards N]
      Re-validate a program-set certificate against the named workload,
      dispatching on its format tag. moc-shard-cert: fingerprint binding,
      partition well-formedness, footprint closure, cross-shard edge
      coverage (a dropped or fabricated edge rejects) and the composition
      verdict. moc-commute-cert: fingerprint binding, footprint bounds,
      full matrix recomputation (a fabricated or dropped commutation
      rejects) and every mover class re-derived.
  moc commute [--workload demo|disjoint|protocol|shardable|hub]
             [--format human|json] [--max-shard-size N] [--shards N]
             [--objects M] [--certificate PATH|-] [--require-progress]
      Run the commutativity & mover pass: derive the pairwise commutation
      matrix from the refined may/must footprints, classify every program
      read-only / left- / right- / both- / non-mover (Lipton), lint the
      configuration (MOC0012 all-pairs-conflict, MOC0013 read-only in
      global order, MOC0014 commuting pair straddles shards) and emit a
      versioned moc-commute-cert document (re-validatable with
      `moc audit --programs`). --require-progress exits 1 when no
      distinct pair commutes (MOC0012 territory: nothing for the
      symmetry-pruned checker or the delivery fast path to exploit).
      See docs/ANALYZER.md.
  moc chaos  [--protocol msc|mlin|both] [--abcast fixed|view]
             [--faults none|lossy|lossy-dup|partition|crash|storm|
             leader-crash-quiet|leader-crash-burst|leader-crash-repeat|
             all|leader-crash|LIST] [--workloads mixed|read-heavy|
             write-heavy|hot-spot|all|LIST] [--seeds N] [--seed-base S]
             [--processes N] [--ops K] [--objects M] [--sabotage]
             [--batch N] [--batch-delay-us U]
      Sweep seeds × fault plans × workloads through the protocols on the
      fault-injecting simulator (reliable-link sublayer on the wire),
      checking every run's history with a certificate and re-validating
      each certificate with the independent auditor. Failing runs print a
      replay command. --abcast picks the total-order layer: the fixed
      sequencer or the view-based failover broadcast (the only one that
      survives the leader-crash fault families; under `fixed` those
      families are a negative control and must FAIL detectably, never
      hang). `--faults all` keeps its historical meaning (the six
      original families); `leader-crash` selects the three coordinator-
      crash families. With --sabotage the link's dedup/retransmission are
      disabled and the sweep must instead find an audited refutation.
      --batch N turns on group-commit stamping in the ordering layer
      (N submissions per ordering frame, partial batches flushed after
      --batch-delay-us, default 100): the sweep must stay just as clean,
      and the consolidated transport/runtime counter block printed after
      the sweep shows the frames it saved. See docs/CHAOS.md and
      docs/RUNTIME-PERF.md.
  moc load   [--mode closed|open] [--clients N] [--ops K] [--objects M]
             [--skew uniform|zipfian|normal] [--update-frac F] [--seed S]
             [--batch N] [--batch-delay-us U] [--window W]
             [--interval-us U]
      Drive a live thread-per-process cluster (Figure 4 protocol over
      the sequencer broadcast) with N client threads released from one
      barrier: closed loop (next op as soon as the pipeline window
      admits it) or open loop (one op per --interval-us, default 100).
      Keys come from the named seed-deterministic skew stream; --batch
      enables group-commit stamping and --window > 1 enables client
      pipelining. Prints the throughput/latency row and the same
      consolidated transport/runtime counter block as `moc chaos`.
      Exits 1 if any reply was dropped. See docs/RUNTIME-PERF.md.
  moc monitor <file|-> [--condition sc|lin|normal] [--window N]
             [--max-live-nodes N] [--tiles K] [--sabotage]
      Replay a history through the streaming consistency sentinel as a
      live event stream: incremental window checks at quiescence points,
      a rolling certificate per window (each one self-audited on the
      spot), retirement of settled prefixes, and a hard bound on live
      state — crossing --max-live-nodes force-drops the oldest live
      records and reports Degraded instead of growing without bound
      (the peak-vs-cap self-check exits 1 if the bound ever slipped).
      --tiles K stretches the stream K-fold (object/time-shifted copies)
      to exercise bounded memory on long streams. --sabotage splices an
      inadmissible store-buffering gadget mid-stream as a negative
      control: the sentinel must latch it (exit 0 on detection, 1 on a
      miss). See docs/MONITOR.md.
  moc synth  [--smoke] [--seeds N] [--seed-base S] [--max-nodes N]
             [--out DIR] [--verify DIR] [--list] [--family NAME]
      Grammar-driven adversarial synthesis: enumerate the shared
      moc-workload history grammar, dedupe isomorphic candidates
      (Weisfeiler–Leman canonicalization over the commute/conflict
      structure), classify each through the analyzer and the certified
      checker, and select boundary specimens — legal-but-inadmissible
      histories, configurations one conflict edge from the Theorem 7
      fast path, pruned-engine node maxima and static ~H+ cycles.
      --smoke runs the pinned corpus grammar (256 seeds, bounded);
      --out writes the survivors as a golden corpus (manifest, history
      files, certificates); --verify re-hunts and diffs against a
      checked-in corpus, exiting 1 on any drift; --list prints the
      pinned registry families; --family NAME prints one pinned
      family's history (the replay entry point). See docs/SYNTH.md.
  moc render <file|-> [--width N]
      Draw the history as per-process timelines plus a listing.
  moc analyze [--workload demo|disjoint|protocol|shardable|hub]
             [--format human|json] [--require oo,ww,wo] [--processes N]
             [--ops K] [--objects M] [--seed S] [--update-frac F]
             [--shards N]
      Statically analyze a workload's program set: lints, refined
      read/write sets, conflict graph and constraint certificates.
  moc shard  [--workload demo|disjoint|protocol|shardable|hub]
             [--format human|json] [--max-shard-size N] [--shards N]
             [--require-composition oo,ww,wo] [--certificate PATH|-]
             [--objects M]
      Run the shardability pass: partition the object universe along the
      static conflict graph, enumerate every cross-shard conflict edge,
      and emit a versioned moc-shard-cert document (re-validatable with
      `moc audit --programs`). --max-shard-size splits oversized
      components (greedy min-cut, at the cost of straddling programs);
      --require-composition exits 1 unless the named constraint classes
      stay enforced under per-shard sequencing. See docs/ANALYZER.md.
  moc help
      Print this text.

EXIT CODES:
  0  clean (no Error-severity findings; certificate valid; chaos sweep
     passed; sentinel healthy — or, under --sabotage, the planted
     violation was caught)
  1  the analysis report contains Error-severity findings, the audited
     certificate was rejected, the chaos sweep failed, or the sentinel
     latched a violation / overran its live-node bound (under
     --sabotage: the planted violation was missed)
  2  invalid input or usage

Histories use the `history v1` text format (moc_core::codec).";

/// Dispatches a full command line (without the program name).
///
/// # Errors
///
/// Returns a user-facing error message.
pub fn dispatch(raw: &[String], stdin: &str) -> Result<String, String> {
    dispatch_with_status(raw, stdin).0
}

/// Like [`dispatch`], but also returns the process exit code per the
/// contract in [`USAGE`]: `0` clean, `1` the report contains
/// Error-severity findings, `2` invalid input or usage. `Err` always
/// pairs with `2`.
pub fn dispatch_with_status(raw: &[String], stdin: &str) -> (Result<String, String>, i32) {
    let Some(cmd) = raw.first() else {
        return (Ok(USAGE.to_string()), 0);
    };
    let args = Args::parse(&raw[1..]);
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "gen" => cmd_gen(&args),
        "check" => cmd_check(&args, stdin),
        "render" => cmd_render(&args, stdin),
        "analyze" => match cmd_analyze(&args) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "audit" => match cmd_audit(&args, stdin) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "shard" => match cmd_shard(&args) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "commute" => match cmd_commute(&args) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "chaos" => match cmd_chaos(&args) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "load" => match cmd_load(&args) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "monitor" => match cmd_monitor(&args, stdin) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "synth" => match cmd_synth(&args) {
            Ok((out, code)) => return (Ok(out), code),
            Err(e) => Err(e),
        },
        "help" | "--help" | "-h" => return (Ok(USAGE.to_string()), 0),
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    let code = if result.is_ok() { 0 } else { 2 };
    (result, code)
}

fn load_history(args: &Args, stdin: &str) -> Result<History, String> {
    let source = args
        .positional
        .first()
        .ok_or("expected a history file (or `-` for stdin)")?;
    let text = if source == "-" {
        stdin.to_string()
    } else {
        std::fs::read_to_string(source).map_err(|e| format!("cannot read {source}: {e}"))?
    };
    from_text(&text).map_err(|e| format!("cannot parse {source}: {e}"))
}

fn cmd_run(args: &Args) -> Result<String, String> {
    let processes = args.get_usize("processes", 3)?;
    let ops = args.get_usize("ops", 5)?;
    let objects = args.get_usize("objects", 4)?;
    let seed = args.get_u64("seed", 0)?;
    let update_fraction = args.get_f64("update-frac", 0.5)?;
    let spec = WorkloadSpec {
        processes,
        ops_per_process: ops,
        num_objects: objects,
        update_fraction,
        ..WorkloadSpec::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let s = scripts(&spec, &mut rng);
    let config = ClusterConfig::new(objects, seed).with_network(NetworkConfig::with_delay(
        DelayModel::Uniform {
            lo: 100,
            hi: 20_000,
        },
    ));
    let protocol = args
        .options
        .get("protocol")
        .map(String::as_str)
        .unwrap_or("mlin");
    let history = match protocol {
        "msc" => run_cluster::<MscOverSequencer>(&config, s).history,
        "mlin" => run_cluster::<MlinOverSequencer>(&config, s).history,
        "aggregate" => run_cluster::<AggregateOverSequencer>(&config, s).history,
        other => return Err(format!("unknown protocol {other:?} (msc|mlin|aggregate)")),
    };
    Ok(to_text(&history))
}

fn cmd_gen(args: &Args) -> Result<String, String> {
    let seed = args.get_u64("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let kind = args
        .options
        .get("kind")
        .map(String::as_str)
        .unwrap_or("serial");
    let spec = HistorySpec {
        processes: args.get_usize("processes", 3)?,
        ops_per_process: args.get_usize("ops", 4)?,
        num_objects: args.get_usize("objects", 4)?,
        update_fraction: args.get_f64("update-frac", 0.5)?,
        max_span: 2,
    };
    let h = match kind {
        "serial" => serial_history(&spec, &mut rng),
        "random" => random_history(&spec, &mut rng),
        "writers" => {
            let k = args.get_usize("k", 3)?;
            concurrent_writers_history(k, spec.num_objects, &mut rng)
        }
        other => return Err(format!("unknown kind {other:?} (serial|random|writers)")),
    };
    Ok(to_text(&h))
}

fn cmd_check(args: &Args, stdin: &str) -> Result<String, String> {
    let h = load_history(args, stdin)?;
    let max_nodes = args.get_u64("max-nodes", 5_000_000)?;
    let threads = match args.options.get("threads").map(String::as_str) {
        // Auto (the default): small histories search single-threaded,
        // larger ones fan out across the machine's cores (capped). The
        // replay line echoes the resolved numeric count.
        None | Some("auto") => moc_checker::auto_threads(h.len()),
        Some(raw) => {
            let threads: usize = raw.parse().map_err(|_| {
                format!("--threads must be a positive integer or \"auto\", got {raw:?}")
            })?;
            if threads == 0 {
                return Err("--threads must be at least 1".into());
            }
            threads
        }
    };
    let limits = SearchLimits::with_max_nodes(max_nodes).with_threads(threads);
    let condition_name = args
        .options
        .get("condition")
        .map(String::as_str)
        .unwrap_or("lin");
    let source = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "-".into());
    let replay = format!(
        "replay: moc check {source} --condition {condition_name}{} --threads {threads} --max-nodes {max_nodes}\n",
        if args.flag("brute") { " --brute" } else { "" },
    );

    if condition_name == "causal" {
        let report = check_m_causal(&h, limits).map_err(|e| e.to_string())?;
        let mut out = format!(
            "m-causal consistency: {} ({} m-operations, {} nodes explored)\n",
            if report.satisfied {
                "SATISFIED"
            } else {
                "VIOLATED"
            },
            h.len(),
            report.stats.nodes
        );
        for (p, w) in &report.per_process {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "  {p}: {}\n",
                    if w.is_some() {
                        "serializes"
                    } else {
                        "NO serialization"
                    }
                ),
            );
        }
        out.push_str(&replay);
        return Ok(out);
    }

    let condition = match condition_name {
        "sc" => Condition::MSequentialConsistency,
        "lin" => Condition::MLinearizability,
        "normal" => Condition::MNormality,
        other => {
            return Err(format!(
                "unknown condition {other:?} (sc|lin|normal|causal)"
            ))
        }
    };
    let strategy = if args.flag("brute") {
        Strategy::BruteForce(limits)
    } else {
        Strategy::Auto
    };
    let mut cert_text = None;
    let report = match args.options.get("certificate") {
        // Proof-producing route: always decides via the precedence graph.
        Some(dest) => {
            let (report, cert) =
                check_certified(&h, condition, limits).map_err(|e| e.to_string())?;
            let text = cert.to_text();
            if dest == "-" {
                cert_text = Some(text);
            } else {
                std::fs::write(dest, text + "\n")
                    .map_err(|e| format!("cannot write {dest}: {e}"))?;
            }
            report
        }
        None => check(&h, condition, strategy).map_err(|e| e.to_string())?,
    };
    let mut out = format!(
        "{condition}: {}",
        if report.satisfied {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    );
    match report.strategy_used {
        moc_checker::conditions::StrategyUsed::BruteForce => {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(" (search, {} nodes)", report.stats.nodes),
            );
        }
        moc_checker::conditions::StrategyUsed::Constraint(c) => {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!(" (fast path, {c})"));
        }
    }
    out.push('\n');
    if let Some(reason) = &report.reason {
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("reason: {reason}\n"));
    }
    if !report.satisfied && args.flag("minimize") {
        match moc_checker::minimize::minimize_violation(&h, condition, limits) {
            Ok(min) => {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(
                        "minimized to {} m-operations ({} removed, {} checks):\n{}",
                        min.history.len(),
                        min.removed,
                        min.checks,
                        to_text(&min.history)
                    ),
                );
            }
            Err(e) => {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!("minimization failed: {e}\n"),
                );
            }
        }
    }
    if args.flag("witness") {
        if let Some(w) = &report.witness {
            let names: Vec<String> = w.iter().map(|&i| h.record(i).id.to_string()).collect();
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("witness: {}\n", names.join(" ")),
            );
        }
    }
    out.push_str(&replay);
    if let Some(text) = cert_text {
        out.push_str(&text);
        out.push('\n');
    }
    Ok(out)
}

/// Resolves a named workload to its program set (shared by `analyze`,
/// `shard` and the shard-certificate mode of `audit`, so all three see
/// one source of truth).
fn workload_programs(
    args: &Args,
    workload: &str,
) -> Result<Vec<std::sync::Arc<moc_core::program::Program>>, String> {
    match workload {
        "demo" => Ok(moc_workload::demo_programs()),
        "disjoint" => Ok(moc_workload::disjoint_programs()),
        "shardable" => Ok(moc_workload::shardable_programs(
            args.get_usize("shards", 2)?,
        )),
        "hub" => Ok(moc_workload::hub_programs()),
        "protocol" => {
            // The program set a `moc run` with the same options would
            // actually issue (one representative per program name).
            let spec = WorkloadSpec {
                processes: args.get_usize("processes", 3)?,
                ops_per_process: args.get_usize("ops", 5)?,
                num_objects: args.get_usize("objects", 4)?,
                update_fraction: args.get_f64("update-frac", 0.5)?,
                ..WorkloadSpec::default()
            };
            let mut rng = StdRng::seed_from_u64(args.get_u64("seed", 0)?);
            let mut seen = std::collections::BTreeSet::new();
            Ok(scripts(&spec, &mut rng)
                .into_iter()
                .flat_map(|s| s.ops)
                .filter(|op| seen.insert(op.program.name().to_string()))
                .map(|op| op.program)
                .collect())
        }
        other => Err(format!(
            "unknown workload {other:?} (demo|disjoint|protocol|shardable|hub)"
        )),
    }
}

fn cmd_audit(args: &Args, stdin: &str) -> Result<(String, i32), String> {
    // Program-set certificate mode: `moc audit <cert-file|-> --programs
    // <workload>` re-validates a moc-shard-cert or moc-commute-cert
    // document (dispatched on its format tag) against the named
    // workload's program set (no history involved).
    if let Some(workload) = args.options.get("programs").cloned() {
        let cert_path = args
            .positional
            .first()
            .ok_or("expected a certificate file (or `-` for stdin)")?;
        let cert_text = if cert_path == "-" {
            stdin.to_string()
        } else {
            std::fs::read_to_string(cert_path)
                .map_err(|e| format!("cannot read {cert_path}: {e}"))?
        };
        let programs = workload_programs(args, &workload)?;
        let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
        let format = moc_core::json::parse(&cert_text)
            .map_err(|e| format!("cannot parse {cert_path}: {e}"))?
            .get("format")
            .and_then(moc_core::json::Json::as_str)
            .map(str::to_string)
            .ok_or("certificate has no \"format\" tag")?;
        return match format.as_str() {
            "moc-shard-cert" => match moc_audit::audit_shard(&refs, &cert_text) {
                Ok(v) => Ok((
                    format!(
                        "shard certificate VALID: {} shard(s), {}/{} single-shard program(s), \
                         {} cross-shard edge(s){}\n",
                        v.num_shards,
                        v.single_shard_programs,
                        refs.len(),
                        v.cross_edges,
                        if v.refined_attested {
                            "; refined footprints attested"
                        } else {
                            ""
                        }
                    ),
                    0,
                )),
                Err(reason) => Ok((format!("shard certificate REJECTED: {reason}\n"), 1)),
            },
            "moc-commute-cert" => match moc_audit::audit_commute(&refs, &cert_text) {
                Ok(v) => Ok((
                    format!(
                        "commute certificate VALID: {} program(s), {} commuting pair(s), \
                         {} read-only, {} non-mover(s){}\n",
                        v.num_programs,
                        v.commuting_pairs,
                        v.read_only,
                        v.non_movers,
                        if v.refined_attested {
                            "; refined footprints attested"
                        } else {
                            ""
                        }
                    ),
                    0,
                )),
                Err(reason) => Ok((format!("commute certificate REJECTED: {reason}\n"), 1)),
            },
            other => Err(format!(
                "unknown certificate format {other:?} (moc-shard-cert|moc-commute-cert)"
            )),
        };
    }
    let h = load_history(args, stdin)?;
    let cert_path = args
        .positional
        .get(1)
        .ok_or("expected a certificate file (or `-` for stdin)")?;
    let cert_text = if cert_path == "-" {
        if args.positional.first().map(String::as_str) == Some("-") {
            return Err("only one of history and certificate may come from stdin".into());
        }
        stdin.to_string()
    } else {
        std::fs::read_to_string(cert_path).map_err(|e| format!("cannot read {cert_path}: {e}"))?
    };
    match moc_audit::audit(&h, &cert_text) {
        Ok(verdict) => {
            let what = match verdict {
                moc_audit::Verdict::WitnessVerified => {
                    "witness linearization replayed and legality trace matched"
                }
                moc_audit::Verdict::CycleVerified => "~H+ refutation cycle checked edge by edge",
                moc_audit::Verdict::ExhaustionAttested {
                    memo_limited: false,
                } => "exhaustion attestation well-formed and bound (not replayable)",
                moc_audit::Verdict::ExhaustionAttested { memo_limited: true } => {
                    "exhaustion attestation well-formed and bound (not replayable); \
                     the transposition table saturated, so the node budget may reflect \
                     re-exploration rather than state-space size"
                }
            };
            Ok((format!("certificate VALID: {what}\n"), 0))
        }
        Err(reason) => Ok((format!("certificate REJECTED: {reason}\n"), 1)),
    }
}

fn cmd_analyze(args: &Args) -> Result<(String, i32), String> {
    let workload = args
        .options
        .get("workload")
        .map(String::as_str)
        .unwrap_or("demo");
    let programs = workload_programs(args, workload)?;
    let mut required = Vec::new();
    if let Some(list) = args.options.get("require") {
        for tok in list.split(',') {
            required.push(match tok.trim() {
                "oo" => moc_core::constraints::Constraint::Oo,
                "ww" => moc_core::constraints::Constraint::Ww,
                "wo" => moc_core::constraints::Constraint::Wo,
                other => return Err(format!("unknown constraint {other:?} (oo|ww|wo)")),
            });
        }
    }
    let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
    let set = moc_analyze::analyze_set(&refs, &required);
    let code = match moc_analyze::max_severity(&set.all_findings()) {
        Some(Severity::Error) => 1,
        _ => 0,
    };
    let out = match args
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("human")
    {
        "human" => set.render_human(),
        "json" => {
            let mut j = set.render_json();
            j.push('\n');
            j
        }
        other => return Err(format!("unknown format {other:?} (human|json)")),
    };
    Ok((out, code))
}

fn cmd_shard(args: &Args) -> Result<(String, i32), String> {
    let workload = args
        .options
        .get("workload")
        .map(String::as_str)
        .unwrap_or("demo");
    let programs = workload_programs(args, workload)?;
    let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
    let opts = moc_analyze::ShardOptions {
        max_shard_size: match args.get_usize("max-shard-size", 0)? {
            0 => None,
            n => Some(n),
        },
    };
    let objects = args.get_usize("objects", 0)?;
    let analysis = moc_analyze::shard_set(&refs, objects, opts);

    let mut code = match moc_analyze::max_severity(&analysis.all_findings()) {
        Some(Severity::Error) => 1,
        _ => 0,
    };
    let mut unenforced = Vec::new();
    if let Some(list) = args.options.get("require-composition") {
        for tok in list.split(',') {
            let tok = tok.trim();
            match analysis.cert.composition.enforced(tok) {
                Some(true) => {}
                Some(false) => {
                    code = 1;
                    unenforced.push(tok.to_string());
                }
                None => return Err(format!("unknown composition class {tok:?} (oo|ww|wo)")),
            }
        }
    }
    let format = args
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("human");
    let mut out = match format {
        "human" => {
            let mut o = analysis.render_human();
            for tok in &unenforced {
                let _ = std::fmt::Write::write_fmt(
                    &mut o,
                    format_args!("required composition class {tok} is NOT enforced per-shard\n"),
                );
            }
            o
        }
        "json" => {
            let mut j = analysis.render_json();
            j.push('\n');
            j
        }
        other => return Err(format!("unknown format {other:?} (human|json)")),
    };
    if let Some(dest) = args.options.get("certificate") {
        let text = analysis.cert.to_json();
        if dest == "-" {
            out.push_str(&text);
            out.push('\n');
        } else {
            std::fs::write(dest, text + "\n").map_err(|e| format!("cannot write {dest}: {e}"))?;
        }
    }
    Ok((out, code))
}

fn cmd_commute(args: &Args) -> Result<(String, i32), String> {
    let workload = args
        .options
        .get("workload")
        .map(String::as_str)
        .unwrap_or("demo");
    let programs = workload_programs(args, workload)?;
    let refs: Vec<&moc_core::program::Program> = programs.iter().map(|p| p.as_ref()).collect();
    let opts = moc_analyze::ShardOptions {
        max_shard_size: match args.get_usize("max-shard-size", 0)? {
            0 => None,
            n => Some(n),
        },
    };
    let objects = args.get_usize("objects", 0)?;
    let analysis = moc_analyze::commute_set_with(&refs, objects, opts);

    let mut code = match moc_analyze::max_severity(&analysis.all_findings()) {
        Some(Severity::Error) => 1,
        _ => 0,
    };
    // "Progress" means a *distinct* commuting pair — the same notion
    // MOC0012 lints on (self-pairs don't let anything reorder).
    let distinct_commuting: usize = (0..analysis.cert.programs.len())
        .map(|i| {
            analysis
                .cert
                .matrix
                .row(i)
                .iter()
                .filter(|&&j| (j as usize) > i)
                .count()
        })
        .sum();
    let progress_missing = args.flag("require-progress") && distinct_commuting == 0;
    if progress_missing {
        code = 1;
    }
    let format = args
        .options
        .get("format")
        .map(String::as_str)
        .unwrap_or("human");
    let mut out = match format {
        "human" => {
            let mut o = analysis.render_human();
            if progress_missing {
                o.push_str("required commutation progress is ABSENT: no distinct pair commutes\n");
            }
            o
        }
        "json" => {
            let mut j = analysis.render_json();
            j.push('\n');
            j
        }
        other => return Err(format!("unknown format {other:?} (human|json)")),
    };
    if let Some(dest) = args.options.get("certificate") {
        let text = analysis.cert.to_json();
        if dest == "-" {
            out.push_str(&text);
            out.push('\n');
        } else {
            std::fs::write(dest, text + "\n").map_err(|e| format!("cannot write {dest}: {e}"))?;
        }
    }
    Ok((out, code))
}

/// One run of the chaos sweep, reduced to what the sweep cares about.
struct ChaosOutcome {
    /// The run was fault-masked end to end: no anomalies, valid history,
    /// satisfied condition, audited certificate.
    clean: bool,
    /// The checker refuted the history AND the independent auditor
    /// confirmed the refutation certificate (the sabotage-mode goal).
    audited_refutation: bool,
    /// Human-readable diagnosis when not clean.
    detail: String,
    /// Cluster-wide reliable-link totals for the run.
    link: moc_abcast::LinkStats,
    /// Merged group-commit batch statistics for the run.
    batch: moc_abcast::BatchStats,
}

fn chaos_run_one<R: moc_protocol::ReplicaProtocol + 'static>(
    condition: Condition,
    config: &moc_protocol::chaos::ChaosConfig,
    scripts_in: Vec<moc_protocol::ClientScript>,
) -> ChaosOutcome {
    let report = moc_protocol::chaos::run_chaos_cluster::<R>(config, scripts_in);
    let link = report.total_link_stats();
    let batch = report.total_batch_stats();
    let expected_sabotage = !config.link.dedup || !config.link.retransmit;
    if !report.anomalies.is_clean() && !expected_sabotage {
        return ChaosOutcome {
            clean: false,
            audited_refutation: false,
            detail: format!("anomalies: {:?}", report.anomalies),
            link,
            batch,
        };
    }
    let history = match &report.history {
        Ok(h) => h,
        Err(e) => {
            return ChaosOutcome {
                clean: false,
                audited_refutation: false,
                detail: format!("invalid history: {e}"),
                link,
                batch,
            }
        }
    };
    let limits = SearchLimits::with_max_nodes(5_000_000);
    let (verdict, cert) = match check_certified(history, condition, limits) {
        Ok(v) => v,
        Err(e) => {
            return ChaosOutcome {
                clean: false,
                audited_refutation: false,
                detail: format!("checker error: {e}"),
                link,
                batch,
            }
        }
    };
    let audit = moc_audit::audit(history, &cert.to_text());
    let (clean, audited_refutation, detail) = match (verdict.satisfied, audit) {
        (true, Ok(_)) => (true, false, String::new()),
        (false, Ok(_)) => (
            false,
            true,
            format!(
                "condition VIOLATED (audited): {}",
                verdict.reason.unwrap_or_default()
            ),
        ),
        (_, Err(reject)) => (
            false,
            false,
            format!("certificate rejected by auditor: {reject}"),
        ),
    };
    ChaosOutcome {
        clean,
        audited_refutation,
        detail,
        link,
        batch,
    }
}

/// Renders the consolidated transport/runtime counter block shared by
/// `moc chaos` and `moc load`: reliable-link totals, group-commit batch
/// statistics, and (when the host runs pipelined clients) the merged
/// replica pipeline metrics.
fn counter_block(
    runs: u64,
    link: &moc_abcast::LinkStats,
    batch: &moc_abcast::BatchStats,
    pipeline: Option<&moc_runtime::PipelineMetrics>,
) -> String {
    let mut out = format!(
        "transport/runtime counters ({runs} run{}):\n  link:     {} data frames sent, {} received, {} delivered, {} dup-discarded, {} retransmissions, {} acks sent, {} acks received, {} rejoins\n  ordering: {} submissions stamped in {} batches (occupancy {:.2})\n",
        if runs == 1 { "" } else { "s" },
        link.data_sent,
        link.data_received,
        link.delivered,
        link.duplicates_discarded,
        link.retransmissions,
        link.acks_sent,
        link.acks_received,
        link.rejoins,
        batch.items_stamped,
        batch.batches_flushed,
        batch.occupancy(),
    );
    if let Some(p) = pipeline {
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "  pipeline: {} invocations, {} retired, peak depth {}, {} out-of-order completions, {:.1} µs mean queue residency, {} dropped replies\n",
                p.invocations,
                p.retired,
                p.peak_depth,
                p.out_of_order_completions,
                if p.retired == 0 {
                    0.0
                } else {
                    p.queue_residency_ns as f64 / p.retired as f64 / 1_000.0
                },
                p.dropped_replies,
            ),
        );
    }
    out
}

fn cmd_chaos(args: &Args) -> Result<(String, i32), String> {
    use moc_protocol::chaos::{ChaosConfig, LinkConfig};
    use moc_sim::FaultPlan;
    use moc_workload::chaos::{FaultFamily, WorkloadFamily};

    let processes = args.get_usize("processes", 3)?;
    let ops = args.get_usize("ops", 4)?;
    let objects = args.get_usize("objects", 4)?;
    let seeds = args.get_u64("seeds", 5)?;
    let seed_base = args.get_u64("seed-base", 0)?;
    let sabotage = args.flag("sabotage");
    if processes < 2 {
        return Err("--processes must be at least 2 (faults need a remote hop)".into());
    }
    let max_batch = args.get_usize("batch", 1)?;
    let batch_delay_us = args.get_u64("batch-delay-us", 100)?;
    if max_batch == 0 {
        return Err("--batch must be at least 1 (1 = batching off)".into());
    }
    let batching = (max_batch > 1).then(|| moc_abcast::BatchConfig {
        max_batch,
        max_delay_ns: batch_delay_us.saturating_mul(1_000),
    });

    let protocols: Vec<&str> = match args
        .options
        .get("protocol")
        .map(String::as_str)
        .unwrap_or("both")
    {
        "msc" => vec!["msc"],
        "mlin" => vec!["mlin"],
        "both" => vec!["msc", "mlin"],
        other => return Err(format!("unknown protocol {other:?} (msc|mlin|both)")),
    };
    let abcast = match args
        .options
        .get("abcast")
        .map(String::as_str)
        .unwrap_or("fixed")
    {
        "fixed" => "fixed",
        "view" => "view",
        other => return Err(format!("unknown abcast {other:?} (fixed|view)")),
    };
    let families: Vec<FaultFamily> = match args.options.get("faults").map(String::as_str) {
        None | Some("all") => FaultFamily::ALL.to_vec(),
        Some("leader-crash") => FaultFamily::LEADER_CRASH.to_vec(),
        Some(list) => list
            .split(',')
            .map(|t| {
                FaultFamily::by_name(t.trim())
                    .ok_or_else(|| format!("unknown fault family {:?}", t.trim()))
            })
            .collect::<Result<_, _>>()?,
    };
    let workloads: Vec<WorkloadFamily> = match args.options.get("workloads").map(String::as_str) {
        None | Some("mixed") => vec![WorkloadFamily::Mixed],
        Some("all") => WorkloadFamily::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|t| {
                WorkloadFamily::by_name(t.trim())
                    .ok_or_else(|| format!("unknown workload family {:?}", t.trim()))
            })
            .collect::<Result<_, _>>()?,
    };

    // Virtual-time horizon scheduled faults live inside. Generous: the
    // retransmission layer stretches runs well past the fair-weather
    // duration.
    let horizon_ns = ops as u64 * 150_000 + 500_000;
    let mut out = String::new();
    let mut total = 0u64;
    let mut failures: Vec<String> = Vec::new();
    let mut audited_refutations = 0u64;
    let mut sweep_link = moc_abcast::LinkStats::default();
    let mut sweep_batch = moc_abcast::BatchStats::default();

    for proto in &protocols {
        let condition = match *proto {
            "msc" => Condition::MSequentialConsistency,
            _ => Condition::MLinearizability,
        };
        for family in &families {
            for wl in &workloads {
                let mut clean = 0u64;
                for i in 0..seeds {
                    let seed = seed_base + i;
                    total += 1;
                    let spec = wl.spec(processes, ops);
                    // The leader-crash windows sit mid-horizon; stretch
                    // client think time so submissions actually span the
                    // outage instead of quiescing microseconds in (the
                    // default think time is 100 ns).
                    let think_ns = if FaultFamily::LEADER_CRASH.contains(family) {
                        horizon_ns / (2 * ops.max(1) as u64)
                    } else {
                        spec.think_ns
                    };
                    let spec = WorkloadSpec {
                        num_objects: objects.min(spec.num_objects.max(1)).max(1),
                        think_ns,
                        ..spec
                    };
                    let mut rng = StdRng::seed_from_u64(seed);
                    let s = scripts(&spec, &mut rng);
                    let (plan, link) = if sabotage {
                        // Dedup and retransmission off, duplication on: the
                        // faults reach the protocol unprotected.
                        (FaultPlan::default().with_dup(0.5), LinkConfig::sabotaged())
                    } else {
                        (family.plan(processes, horizon_ns), LinkConfig::default())
                    };
                    let mut config = ChaosConfig::new(spec.num_objects, seed)
                        .with_faults(plan)
                        .with_link(link);
                    if let Some(batch) = batching {
                        config = config.with_batching(batch);
                    }
                    if abcast == "view" {
                        // Suspicion well below the leader-crash windows
                        // (which are fractions of the horizon), so
                        // failover actually fires before the old leader
                        // returns.
                        config = config.with_failover_timeouts(30_000, 240_000);
                    } else if FaultFamily::LEADER_CRASH.contains(family) {
                        // Negative control: the fixed sequencer cannot
                        // fail over, so bound the event count — the run
                        // must FAIL (stall / unfinished ops), not hang.
                        config = config.with_max_events(2_000_000);
                    }
                    let outcome = match (*proto, abcast) {
                        ("msc", "view") => chaos_run_one::<MscOverView>(condition, &config, s),
                        ("msc", _) => chaos_run_one::<MscOverSequencer>(condition, &config, s),
                        (_, "view") => chaos_run_one::<MlinOverView>(condition, &config, s),
                        _ => chaos_run_one::<MlinOverSequencer>(condition, &config, s),
                    };
                    sweep_link = sweep_link.merge(&outcome.link);
                    sweep_batch.merge(outcome.batch);
                    if outcome.audited_refutation {
                        audited_refutations += 1;
                    }
                    if outcome.clean {
                        clean += 1;
                    } else if !sabotage {
                        failures.push(format!(
                            "FAIL {proto} abcast={abcast} faults={} workload={} seed={seed}: {}\n  replay: moc chaos --protocol {proto} --abcast {abcast} --faults {} --workloads {} --seed-base {seed} --seeds 1 --processes {processes} --ops {ops} --objects {objects}",
                            family.name(), wl.name(), outcome.detail,
                            family.name(), wl.name(),
                        ));
                    }
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(
                        "{proto:4} abcast={abcast:5} faults={:<18} workload={:<11} {clean}/{seeds} clean\n",
                        family.name(),
                        wl.name(),
                    ),
                );
                if sabotage {
                    // One pass over the seeds is enough in sabotage mode;
                    // the family axis is overridden anyway.
                    break;
                }
            }
            if sabotage {
                break;
            }
        }
    }

    out.push_str(&counter_block(total, &sweep_link, &sweep_batch, None));
    if sabotage {
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "sabotage sweep: {total} runs, {audited_refutations} audited refutation(s)\n"
            ),
        );
        if audited_refutations > 0 {
            out.push_str("SABOTAGE CONFIRMED: the checker refuted the unprotected stack and the auditor upheld the certificates\n");
            return Ok((out, 0));
        }
        out.push_str("SABOTAGE FAILED: no audited refutation found — widen --seeds\n");
        return Ok((out, 1));
    }
    for f in &failures {
        out.push_str(f);
        out.push('\n');
    }
    let _ = std::fmt::Write::write_fmt(
        &mut out,
        format_args!(
            "chaos sweep: {total} runs, {} failures; every clean run's certificate audited\n",
            failures.len()
        ),
    );
    Ok((out, if failures.is_empty() { 0 } else { 1 }))
}

fn cmd_load(args: &Args) -> Result<(String, i32), String> {
    use moc_bench::{run_runtime_load_counters, runtime_bench_table, LoadMode, RuntimeLoadSpec};
    use moc_workload::skew::KeySkew;

    let clients = args.get_usize("clients", 4)?;
    let ops = args.get_usize("ops", 50)?;
    let objects = args.get_usize("objects", 16)?;
    let seed = args.get_u64("seed", 42)?;
    let update_fraction = args.get_f64("update-frac", 0.5)?;
    let window = args.get_usize("window", 8)?;
    let max_batch = args.get_usize("batch", 1)?;
    let batch_delay_us = args.get_u64("batch-delay-us", 100)?;
    let interval_us = args.get_u64("interval-us", 100)?;
    if clients == 0 || ops == 0 {
        return Err("--clients and --ops must be at least 1".into());
    }
    if window == 0 {
        return Err("--window must be at least 1 (1 = pipelining off)".into());
    }
    if max_batch == 0 {
        return Err("--batch must be at least 1 (1 = batching off)".into());
    }
    if !(0.0..=1.0).contains(&update_fraction) {
        return Err("--update-frac must be in [0, 1]".into());
    }
    let mode = match args
        .options
        .get("mode")
        .map(String::as_str)
        .unwrap_or("closed")
    {
        "closed" => LoadMode::Closed,
        "open" => LoadMode::Open {
            interval_ns: interval_us.saturating_mul(1_000).max(1),
        },
        other => return Err(format!("unknown mode {other:?} (closed|open)")),
    };
    let skew_name = args
        .options
        .get("skew")
        .map(String::as_str)
        .unwrap_or("uniform");
    let skew = KeySkew::parse(skew_name)
        .ok_or_else(|| format!("unknown skew {skew_name:?} (uniform|zipfian|normal)"))?;

    let spec = RuntimeLoadSpec {
        mode,
        clients,
        ops_per_client: ops,
        num_objects: objects.max(1),
        skew,
        update_fraction,
        seed,
        batching: (max_batch > 1).then(|| moc_abcast::BatchConfig {
            max_batch,
            max_delay_ns: batch_delay_us.saturating_mul(1_000),
        }),
        window,
    };
    let (row, counters) = run_runtime_load_counters(&spec);
    let dropped = counters.pipeline.dropped_replies;
    let mut out = runtime_bench_table(std::slice::from_ref(&row)).to_string();
    out.push('\n');
    out.push_str(&counter_block(
        1,
        &counters.link,
        &counters.batch,
        Some(&counters.pipeline),
    ));
    if dropped > 0 {
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!("LOAD FAILED: {dropped} replies dropped\n"),
        );
        return Ok((out, 1));
    }
    out.push_str("load run complete: every invocation replied\n");
    Ok((out, 0))
}

/// Splices the store-buffering gadget into a history: two fresh
/// processes on two fresh objects, each writing its own object and
/// reading the other as unwritten, with overlapping intervals mid-stream.
/// Inadmissible under m-SC and m-lin no matter what the host history
/// does — the sentinel must latch it.
fn splice_sabotage(h: &History) -> Result<History, String> {
    use moc_core::mop::{EventTime, MOpClass, MOpRecord};
    use moc_core::{MOpId, ObjectId, ProcessId};

    let horizon = h
        .records()
        .iter()
        .map(|r| r.responded_at.as_nanos())
        .max()
        .unwrap_or(0);
    let next_process = h
        .records()
        .iter()
        .map(|r| r.id.process.index() + 1)
        .max()
        .unwrap_or(0) as u32;
    let t0 = horizon / 2;
    let x = ObjectId::new(h.num_objects() as u32);
    let y = ObjectId::new(h.num_objects() as u32 + 1);
    let a_id = MOpId::new(ProcessId::new(next_process), 0);
    let b_id = MOpId::new(ProcessId::new(next_process + 1), 0);
    let mk = |id: MOpId, own: ObjectId, other: ObjectId| MOpRecord {
        id,
        invoked_at: EventTime::from_nanos(t0),
        responded_at: EventTime::from_nanos(t0 + 10),
        ops: vec![
            moc_core::op::CompletedOp::write(own, 1, id, 1),
            moc_core::op::CompletedOp::read(other, 0, MOpId::INITIAL, 0),
        ],
        outputs: vec![0],
        treated_as: MOpClass::Update,
        label: "sabotage".to_string(),
    };
    let mut records = h.records().to_vec();
    records.push(mk(a_id, x, y));
    records.push(mk(b_id, y, x));
    History::new(h.num_objects() + 2, records)
        .map_err(|e| format!("sabotage splice broke the history: {e}"))
}

fn cmd_monitor(args: &Args, stdin: &str) -> Result<(String, i32), String> {
    use moc_monitor::{replay, MonitorConfig, MonitorMode, OnlineMonitor};
    use moc_workload::histories::tile_history;
    use std::fmt::Write as _;

    let condition = match args
        .options
        .get("condition")
        .map(String::as_str)
        .unwrap_or("sc")
    {
        "sc" => Condition::MSequentialConsistency,
        "lin" => Condition::MLinearizability,
        "normal" => Condition::MNormality,
        other => return Err(format!("unknown condition {other:?} (sc|lin|normal)")),
    };
    let window = args.get_usize("window", 4)?;
    let tiles = args.get_usize("tiles", 1)?;
    let sabotage = args.flag("sabotage");
    if tiles < 1 {
        return Err("--tiles must be at least 1".into());
    }
    if sabotage && condition == Condition::MNormality {
        return Err("the --sabotage gadget targets sc|lin (store buffering is m-normal)".into());
    }

    let mut history = load_history(args, stdin)?;
    if tiles > 1 {
        history = tile_history(&history, tiles);
    }
    if sabotage {
        history = splice_sabotage(&history)?;
    }

    let mut cfg = MonitorConfig::new(condition).with_window(window);
    let cap = match args.options.get("max-live-nodes") {
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| "--max-live-nodes needs a number".to_string())?;
            cfg = cfg.with_max_live_nodes(n);
            Some(cfg.max_live_nodes)
        }
        None => None,
    };

    let summary = replay(&history, OnlineMonitor::new(history.num_objects(), cfg));
    let stats = &summary.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "streaming sentinel: condition={condition}, window={window}, {} m-operation(s) ({} events)",
        history.len(),
        stats.invocations + stats.completions,
    );

    // Every rolling certificate self-audits on the spot: the window it
    // certifies travels with it, so the independent auditor can re-accept
    // the cert with no access to the monitor's internals.
    let mut audit_rejections = 0u64;
    for rc in &summary.certs {
        let verdict = match moc_audit::audit(&rc.window, &rc.cert_text) {
            Ok(_) => "audit ACCEPTED",
            Err(_) => {
                audit_rejections += 1;
                "audit REJECTED"
            }
        };
        let _ = writeln!(
            out,
            "  cert v{} base={} window={} at={}ns {} — {}",
            rc.version,
            rc.base,
            rc.window_len,
            rc.emitted_at_ns,
            if rc.admissible {
                "admissible"
            } else {
                "INADMISSIBLE"
            },
            verdict,
        );
    }

    let mut bound_exceeded = false;
    match summary.mode {
        MonitorMode::Healthy => {
            let _ = writeln!(out, "mode: healthy (full coverage)");
        }
        MonitorMode::Degraded { dropped_prefix } => {
            let _ = writeln!(
                out,
                "mode: DEGRADED — force-dropped {dropped_prefix} oldest live record(s) at the cap; \
                 verdicts cover the retained suffix only",
            );
        }
    }
    let _ = writeln!(
        out,
        "stats: {} completions, {} window check(s), {} cert(s), {} retired, \
         {} force-dropped, {} backpressure event(s), peak live nodes {}",
        stats.completions,
        stats.windows_checked,
        stats.certs_emitted,
        stats.retired,
        stats.force_dropped,
        stats.backpressure_events,
        stats.peak_live_nodes,
    );
    if let Some(cap) = cap {
        if stats.peak_live_nodes > cap {
            bound_exceeded = true;
            let _ = writeln!(
                out,
                "BOUND EXCEEDED: peak live nodes {} > cap {cap}",
                stats.peak_live_nodes
            );
        } else {
            let _ = writeln!(
                out,
                "bound respected: peak live nodes {} <= cap {cap}",
                stats.peak_live_nodes
            );
        }
    }

    if let Some(v) = &summary.violation {
        let culprit = match v.culprit {
            Some(p) => format!("process {p}"),
            None => "unattributed".to_string(),
        };
        let _ = writeln!(
            out,
            "VIOLATION at {}ns ({}ns after the offending event, culprit {culprit}): {}",
            v.at_ns, v.detection_latency_ns, v.detail,
        );
        if let Some(rc) = &v.cert {
            let verdict = match moc_audit::audit(&rc.window, &rc.cert_text) {
                Ok(_) => "audit ACCEPTED",
                Err(_) => {
                    audit_rejections += 1;
                    "audit REJECTED"
                }
            };
            let _ = writeln!(
                out,
                "  evidence: refutation cert v{} over {} record(s) — {}",
                rc.version, rc.window_len, verdict,
            );
        }
    }

    let detected = summary.violation.is_some();
    let clean = !detected && audit_rejections == 0 && !bound_exceeded;
    if sabotage {
        if detected && audit_rejections == 0 {
            out.push_str("SABOTAGE CONFIRMED: the sentinel latched the spliced gadget\n");
            return Ok((out, 0));
        }
        out.push_str("SABOTAGE FAILED: the sentinel never latched the spliced gadget\n");
        return Ok((out, 1));
    }
    Ok((out, i32::from(!clean)))
}

fn cmd_synth(args: &Args) -> Result<(String, i32), String> {
    // Replay one pinned registry family.
    if let Some(name) = args.options.get("family") {
        let family = moc_workload::synth::SynthFamily::by_name(name)
            .ok_or_else(|| format!("unknown synth family {name:?}; try `moc synth --list`"))?;
        return Ok((moc_core::codec::to_text(&family.history()), 0));
    }
    // List the pinned registry.
    if args.flag("list") {
        let mut out = String::new();
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "{:<8} {:>8} {:>5}  {}\n",
                "name", "category", "seed", "replay"
            ),
        );
        for f in moc_workload::synth::SynthFamily::ALL {
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "{:<8} {:>8} {:>5}  {}\n",
                    f.name,
                    f.category.tag(),
                    f.seed,
                    f.replay_line()
                ),
            );
        }
        return Ok((out, 0));
    }
    // Verify a checked-in corpus against a fresh hunt.
    if let Some(dir) = args.options.get("verify") {
        let problems = moc_synth::verify_corpus(std::path::Path::new(dir))?;
        if problems.is_empty() {
            return Ok((format!("synth corpus {dir}: verified, no drift\n"), 0));
        }
        let mut out = format!("synth corpus {dir}: {} problems\n", problems.len());
        for p in &problems {
            out.push_str(p);
            out.push('\n');
        }
        return Ok((out, 1));
    }
    // Hunt. --smoke pins the corpus grammar; otherwise the grammar knobs
    // are free.
    let grammar = if args.flag("smoke") {
        moc_synth::Grammar::smoke()
    } else {
        moc_synth::Grammar {
            seed_base: args.get_u64("seed-base", 0)?,
            seeds: args.get_u64("seeds", 256)?,
            max_nodes: args.get_u64("max-nodes", 200_000)?,
            ..moc_synth::Grammar::smoke()
        }
    };
    let report = moc_synth::hunt(&grammar);
    let mut out = moc_synth::render_report(&report);
    if let Some(dir) = args.options.get("out") {
        moc_synth::write_corpus(std::path::Path::new(dir), &report)
            .map_err(|e| format!("writing corpus to {dir}: {e}"))?;
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                "corpus written to {dir}: manifest + {} specimens\n",
                report.specimens.len()
            ),
        );
    }
    Ok((out, 0))
}

fn cmd_render(args: &Args, stdin: &str) -> Result<String, String> {
    let h = load_history(args, stdin)?;
    let width = args.get_usize("width", 72)?;
    Ok(format!(
        "{}\n{}",
        render_timeline(&h, width),
        render_listing(&h)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = dispatch(&[], "").unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = dispatch(&sv(&["frobnicate"]), "").unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn gen_then_check_serial() {
        let text = dispatch(&sv(&["gen", "--kind", "serial", "--seed", "7"]), "").unwrap();
        assert!(text.starts_with("history v1"));
        let verdict = dispatch(&sv(&["check", "-", "--condition", "lin"]), &text).unwrap();
        assert!(verdict.contains("SATISFIED"), "{verdict}");
    }

    #[test]
    fn run_msc_then_check_sc_and_causal() {
        let text = dispatch(
            &sv(&[
                "run",
                "--protocol",
                "msc",
                "--processes",
                "3",
                "--ops",
                "4",
                "--seed",
                "5",
            ]),
            "",
        )
        .unwrap();
        let sc = dispatch(&sv(&["check", "-", "--condition", "sc"]), &text).unwrap();
        assert!(sc.contains("SATISFIED"), "{sc}");
        let causal = dispatch(&sv(&["check", "-", "--condition", "causal"]), &text).unwrap();
        assert!(causal.contains("SATISFIED"), "{causal}");
    }

    #[test]
    fn check_with_witness_and_brute() {
        let text = dispatch(&sv(&["gen", "--kind", "writers", "--k", "2"]), "").unwrap();
        let out = dispatch(
            &sv(&["check", "-", "--condition", "sc", "--brute", "--witness"]),
            &text,
        )
        .unwrap();
        assert!(out.contains("SATISFIED"));
        assert!(out.contains("witness:"));
        assert!(out.contains("search,"));
    }

    #[test]
    fn check_minimize_shrinks_violations() {
        // An msc run with enough traffic usually contains a stale query;
        // scan a few seeds for a violating history.
        for seed in 0..30u64 {
            let text = dispatch(
                &sv(&[
                    "run",
                    "--protocol",
                    "msc",
                    "--processes",
                    "3",
                    "--ops",
                    "5",
                    "--seed",
                    &seed.to_string(),
                ]),
                "",
            )
            .unwrap();
            let out = dispatch(
                &sv(&["check", "-", "--condition", "lin", "--minimize"]),
                &text,
            )
            .unwrap();
            if out.contains("VIOLATED") {
                assert!(out.contains("minimized to"), "{out}");
                assert!(out.contains("history v1"), "minimized history printed");
                return;
            }
        }
        panic!("no seed produced a violation to minimize");
    }

    #[test]
    fn render_produces_timeline() {
        let text = dispatch(&sv(&["gen", "--kind", "serial", "--ops", "2"]), "").unwrap();
        let out = dispatch(&sv(&["render", "-", "--width", "50"]), &text).unwrap();
        assert!(out.contains("P0"));
        assert!(out.contains('['));
    }

    #[test]
    fn random_histories_often_violate() {
        // Not asserted per-seed (some random histories are consistent);
        // just exercise the path end to end.
        let text = dispatch(&sv(&["gen", "--kind", "random", "--seed", "3"]), "").unwrap();
        let out = dispatch(
            &sv(&["check", "-", "--condition", "sc", "--max-nodes", "200000"]),
            &text,
        );
        match out {
            Ok(verdict) => assert!(verdict.contains("m-sequential consistency")),
            // Random provenance may yield a cyclic relation or exhaust the
            // budget; both surface as clean errors.
            Err(e) => assert!(e.contains("budget") || e.contains("cyclic"), "{e}"),
        }
    }

    #[test]
    fn check_threads_flag_and_replay_echo() {
        let text = dispatch(&sv(&["gen", "--kind", "writers", "--k", "3"]), "").unwrap();
        let base = dispatch(&sv(&["check", "-", "--condition", "sc"]), &text).unwrap();
        // Default is `auto`; this history is below the size threshold, so
        // the replay line echoes the resolved single-threaded count.
        assert!(
            base.contains("replay: moc check - --condition sc --threads 1 --max-nodes 5000000"),
            "{base}"
        );
        let auto = dispatch(
            &sv(&["check", "-", "--condition", "sc", "--threads", "auto"]),
            &text,
        )
        .unwrap();
        assert_eq!(auto, base, "explicit auto matches the default");
        for threads in ["2", "4", "8"] {
            let out = dispatch(
                &sv(&[
                    "check",
                    "-",
                    "--condition",
                    "sc",
                    "--threads",
                    threads,
                    "--witness",
                ]),
                &text,
            )
            .unwrap();
            // Identical verdict and witness at every thread count; the
            // replay line echoes the effective flags.
            assert_eq!(
                base.lines().next().unwrap(),
                out.lines().next().unwrap(),
                "t{threads}"
            );
            assert!(out.contains(&format!("--threads {threads} ")), "{out}");
        }
        assert!(dispatch(&sv(&["check", "-", "--threads", "0"]), &text).is_err());
        assert!(dispatch(&sv(&["check", "-", "--threads", "many"]), &text).is_err());
    }

    #[test]
    fn bad_options_are_reported() {
        assert!(dispatch(&sv(&["gen", "--kind", "nope"]), "").is_err());
        assert!(dispatch(&sv(&["run", "--protocol", "nope"]), "").is_err());
        assert!(dispatch(
            &sv(&["check", "-", "--condition", "nope"]),
            "history v1\nobjects 0\nend\n"
        )
        .is_err());
        assert!(dispatch(&sv(&["check"]), "").is_err());
        assert!(dispatch(&sv(&["gen", "--ops", "NaN"]), "").is_err());
    }

    #[test]
    fn analyze_demo_emits_expected_lints() {
        let (out, code) = dispatch_with_status(&sv(&["analyze"]), "");
        let out = out.unwrap();
        assert!(out.contains("MOC0001"), "unreachable instruction:\n{out}");
        assert!(out.contains("MOC0002"), "uninitialized register:\n{out}");
        assert!(out.contains("MOC0008"), "constraint certificates:\n{out}");
        assert!(out.contains("program dcas: update"), "{out}");
        assert!(out.contains("program dead-write: query"), "{out}");
        // No --require, so certificates are informational: exit clean.
        assert_eq!(code, 0);
    }

    #[test]
    fn analyze_require_oo_fails_on_demo_set() {
        // The demo set has a query reading objects an update writes, so
        // the OO certificate misses and --require oo is an Error.
        let (out, code) = dispatch_with_status(&sv(&["analyze", "--require", "oo"]), "");
        let out = out.unwrap();
        assert!(out.contains("MOC0007"), "{out}");
        assert_eq!(code, 1);
        // WW is enforced by construction (abcast orders updates).
        let (out, code) = dispatch_with_status(&sv(&["analyze", "--require", "ww"]), "");
        assert!(out.unwrap().contains("MOC0008"));
        assert_eq!(code, 0);
    }

    #[test]
    fn analyze_disjoint_workload_certifies_everything() {
        // The disjoint set's query footprint is untouched by every update,
        // so all three constraints certify and the strictest --require
        // passes — the invocation CI runs as a gate.
        let (out, code) = dispatch_with_status(
            &sv(&["analyze", "--workload", "disjoint", "--require", "oo,ww,wo"]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("MOC0008"), "{out}");
        assert!(!out.contains("MOC0007"), "{out}");
    }

    #[test]
    fn analyze_json_format_and_protocol_workload() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "analyze",
                "--format",
                "json",
                "--workload",
                "protocol",
                "--seed",
                "1",
            ]),
            "",
        );
        let json = out.unwrap();
        assert_eq!(code, 0);
        assert!(json.starts_with('{') && json.ends_with("}\n"), "{json}");
        assert!(json.contains("\"certificates\""), "{json}");
        assert!(json.contains("\"fast_path\""), "{json}");
    }

    #[test]
    fn shard_emits_a_certificate_the_auditor_revalidates() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "shard",
                "--workload",
                "shardable",
                "--shards",
                "3",
                "--certificate",
                "-",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("shard 0"), "{out}");
        assert!(out.contains("MOC0008"), "summary finding:\n{out}");
        let cert_line = out
            .lines()
            .rev()
            .find(|l| l.starts_with('{'))
            .expect("certificate JSON in output")
            .to_string();
        assert!(cert_line.contains("moc-shard-cert"), "{cert_line}");

        // The independent auditor re-validates the emitted document.
        let (res, code) = dispatch_with_status(
            &sv(&["audit", "-", "--programs", "shardable", "--shards", "3"]),
            &cert_line,
        );
        assert_eq!(code, 0, "{res:?}");
        assert!(res.unwrap().contains("shard certificate VALID"));

        // A mutated certificate (object moved between shards) is rejected.
        let mut cert = moc_core::shard::ShardCert::parse(&cert_line).unwrap();
        let moved = cert.shards[0].pop().unwrap();
        cert.shards[1].push(moved);
        let (res, code) = dispatch_with_status(
            &sv(&["audit", "-", "--programs", "shardable", "--shards", "3"]),
            &cert.to_json(),
        );
        assert_eq!(code, 1);
        assert!(res.unwrap().contains("REJECTED"));

        // Same for a silently dropped cross-shard edge (forced by a cap).
        let (out, _) = dispatch_with_status(
            &sv(&[
                "shard",
                "--workload",
                "hub",
                "--max-shard-size",
                "2",
                "--certificate",
                "-",
            ]),
            "",
        );
        let cert_line = out
            .unwrap()
            .lines()
            .rev()
            .find(|l| l.starts_with('{'))
            .unwrap()
            .to_string();
        let mut cert = moc_core::shard::ShardCert::parse(&cert_line).unwrap();
        assert!(!cert.cross_edges.is_empty(), "cap forces cross edges");
        cert.cross_edges.pop();
        let (res, code) =
            dispatch_with_status(&sv(&["audit", "-", "--programs", "hub"]), &cert.to_json());
        assert_eq!(code, 1);
        assert!(res.unwrap().contains("dropped"));
    }

    #[test]
    fn commute_emits_a_certificate_the_auditor_revalidates() {
        let (out, code) = dispatch_with_status(
            &sv(&["commute", "--workload", "disjoint", "--certificate", "-"]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("commutes"), "{out}");
        let cert_line = out
            .lines()
            .rev()
            .find(|l| l.starts_with('{'))
            .expect("certificate JSON in output")
            .to_string();
        assert!(cert_line.contains("moc-commute-cert"), "{cert_line}");

        // The auditor dispatches on the format tag and re-validates.
        let (res, code) =
            dispatch_with_status(&sv(&["audit", "-", "--programs", "disjoint"]), &cert_line);
        assert_eq!(code, 0, "{res:?}");
        assert!(res.unwrap().contains("commute certificate VALID"));

        // A mutated certificate (a mover class flipped) is rejected.
        let mut cert = moc_core::commute::CommuteCert::parse(&cert_line).unwrap();
        use moc_core::commute::MoverClass;
        cert.programs[0].class = match cert.programs[0].class {
            MoverClass::BothMover => MoverClass::NonMover,
            _ => MoverClass::BothMover,
        };
        let (res, code) = dispatch_with_status(
            &sv(&["audit", "-", "--programs", "disjoint"]),
            &cert.to_json(),
        );
        assert_eq!(code, 1);
        assert!(res.unwrap().contains("REJECTED"));

        // Binding it to the wrong workload is rejected too.
        let (res, code) =
            dispatch_with_status(&sv(&["audit", "-", "--programs", "hub"]), &cert_line);
        assert_eq!(code, 1);
        assert!(res.unwrap().contains("fingerprint"));
    }

    #[test]
    fn commute_progress_gate_splits_the_workloads() {
        // Disjoint programs commute freely: the gate passes.
        let (out, code) = dispatch_with_status(
            &sv(&["commute", "--workload", "disjoint", "--require-progress"]),
            "",
        );
        assert_eq!(code, 0, "{out:?}");

        // A one-object universe funnels every program through object 0:
        // no distinct pair commutes (q1's self-pair doesn't count),
        // MOC0012 fires, and the gate fails.
        let (out, code) = dispatch_with_status(
            &sv(&[
                "commute",
                "--workload",
                "protocol",
                "--objects",
                "1",
                "--require-progress",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("MOC0012"), "{out}");
        assert!(out.contains("ABSENT"), "{out}");
    }

    #[test]
    fn commute_json_wraps_the_certificate() {
        let (out, code) = dispatch_with_status(
            &sv(&["commute", "--workload", "shardable", "--format", "json"]),
            "",
        );
        let json = out.unwrap();
        assert_eq!(code, 0);
        assert!(json.contains("\"certificate\""), "{json}");
        assert!(json.contains("moc-commute-cert"), "{json}");
        assert!(json.contains("\"commuting_pairs\""), "{json}");
        let (result, code) = dispatch_with_status(&sv(&["commute", "--format", "nope"]), "");
        assert!(result.is_err());
        assert_eq!(code, 2);
    }

    #[test]
    fn audit_programs_rejects_untagged_documents() {
        let (result, code) =
            dispatch_with_status(&sv(&["audit", "-", "--programs", "demo"]), "{\"x\":1}");
        assert!(result.is_err());
        assert_eq!(code, 2);
    }

    #[test]
    fn shard_gate_accepts_shardable_and_rejects_hub() {
        // Golden accept: the shardable family composes WW and WO
        // per-shard.
        let (out, code) = dispatch_with_status(
            &sv(&[
                "shard",
                "--workload",
                "shardable",
                "--require-composition",
                "ww,wo",
            ]),
            "",
        );
        assert_eq!(code, 0, "{out:?}");

        // Reject: the hub workload, capped, loses per-shard WW and says
        // why (MOC0010 names the hub object).
        let (out, code) = dispatch_with_status(
            &sv(&[
                "shard",
                "--workload",
                "hub",
                "--max-shard-size",
                "2",
                "--require-composition",
                "ww",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("NOT enforced"), "{out}");
        assert!(out.contains("MOC0010"), "hub diagnosis:\n{out}");
    }

    #[test]
    fn shard_json_wraps_the_certificate() {
        let (out, code) = dispatch_with_status(
            &sv(&["shard", "--workload", "disjoint", "--format", "json"]),
            "",
        );
        let json = out.unwrap();
        assert_eq!(code, 0);
        assert!(json.contains("\"certificate\""), "{json}");
        assert!(json.contains("moc-shard-cert"), "{json}");
        assert!(json.contains("\"num_shards\""), "{json}");
    }

    #[test]
    fn analyze_bad_flags_exit_2() {
        for bad in [
            sv(&["analyze", "--workload", "nope"]),
            sv(&["analyze", "--format", "nope"]),
            sv(&["analyze", "--require", "nope"]),
        ] {
            let (result, code) = dispatch_with_status(&bad, "");
            assert!(result.is_err());
            assert_eq!(code, 2);
        }
        let (result, code) = dispatch_with_status(&sv(&["frobnicate"]), "");
        assert!(result.is_err());
        assert_eq!(code, 2);
    }

    #[test]
    fn check_emits_certificate_and_audit_validates_it() {
        let text = dispatch(&sv(&["gen", "--kind", "serial", "--seed", "7"]), "").unwrap();
        let out = dispatch(
            &sv(&["check", "-", "--condition", "sc", "--certificate", "-"]),
            &text,
        )
        .unwrap();
        assert!(out.contains("SATISFIED"), "{out}");
        let cert = out
            .lines()
            .find(|l| l.starts_with('{'))
            .expect("certificate JSON in output");
        assert!(cert.contains("\"moc-cert\""), "{cert}");

        // Round-trip through the independent auditor via temp files.
        let dir = std::env::temp_dir().join(format!("moc-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let hist_path = dir.join("history.txt");
        let cert_path = dir.join("cert.json");
        std::fs::write(&hist_path, &text).unwrap();
        std::fs::write(&cert_path, cert).unwrap();
        let (out, code) = dispatch_with_status(
            &sv(&[
                "audit",
                hist_path.to_str().unwrap(),
                cert_path.to_str().unwrap(),
            ]),
            "",
        );
        assert_eq!(code, 0, "{out:?}");
        assert!(out.unwrap().contains("VALID"));

        // A certificate for a different history is rejected with exit 1.
        let other = dispatch(&sv(&["gen", "--kind", "serial", "--seed", "8"]), "").unwrap();
        std::fs::write(&hist_path, &other).unwrap();
        let (out, code) = dispatch_with_status(
            &sv(&[
                "audit",
                hist_path.to_str().unwrap(),
                cert_path.to_str().unwrap(),
            ]),
            "",
        );
        assert_eq!(code, 1);
        assert!(out.unwrap().contains("REJECTED"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_usage_errors_exit_2() {
        let (result, code) = dispatch_with_status(&sv(&["audit"]), "");
        assert!(result.is_err());
        assert_eq!(code, 2);
        let (result, code) =
            dispatch_with_status(&sv(&["audit", "-", "-"]), "history v1\nobjects 0\nend\n");
        assert!(result.is_err());
        assert_eq!(code, 2);
        let (result, code) = dispatch_with_status(&sv(&["audit", "/no/such/file", "c"]), "");
        assert!(result.is_err());
        assert_eq!(code, 2);
    }

    #[test]
    fn chaos_sweep_passes_on_recoverable_faults() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "chaos",
                "--protocol",
                "both",
                "--faults",
                "lossy,crash",
                "--seeds",
                "2",
                "--ops",
                "3",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("msc"), "{out}");
        assert!(out.contains("mlin"), "{out}");
        assert!(out.contains("2/2 clean"), "{out}");
        assert!(out.contains("0 failures"), "{out}");
    }

    #[test]
    fn chaos_sabotage_finds_audited_refutations() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "chaos",
                "--protocol",
                "msc",
                "--sabotage",
                "--seeds",
                "40",
                "--ops",
                "4",
                "--objects",
                "1",
                "--workloads",
                "write-heavy",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("SABOTAGE CONFIRMED"), "{out}");
    }

    #[test]
    fn chaos_view_abcast_survives_leader_crashes() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "chaos",
                "--protocol",
                "both",
                "--abcast",
                "view",
                "--faults",
                "leader-crash",
                "--seeds",
                "2",
                "--ops",
                "3",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("abcast=view"), "{out}");
        assert!(out.contains("leader-crash-repeat"), "{out}");
        assert!(out.contains("0 failures"), "{out}");
    }

    #[test]
    fn chaos_fixed_abcast_fails_detectably_on_leader_crash() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "chaos",
                "--protocol",
                "msc",
                "--faults",
                "leader-crash-burst",
                "--workloads",
                "write-heavy",
                "--seeds",
                "2",
                "--ops",
                "3",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 1, "negative control must fail, not hang: {out}");
        assert!(out.contains("FAIL"), "{out}");
        assert!(
            out.contains("--abcast fixed"),
            "replay line carries the abcast flag: {out}"
        );
    }

    #[test]
    fn chaos_bad_flags_exit_2() {
        for bad in [
            sv(&["chaos", "--protocol", "nope"]),
            sv(&["chaos", "--abcast", "nope"]),
            sv(&["chaos", "--faults", "nope"]),
            sv(&["chaos", "--workloads", "nope"]),
            sv(&["chaos", "--processes", "1"]),
            sv(&["chaos", "--batch", "0"]),
        ] {
            let (result, code) = dispatch_with_status(&bad, "");
            assert!(result.is_err(), "{bad:?}");
            assert_eq!(code, 2);
        }
    }

    #[test]
    fn chaos_with_batching_stays_clean_and_prints_counters() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "chaos",
                "--protocol",
                "msc",
                "--faults",
                "lossy",
                "--workloads",
                "write-heavy",
                "--seeds",
                "2",
                "--ops",
                "4",
                "--batch",
                "4",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("2/2 clean"), "{out}");
        assert!(
            out.contains("transport/runtime counters (2 runs):"),
            "{out}"
        );
        assert!(out.contains("submissions stamped"), "{out}");
        // Group commit actually grouped: more items than batches.
        let ordering = out
            .lines()
            .find(|l| l.contains("submissions stamped"))
            .unwrap();
        assert!(!ordering.contains("0 submissions stamped"), "{ordering}");
    }

    #[test]
    fn load_batched_pipelined_run_replies_to_everything() {
        let (out, code) = dispatch_with_status(
            &sv(&[
                "load",
                "--clients",
                "2",
                "--ops",
                "20",
                "--window",
                "8",
                "--batch",
                "8",
                "--batch-delay-us",
                "200",
            ]),
            "",
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("load run complete"), "{out}");
        assert!(out.contains("transport/runtime counters (1 run):"), "{out}");
        assert!(
            out.contains("pipeline: 40 invocations, 40 retired"),
            "{out}"
        );
        assert!(out.contains("0 dropped replies"), "{out}");
    }

    #[test]
    fn load_open_loop_and_skews_run_clean() {
        for skew in ["uniform", "zipfian", "normal"] {
            let (out, code) = dispatch_with_status(
                &sv(&[
                    "load",
                    "--mode",
                    "open",
                    "--interval-us",
                    "50",
                    "--clients",
                    "2",
                    "--ops",
                    "10",
                    "--skew",
                    skew,
                ]),
                "",
            );
            let out = out.unwrap();
            assert_eq!(code, 0, "{skew}: {out}");
            assert!(out.contains(skew), "{out}");
            assert!(out.contains("\nopen "), "{out}");
        }
    }

    #[test]
    fn load_bad_flags_exit_2() {
        for bad in [
            sv(&["load", "--mode", "nope"]),
            sv(&["load", "--skew", "nope"]),
            sv(&["load", "--window", "0"]),
            sv(&["load", "--batch", "0"]),
            sv(&["load", "--clients", "0"]),
            sv(&["load", "--update-frac", "1.5"]),
        ] {
            let (result, code) = dispatch_with_status(&bad, "");
            assert!(result.is_err(), "{bad:?}");
            assert_eq!(code, 2);
        }
    }

    #[test]
    fn synth_list_names_every_pinned_family() {
        let (out, code) = dispatch_with_status(&sv(&["synth", "--list"]), "");
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        for f in moc_workload::synth::SynthFamily::ALL {
            assert!(out.contains(f.name), "{}: missing from --list", f.name);
            assert!(out.contains(&f.replay_line()), "{}", f.name);
        }
    }

    #[test]
    fn synth_family_replays_through_the_codec() {
        let (out, code) = dispatch_with_status(&sv(&["synth", "--family", "lbi-0"]), "");
        let text = out.unwrap();
        assert_eq!(code, 0);
        let h = moc_core::codec::from_text(&text).expect("replay output parses");
        let pinned = moc_workload::synth::SynthFamily::by_name("lbi-0")
            .unwrap()
            .history();
        assert_eq!(
            moc_core::codec::fingerprint(&h),
            moc_core::codec::fingerprint(&pinned),
            "replayed history matches registry regeneration"
        );
    }

    #[test]
    fn synth_unknown_family_exits_2() {
        let (result, code) = dispatch_with_status(&sv(&["synth", "--family", "nope-9"]), "");
        assert!(result.unwrap_err().contains("unknown synth family"));
        assert_eq!(code, 2);
    }

    #[test]
    fn synth_verify_passes_on_the_golden_corpus() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures/synth");
        let (out, code) = dispatch_with_status(&sv(&["synth", "--verify", dir]), "");
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("no drift"), "{out}");
    }

    #[test]
    fn synth_verify_missing_corpus_errors() {
        let (result, code) =
            dispatch_with_status(&sv(&["synth", "--verify", "/no/such/corpus"]), "");
        assert!(result.is_err());
        assert_eq!(code, 2);
    }

    #[test]
    fn args_parsing_rules() {
        let a = Args::parse(&sv(&["file.txt", "--flag", "--key", "v", "--tail"]));
        assert_eq!(a.positional, vec!["file.txt"]);
        assert!(a.flag("flag"));
        assert!(a.flag("tail"));
        assert_eq!(a.options.get("key").unwrap(), "v");
    }

    #[test]
    fn monitor_clean_run_exits_0_with_audited_certs() {
        let text = dispatch(&sv(&["gen", "--kind", "serial", "--seed", "3"]), "").unwrap();
        let (out, code) = dispatch_with_status(
            &sv(&["monitor", "-", "--condition", "lin", "--window", "2"]),
            &text,
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("mode: healthy"), "{out}");
        assert!(out.contains("audit ACCEPTED"), "{out}");
        assert!(!out.contains("audit REJECTED"), "{out}");
        assert!(!out.contains("VIOLATION"), "{out}");
    }

    #[test]
    fn monitor_sabotage_is_caught_and_exits_0() {
        let text = dispatch(&sv(&["gen", "--kind", "serial", "--seed", "4"]), "").unwrap();
        let (out, code) = dispatch_with_status(
            &sv(&[
                "monitor",
                "-",
                "--condition",
                "sc",
                "--window",
                "2",
                "--sabotage",
            ]),
            &text,
        );
        let out = out.unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("VIOLATION"), "{out}");
        assert!(out.contains("SABOTAGE CONFIRMED"), "{out}");
    }

    #[test]
    fn monitor_tiled_stream_stays_bounded_and_degrades() {
        // Concurrent-writer tiles never fully retire under m-SC's
        // closed-relation peeling, so a long tiled stream presses on the
        // cap: the sentinel must degrade, never grow past the bound.
        let text = dispatch(&sv(&["gen", "--kind", "writers", "--k", "3"]), "").unwrap();
        let (out, code) = dispatch_with_status(
            &sv(&[
                "monitor",
                "-",
                "--condition",
                "sc",
                "--window",
                "4",
                "--tiles",
                "12",
                "--max-live-nodes",
                "8",
            ]),
            &text,
        );
        let out = out.unwrap();
        assert!(out.contains("bound respected"), "{out}");
        assert!(!out.contains("BOUND EXCEEDED"), "{out}");
        assert!(!out.contains("VIOLATION"), "{out}");
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn monitor_rejects_bad_condition_and_sabotaged_normal() {
        let (result, code) = dispatch_with_status(
            &sv(&["monitor", "-", "--condition", "weird"]),
            "history v1\n",
        );
        assert!(result.unwrap_err().contains("unknown condition"));
        assert_eq!(code, 2);
        let (result, code) = dispatch_with_status(
            &sv(&["monitor", "-", "--condition", "normal", "--sabotage"]),
            "history v1\n",
        );
        assert!(result.unwrap_err().contains("sabotage"));
        assert_eq!(code, 2);
    }
}
