//! Thin entry point for the `moc` tool; all logic lives in `moc_cli`.

use std::io::Read;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Read stdin only when a command actually references it.
    let needs_stdin = raw.iter().any(|a| a == "-");
    let mut stdin = String::new();
    if needs_stdin {
        if let Err(e) = std::io::stdin().read_to_string(&mut stdin) {
            eprintln!("error: cannot read stdin: {e}");
            std::process::exit(2);
        }
    }
    // Exit codes per the USAGE contract: 0 clean, 1 Error-severity
    // findings in an analysis report, 2 invalid input or usage.
    let (result, code) = moc_cli::dispatch_with_status(&raw, &stdin);
    match result {
        Ok(out) => print!("{out}"),
        Err(e) => eprintln!("error: {e}"),
    }
    std::process::exit(code);
}
