//! # moc-runtime
//!
//! A live, thread-based cluster hosting the consistency-protocol replicas
//! of `moc-protocol` — the same state machines that run on the
//! deterministic simulator, here driven by OS threads, crossbeam channels
//! and wall-clock time.
//!
//! Topology: one replica thread per process, plus a network thread that
//! routes every message and (optionally) applies randomized delivery
//! delays, reordering messages exactly as the paper's asynchronous channel
//! model allows. Clients block on [`LiveCluster::invoke`]; per-process
//! locks enforce the model's sequential-process rule (one outstanding
//! m-operation per process).
//!
//! Invocation and response events are stamped with nanoseconds since the
//! cluster epoch, so the history assembled at
//! [`LiveCluster::shutdown`] carries a genuine real-time order `~t` and
//! can be checked for m-linearizability.
//!
//! ```
//! use std::sync::Arc;
//! use moc_core::ids::ProcessId;
//! use moc_core::program::{imm, reg, ProgramBuilder};
//! use moc_protocol::MlinOverSequencer;
//! use moc_runtime::{LiveCluster, RuntimeConfig};
//!
//! let cluster: LiveCluster<MlinOverSequencer> =
//!     LiveCluster::start(2, RuntimeConfig::new(1));
//! let mut b = ProgramBuilder::new("wx");
//! b.write(moc_core::ids::ObjectId::new(0), imm(7)).ret(vec![]);
//! let wx = Arc::new(b.build()?);
//! let mut b = ProgramBuilder::new("rx");
//! b.read(moc_core::ids::ObjectId::new(0), 0).ret(vec![reg(0)]);
//! let rx = Arc::new(b.build()?);
//!
//! cluster.invoke(ProcessId::new(0), wx, vec![]);
//! let reply = cluster.invoke(ProcessId::new(1), rx, vec![]);
//! assert_eq!(reply.outputs, vec![7]);
//! let report = cluster.shutdown();
//! assert_eq!(report.history.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use moc_abcast::{LinkConfig, LinkMsg, Outbox, ReliableLink};
use moc_core::history::History;
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::program::Program;
use moc_core::value::Value;
use moc_monitor::OnlineMonitor;
pub use moc_monitor::{MonitorConfig, MonitorRunSummary};
use moc_protocol::{MOperation, ReplicaProtocol};
use moc_sim::DelayModel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt mixed into the seed for the network thread's fault sampler, so
/// enabling faults does not perturb the delay stream (mirrors the
/// simulator's convention).
const FAULT_SEED_SALT: u64 = 0x6d6f_635f_6368_616f;

/// Configuration for a live cluster.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Size of the shared-object universe.
    pub num_objects: usize,
    /// Artificial delivery delay injected by the network thread. `None`
    /// routes messages immediately (still asynchronously).
    pub artificial_delay: Option<DelayModel>,
    /// Seed for the delay sampler.
    pub seed: u64,
    /// Probability the network thread silently discards a routed message
    /// (loopback exempt). The reliable-link sublayer recovers the loss.
    pub drop_prob: f64,
    /// Probability a routed message is delivered twice, with independent
    /// delays (loopback exempt).
    pub dup_prob: f64,
    /// Reliable-link tuning. Wall-clock defaults (2ms base RTO, 50ms cap)
    /// absorb OS scheduling jitter; spurious retransmissions are made
    /// harmless by receive-side dedup.
    pub link: LinkConfig,
    /// Failover suspicion timeouts `(base_ns, max_ns)` for broadcasts
    /// with view-based failover. The simulator-scale defaults baked into
    /// the broadcast (tens of microseconds) would suspect a coordinator
    /// on every OS scheduling hiccup, so the runtime always overrides
    /// them with wall-clock values (20ms base, 500ms cap). False
    /// suspicions are safe but churn views. Ignored by broadcasts
    /// without failover.
    pub failover_timeouts: (u64, u64),
}

impl RuntimeConfig {
    /// A config with immediate routing and a fault-free network.
    pub fn new(num_objects: usize) -> Self {
        RuntimeConfig {
            num_objects,
            artificial_delay: None,
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            link: LinkConfig {
                rto_ns: 2_000_000,
                max_rto_ns: 50_000_000,
                ..LinkConfig::default()
            },
            failover_timeouts: (20_000_000, 500_000_000),
        }
    }

    /// Overrides the failover suspicion timeouts (base and backoff cap).
    pub fn with_failover_timeouts(mut self, base_ns: u64, max_ns: u64) -> Self {
        assert!(base_ns > 0 && base_ns <= max_ns, "need 0 < base <= max");
        self.failover_timeouts = (base_ns, max_ns);
        self
    }

    /// Injects randomized per-message delays (microsecond scale) so the
    /// network visibly reorders messages.
    pub fn with_artificial_delay(mut self, delay: DelayModel) -> Self {
        self.artificial_delay = Some(delay);
        self
    }

    /// Makes the network thread drop and/or duplicate messages with the
    /// given probabilities. The reliable link masks both.
    pub fn with_faults(mut self, drop_prob: f64, dup_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop_prob in [0, 1)");
        assert!((0.0..=1.0).contains(&dup_prob), "dup_prob in [0, 1]");
        self.drop_prob = drop_prob;
        self.dup_prob = dup_prob;
        self
    }

    /// Overrides the reliable-link tuning (e.g. [`LinkConfig::sabotaged`]
    /// to study what the faults do to an unprotected stack).
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }
}

/// The response of a completed m-operation.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The m-operation's identity.
    pub id: MOpId,
    /// Program outputs.
    pub outputs: Vec<Value>,
    /// Protocol classification.
    pub treated_as: MOpClass,
    /// Invocation event (ns since cluster epoch).
    pub invoked_at: EventTime,
    /// Response event (ns since cluster epoch).
    pub responded_at: EventTime,
}

/// Everything a finished cluster leaves behind.
#[derive(Debug)]
pub struct RuntimeReport {
    /// The recorded, validated history.
    pub history: History,
    /// Per-replica message metrics.
    pub replica_metrics: Vec<moc_protocol::ReplicaMetrics>,
}

/// Rejection returned by [`LiveCluster::try_invoke`] once the online
/// sentinel has quarantined a process: the containment hook fail-stops
/// further traffic from the offending replica (mirroring the fixed
/// sequencer's halt-on-restart negative control) instead of letting a
/// detected inconsistency spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quarantined {
    /// The process whose traffic is fenced off.
    pub process: ProcessId,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "process {} is quarantined by the consistency sentinel",
            self.process
        )
    }
}

impl std::error::Error for Quarantined {}

/// Events streamed from the replica threads to the sentinel thread.
enum MonitorEvent {
    Invoke(MOpId, u64),
    Complete(Box<MOpRecord>, u64),
}

enum Input<M> {
    Net {
        from: ProcessId,
        msg: M,
    },
    Invoke {
        program: Arc<Program>,
        args: Vec<Value>,
        reply: Sender<Reply>,
    },
    Shutdown,
}

enum NetCmd<M> {
    Route {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    Shutdown,
}

/// A running cluster of `n` replica threads plus a network thread.
///
/// Replicas talk through the [`ReliableLink`] sublayer: every wire frame
/// is a [`LinkMsg`], so the protocol state machines see exactly-once,
/// per-sender-FIFO channels even when the network thread is configured
/// to drop or duplicate messages.
pub struct LiveCluster<R: ReplicaProtocol> {
    inputs: Vec<Sender<Input<LinkMsg<R::Msg>>>>,
    net_tx: Sender<NetCmd<LinkMsg<R::Msg>>>,
    replica_handles: Vec<JoinHandle<ReplicaExit>>,
    net_handle: JoinHandle<()>,
    invoke_locks: Vec<Mutex<()>>,
    num_objects: usize,
    /// Per-process containment flags, set by the sentinel thread when a
    /// violation latches. All-false without a monitor attached.
    quarantine: Arc<Vec<AtomicBool>>,
    monitor_tx: Option<Sender<MonitorEvent>>,
    monitor_handle: Option<JoinHandle<MonitorRunSummary>>,
}

struct ReplicaExit {
    records: Vec<MOpRecord>,
    metrics: moc_protocol::ReplicaMetrics,
}

impl<R> LiveCluster<R>
where
    R: ReplicaProtocol + Send + 'static,
    R::Msg: Send + 'static,
{
    /// Spawns `n` replica threads and the network thread.
    pub fn start(n: usize, config: RuntimeConfig) -> Self {
        Self::start_inner(n, config, None)
    }

    /// Like [`LiveCluster::start`], but with an online consistency
    /// sentinel riding along: a dedicated monitor thread is fed every
    /// invocation and completion event from the replica threads, checks
    /// windows incrementally, and — on a latched violation — quarantines
    /// the culprit process so [`LiveCluster::try_invoke`] refuses its
    /// further traffic. Retrieve the verdicts and rolling certificates
    /// with [`LiveCluster::shutdown_with_monitor`].
    pub fn start_with_monitor(n: usize, config: RuntimeConfig, monitor: MonitorConfig) -> Self {
        Self::start_inner(n, config, Some(monitor))
    }

    fn start_inner(n: usize, config: RuntimeConfig, monitor: Option<MonitorConfig>) -> Self {
        assert!(n > 0, "need at least one process");
        let epoch = Instant::now();
        let (net_tx, net_rx) = unbounded::<NetCmd<LinkMsg<R::Msg>>>();
        let mut inputs = Vec::with_capacity(n);
        let mut replica_handles = Vec::with_capacity(n);
        let quarantine: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());

        let (monitor_tx, monitor_handle) = match monitor {
            None => (None, None),
            Some(mcfg) => {
                let (tx, rx) = unbounded::<MonitorEvent>();
                let flags = Arc::clone(&quarantine);
                let num_objects = config.num_objects;
                let handle = std::thread::Builder::new()
                    .name("sentinel".into())
                    .spawn(move || monitor_main(num_objects, mcfg, rx, flags))
                    .expect("spawn sentinel thread");
                (Some(tx), Some(handle))
            }
        };

        for p in 0..n {
            let me = ProcessId::new(p as u32);
            let (tx, rx) = unbounded::<Input<LinkMsg<R::Msg>>>();
            inputs.push(tx);
            let net_tx = net_tx.clone();
            let num_objects = config.num_objects;
            let link_cfg = config.link;
            let failover = config.failover_timeouts;
            let sentinel = monitor_tx.clone();
            replica_handles.push(
                std::thread::Builder::new()
                    .name(format!("replica-{p}"))
                    .spawn(move || {
                        replica_main::<R>(
                            me,
                            n,
                            num_objects,
                            link_cfg,
                            failover,
                            epoch,
                            rx,
                            net_tx,
                            sentinel,
                        )
                    })
                    .expect("spawn replica thread"),
            );
        }

        let node_inputs = inputs.clone();
        let faults = NetFaults {
            delay: config.artificial_delay,
            drop_prob: config.drop_prob,
            dup_prob: config.dup_prob,
            seed: config.seed,
        };
        let net_handle = std::thread::Builder::new()
            .name("network".into())
            .spawn(move || network_main::<LinkMsg<R::Msg>>(net_rx, node_inputs, faults))
            .expect("spawn network thread");

        LiveCluster {
            inputs,
            net_tx,
            replica_handles,
            net_handle,
            invoke_locks: (0..n).map(|_| Mutex::new(())).collect(),
            num_objects: config.num_objects,
            quarantine,
            monitor_tx,
            monitor_handle,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    /// Invokes `program(args)` as the next m-operation of `process`,
    /// blocking until its response event. Concurrent callers targeting the
    /// same process are serialized (processes are sequential threads of
    /// control in the model).
    ///
    /// # Panics
    ///
    /// Panics if the cluster is shutting down underneath the call, or if
    /// the sentinel has quarantined `process` (use
    /// [`LiveCluster::try_invoke`] to handle containment gracefully).
    pub fn invoke(&self, process: ProcessId, program: Arc<Program>, args: Vec<Value>) -> Reply {
        self.try_invoke(process, program, args)
            .expect("process not quarantined")
    }

    /// Like [`LiveCluster::invoke`], but refuses — instead of panicking —
    /// when the online sentinel has quarantined `process` after latching
    /// a consistency violation it attributes to that replica.
    pub fn try_invoke(
        &self,
        process: ProcessId,
        program: Arc<Program>,
        args: Vec<Value>,
    ) -> Result<Reply, Quarantined> {
        let _guard = self.invoke_locks[process.index()].lock();
        if self.quarantined(process) {
            return Err(Quarantined { process });
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.inputs[process.index()]
            .send(Input::Invoke {
                program,
                args,
                reply: reply_tx,
            })
            .expect("replica thread alive");
        Ok(reply_rx.recv().expect("replica answers every invocation"))
    }

    /// Whether the sentinel has fenced off `process` (always `false`
    /// without a monitor attached).
    pub fn quarantined(&self, process: ProcessId) -> bool {
        self.quarantine[process.index()].load(Ordering::SeqCst)
    }

    /// Stops the cluster: flushes in-flight messages, joins all threads and
    /// assembles the recorded history.
    pub fn shutdown(self) -> RuntimeReport {
        self.shutdown_with_monitor().0
    }

    /// Like [`LiveCluster::shutdown`], additionally returning the
    /// sentinel's run summary — rolling certificates, verdict timeline,
    /// any latched violation — when the cluster was started with
    /// [`LiveCluster::start_with_monitor`] (`None` otherwise).
    pub fn shutdown_with_monitor(self) -> (RuntimeReport, Option<MonitorRunSummary>) {
        // The network flushes its delay queue, then tells the replicas to
        // exit; anything a replica sends after that is dropped.
        self.net_tx
            .send(NetCmd::Shutdown)
            .expect("network thread alive");
        self.net_handle.join().expect("network thread panicked");
        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        let mut records = Vec::new();
        let mut replica_metrics = Vec::new();
        for h in self.replica_handles {
            let exit = h.join().expect("replica thread panicked");
            records.extend(exit.records);
            replica_metrics.push(exit.metrics);
        }
        // Every replica-held sender is gone once the threads are joined;
        // dropping ours disconnects the sentinel, which flushes and exits.
        drop(self.monitor_tx);
        let monitor = self
            .monitor_handle
            .map(|h| h.join().expect("sentinel thread panicked"));
        let history =
            History::new(self.num_objects, records).expect("runtime produced an invalid history");
        (
            RuntimeReport {
                history,
                replica_metrics,
            },
            monitor,
        )
    }
}

/// The sentinel thread: drains the event stream into an
/// [`OnlineMonitor`], and sets the containment flag of the culprit
/// process (all processes when the violation has no attributable
/// culprit) the moment a violation latches. Exits — flushing a final
/// window — when every event sender is gone.
fn monitor_main(
    num_objects: usize,
    cfg: MonitorConfig,
    rx: Receiver<MonitorEvent>,
    quarantine: Arc<Vec<AtomicBool>>,
) -> MonitorRunSummary {
    let mut mon = OnlineMonitor::new(num_objects, cfg);
    let mut last_ns = 0u64;
    let mut contained = false;
    while let Ok(ev) = rx.recv() {
        match ev {
            MonitorEvent::Invoke(id, at_ns) => {
                last_ns = last_ns.max(at_ns);
                mon.on_invoke(id, at_ns);
            }
            MonitorEvent::Complete(record, at_ns) => {
                last_ns = last_ns.max(at_ns);
                mon.on_complete(*record, at_ns);
            }
        }
        if contained {
            continue;
        }
        if let Some(v) = mon.violation() {
            contained = true;
            match v.culprit {
                Some(p) if p.index() < quarantine.len() => {
                    quarantine[p.index()].store(true, Ordering::SeqCst);
                }
                _ => {
                    for flag in quarantine.iter() {
                        flag.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
    }
    mon.flush(last_ns + 1);
    mon.into_summary()
}

#[allow(clippy::too_many_arguments)]
fn replica_main<R: ReplicaProtocol>(
    me: ProcessId,
    n: usize,
    num_objects: usize,
    link_cfg: LinkConfig,
    failover: (u64, u64),
    epoch: Instant,
    rx: Receiver<Input<LinkMsg<R::Msg>>>,
    net_tx: Sender<NetCmd<LinkMsg<R::Msg>>>,
    sentinel: Option<Sender<MonitorEvent>>,
) -> ReplicaExit {
    let mut replica = R::new(me, n, num_objects);
    replica.set_failover_timeouts(failover.0, failover.1);
    let mut link: ReliableLink<R::Msg> = ReliableLink::new(me, n, link_cfg);
    let mut next_seq = 0u32;
    let mut inflight: Option<(MOpId, EventTime, Sender<Reply>)> = None;
    let mut records = Vec::new();

    let now = |epoch: Instant| EventTime::from_nanos(epoch.elapsed().as_nanos() as u64);

    loop {
        // Wake for the next input or the earliest pending deadline —
        // link retransmission or failover suspicion — whichever first.
        let deadline = match (link.next_deadline(), replica.abcast_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let timeout = match deadline {
            Some(d) => Duration::from_nanos(d.saturating_sub(now(epoch).as_nanos())),
            None => Duration::from_secs(3600),
        };
        let input = match rx.recv_timeout(timeout) {
            Ok(input) => Some(input),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut out = Outbox::new(n);
        let mut wire = Vec::new();
        match input {
            Some(Input::Net { from, msg }) => {
                let ready = link.on_wire(from, msg, now(epoch).as_nanos(), &mut wire);
                for m in ready {
                    replica.on_message(from, m, &mut out);
                }
            }
            Some(Input::Invoke {
                program,
                args,
                reply,
            }) => {
                let id = MOpId::new(me, next_seq);
                next_seq += 1;
                assert!(inflight.is_none(), "process invoked while one is pending");
                let invoked_at = now(epoch);
                inflight = Some((id, invoked_at, reply));
                if let Some(tx) = &sentinel {
                    let _ = tx.send(MonitorEvent::Invoke(id, invoked_at.as_nanos()));
                }
                replica.invoke(MOperation::new(id, program, args), &mut out);
            }
            Some(Input::Shutdown) => break,
            // A deadline was reached: run both tick hooks (each only acts
            // on deadlines that are actually due).
            None => {
                link.on_tick(now(epoch).as_nanos(), &mut wire);
                replica.on_abcast_tick(now(epoch).as_nanos(), &mut out);
            }
        }
        // Frame the replica's sends through the link, then route. After
        // shutdown began the network may be gone — those messages have no
        // waiting client, so dropping them is safe.
        for (to, msg) in out.drain() {
            link.send(to, msg, now(epoch).as_nanos(), &mut wire);
        }
        for (to, frame) in wire {
            let _ = net_tx.send(NetCmd::Route {
                from: me,
                to,
                msg: frame,
            });
        }
        for c in replica.drain_completions() {
            let matched = inflight.as_ref().is_some_and(|(id, _, _)| *id == c.id);
            if !matched {
                // A completion with no (or the wrong) pending invocation:
                // a double-applied broadcast frame slipping past a
                // sabotaged link. The healthy stack never produces one;
                // instead of crashing the replica, surface it to the
                // sentinel (a re-completion of a settled id latches its
                // duplicate-completion violation) and drop it.
                if let Some(tx) = &sentinel {
                    let at = now(epoch);
                    let record = MOpRecord {
                        id: c.id,
                        invoked_at: at,
                        responded_at: at,
                        ops: c.ops,
                        outputs: c.outputs,
                        treated_as: c.treated_as,
                        label: c.label,
                    };
                    let _ = tx.send(MonitorEvent::Complete(Box::new(record), at.as_nanos()));
                }
                continue;
            }
            let (id, invoked_at, reply) = inflight.take().expect("matched above");
            let responded_at = now(epoch);
            let record = MOpRecord {
                id,
                invoked_at,
                responded_at,
                ops: c.ops,
                outputs: c.outputs.clone(),
                treated_as: c.treated_as,
                label: c.label,
            };
            if let Some(tx) = &sentinel {
                let _ = tx.send(MonitorEvent::Complete(
                    Box::new(record.clone()),
                    responded_at.as_nanos(),
                ));
            }
            records.push(record);
            let _ = reply.send(Reply {
                id,
                outputs: c.outputs,
                treated_as: c.treated_as,
                invoked_at,
                responded_at,
            });
        }
    }
    ReplicaExit {
        records,
        metrics: replica.metrics(),
    }
}

/// Fault knobs for the network thread, mirroring the simulator's
/// [`moc_sim::FaultPlan`] probabilities (schedules such as partitions
/// and crashes stay simulator-only, where virtual time makes them
/// reproducible).
struct NetFaults {
    delay: Option<DelayModel>,
    drop_prob: f64,
    dup_prob: f64,
    seed: u64,
}

fn network_main<M: Send + Clone>(
    rx: Receiver<NetCmd<M>>,
    nodes: Vec<Sender<Input<M>>>,
    faults: NetFaults,
) {
    let NetFaults {
        delay,
        drop_prob,
        dup_prob,
        seed,
    } = faults;
    let mut rng = StdRng::seed_from_u64(seed);
    // Fault decisions draw from their own stream so turning them on does
    // not perturb the delay sampler.
    let mut fault_rng = StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
    // Delay queue ordered by deadline; seq breaks ties FIFO.
    let mut heap: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut payloads: std::collections::HashMap<u64, (ProcessId, ProcessId, M)> =
        std::collections::HashMap::new();
    let mut next_id = 0u64;

    let forward = |nodes: &[Sender<Input<M>>], from: ProcessId, to: ProcessId, msg: M| {
        let _ = nodes[to.index()].send(Input::Net { from, msg });
    };

    loop {
        // Flush everything due.
        let now = Instant::now();
        while let Some(Reverse((deadline, id))) = heap.peek().copied() {
            if deadline > now {
                break;
            }
            heap.pop();
            let (from, to, msg) = payloads.remove(&id).expect("payload exists");
            forward(&nodes, from, to, msg);
        }
        // Wait for the next command or the next deadline.
        let timeout = heap
            .peek()
            .map(|Reverse((deadline, _))| deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));
        match rx.recv_timeout(timeout) {
            Ok(NetCmd::Route { from, to, msg }) => {
                // Loopback is a process talking to itself: exempt from
                // faults, exactly as in the simulator.
                let remote = from != to;
                if remote && drop_prob > 0.0 && fault_rng.gen_bool(drop_prob) {
                    continue;
                }
                let copies = if remote && dup_prob > 0.0 && fault_rng.gen_bool(dup_prob) {
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    match delay {
                        None => forward(&nodes, from, to, msg.clone()),
                        Some(model) => {
                            let d = Duration::from_nanos(model.sample(&mut rng));
                            let id = next_id;
                            next_id += 1;
                            heap.push(Reverse((Instant::now() + d, id)));
                            payloads.insert(id, (from, to, msg.clone()));
                        }
                    }
                }
            }
            Ok(NetCmd::Shutdown) => {
                // Flush the remaining queue immediately, preserving the
                // scheduled order.
                let mut rest: Vec<_> = heap.into_sorted_vec();
                rest.reverse(); // into_sorted_vec on Reverse yields descending deadlines
                rest.sort_by_key(|Reverse(k)| *k);
                for Reverse((_, id)) in rest {
                    let (from, to, msg) = payloads.remove(&id).expect("payload exists");
                    forward(&nodes, from, to, msg);
                }
                return;
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_checker::conditions::{check, Condition, Strategy};
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_protocol::{MlinOverSequencer, MscOverIsis, MscOverSequencer};

    fn wx(val: i64) -> Arc<Program> {
        let mut b = ProgramBuilder::new("wx");
        b.write(ObjectId::new(0), imm(val)).ret(vec![]);
        Arc::new(b.build().unwrap())
    }

    fn rx() -> Arc<Program> {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    fn inc() -> Arc<Program> {
        let mut b = ProgramBuilder::new("inc");
        b.read(ObjectId::new(0), 0)
            .add(0, reg(0), imm(1))
            .write(ObjectId::new(0), reg(0))
            .ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(3, RuntimeConfig::new(1));
        cluster.invoke(ProcessId::new(0), wx(9), vec![]);
        let r = cluster.invoke(ProcessId::new(2), rx(), vec![]);
        assert_eq!(r.outputs, vec![9], "mlin query after update must see it");
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 2);
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied);
    }

    #[test]
    fn concurrent_clients_preserve_increments() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(
            4,
            RuntimeConfig::new(1).with_artificial_delay(DelayModel::Uniform {
                lo: 1_000,
                hi: 200_000,
            }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..4u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    c.invoke(ProcessId::new(p), inc(), vec![]);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let final_value = cluster.invoke(ProcessId::new(0), rx(), vec![]).outputs[0];
        // msc query reads the local copy; process 0 has applied every
        // delivered update... but some may still be in flight. Give the
        // cluster a moment to converge, then re-read.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut v = final_value;
        while v != 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            v = cluster.invoke(ProcessId::new(0), rx(), vec![]).outputs[0];
        }
        assert_eq!(v, 20, "all 20 increments must land");

        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        let sc = check(
            &report.history,
            Condition::MSequentialConsistency,
            Strategy::Auto,
        )
        .unwrap();
        assert!(sc.satisfied, "Theorem 15 on the live runtime");
    }

    #[test]
    fn single_process_cluster_works() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(1, RuntimeConfig::new(1));
        cluster.invoke(ProcessId::new(0), wx(3), vec![]);
        let r = cluster.invoke(ProcessId::new(0), rx(), vec![]);
        assert_eq!(r.outputs, vec![3]);
        assert!(r.invoked_at <= r.responded_at);
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 2);
    }

    #[test]
    fn heavy_delay_reordering_stays_consistent() {
        // Millisecond-scale random delays: messages overtake each other
        // constantly; the history must still check out.
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(
            3,
            RuntimeConfig::new(2)
                .with_artificial_delay(DelayModel::Exponential { mean: 1_000_000 }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12);
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn replies_carry_monotone_event_times_per_process() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(2, RuntimeConfig::new(1));
        let p = ProcessId::new(0);
        let r1 = cluster.invoke(p, wx(1), vec![]);
        let r2 = cluster.invoke(p, wx(2), vec![]);
        assert!(r1.responded_at <= r2.invoked_at, "process order in time");
        assert_eq!(r1.id.seq, 0);
        assert_eq!(r2.id.seq, 1);
        cluster.shutdown();
    }

    #[test]
    fn reliable_link_masks_drops_and_duplicates_live() {
        // A 20% drop / 10% dup network: the link's retransmissions and
        // dedup must keep every invocation completing and the history
        // m-linearizable.
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(
            3,
            RuntimeConfig::new(1)
                .with_artificial_delay(DelayModel::Uniform {
                    lo: 1_000,
                    hi: 100_000,
                })
                .with_faults(0.2, 0.1)
                .with_link(LinkConfig {
                    rto_ns: 1_000_000,
                    max_rto_ns: 20_000_000,
                    ..LinkConfig::default()
                }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12, "every invocation completed");
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn view_backend_works_live() {
        // The view-based broadcast on real threads and wall-clock
        // suspicion timers: no crash occurs, so view 0 must stay stable
        // (wall-clock timeouts absorb scheduling jitter) and the history
        // must be m-linearizable.
        let cluster: LiveCluster<moc_protocol::MlinOverView> = LiveCluster::start(
            3,
            RuntimeConfig::new(1).with_artificial_delay(DelayModel::Uniform {
                lo: 1_000,
                hi: 100_000,
            }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12, "every invocation completed");
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn monitored_cluster_emits_rolling_certs() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start_with_monitor(
            2,
            RuntimeConfig::new(1),
            MonitorConfig::new(Condition::MLinearizability).with_window(2),
        );
        for i in 0..4 {
            cluster.invoke(ProcessId::new(i % 2), wx(i as i64), vec![]);
            cluster.invoke(ProcessId::new((i + 1) % 2), rx(), vec![]);
        }
        assert!(!cluster.quarantined(ProcessId::new(0)));
        let (report, monitor) = cluster.shutdown_with_monitor();
        assert_eq!(report.history.len(), 8, "every invocation completed");
        let summary = monitor.expect("sentinel attached");
        assert!(summary.violation.is_none(), "{:?}", summary.violation);
        assert_eq!(summary.stats.completions, 8, "every completion streamed");
        assert!(
            !summary.certs.is_empty(),
            "quiescence points must emit rolling certificates"
        );
        for cert in &summary.certs {
            assert!(cert.admissible);
            let batch = check(&cert.window, Condition::MLinearizability, Strategy::Auto).unwrap();
            assert!(batch.satisfied, "streaming and batch verdicts agree");
        }
    }

    /// The sentinel thread end-to-end on a poisoned event stream: the
    /// classic store-buffering outcome (both m-operations read the
    /// initial value even though both writes happened) is inadmissible
    /// under m-SC, so the violation must latch and the containment flag
    /// of the attributed culprit must be set.
    #[test]
    fn sentinel_latches_violation_and_quarantines_culprit() {
        use moc_core::op::CompletedOp;
        let (tx, rx) = unbounded::<MonitorEvent>();
        let flags: Arc<Vec<AtomicBool>> =
            Arc::new((0..2).map(|_| AtomicBool::new(false)).collect());
        let cfg = MonitorConfig::new(Condition::MSequentialConsistency).with_window(1);
        let handle = {
            let flags = Arc::clone(&flags);
            std::thread::spawn(move || monitor_main(2, cfg, rx, flags))
        };
        let x = ObjectId::new(0);
        let y = ObjectId::new(1);
        let a_id = MOpId::new(ProcessId::new(0), 0);
        let b_id = MOpId::new(ProcessId::new(1), 0);
        let mk = |id: MOpId, ops: Vec<CompletedOp>| MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(10),
            ops,
            outputs: vec![],
            treated_as: MOpClass::Update,
            label: "sb".to_string(),
        };
        let a = mk(
            a_id,
            vec![
                CompletedOp::write(x, 1, a_id, 1),
                CompletedOp::read(y, 0, MOpId::INITIAL, 0),
            ],
        );
        let b = mk(
            b_id,
            vec![
                CompletedOp::write(y, 1, b_id, 1),
                CompletedOp::read(x, 0, MOpId::INITIAL, 0),
            ],
        );
        tx.send(MonitorEvent::Invoke(a_id, 0)).unwrap();
        tx.send(MonitorEvent::Invoke(b_id, 0)).unwrap();
        tx.send(MonitorEvent::Complete(Box::new(a), 10)).unwrap();
        tx.send(MonitorEvent::Complete(Box::new(b), 10)).unwrap();
        drop(tx);
        let summary = handle.join().unwrap();
        let v = summary.violation.as_ref().expect("violation latched");
        assert!(
            flags.iter().any(|f| f.load(Ordering::SeqCst)),
            "containment flag set"
        );
        if let Some(p) = v.culprit {
            assert!(flags[p.index()].load(Ordering::SeqCst), "culprit fenced");
        }
    }

    /// The containment hook at the invocation boundary: a quarantined
    /// process's traffic is refused while the rest of the cluster keeps
    /// operating.
    #[test]
    fn quarantined_process_is_fenced() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start_with_monitor(
            2,
            RuntimeConfig::new(1),
            MonitorConfig::new(Condition::MSequentialConsistency),
        );
        cluster.invoke(ProcessId::new(0), wx(1), vec![]);
        // Containment decision, as the sentinel thread would make it.
        cluster.quarantine[1].store(true, Ordering::SeqCst);
        let err = cluster
            .try_invoke(ProcessId::new(1), wx(2), vec![])
            .unwrap_err();
        assert_eq!(
            err,
            Quarantined {
                process: ProcessId::new(1)
            }
        );
        assert!(cluster.quarantined(ProcessId::new(1)));
        assert!(
            cluster.try_invoke(ProcessId::new(0), rx(), vec![]).is_ok(),
            "unaffected processes keep working"
        );
        let (report, monitor) = cluster.shutdown_with_monitor();
        assert_eq!(report.history.len(), 2, "the fenced invocation never ran");
        assert!(monitor.expect("sentinel attached").violation.is_none());
    }

    #[test]
    fn isis_backend_works_live() {
        let cluster: LiveCluster<MscOverIsis> = LiveCluster::start(3, RuntimeConfig::new(2));
        for i in 0..5 {
            cluster.invoke(ProcessId::new((i % 3) as u32), wx(i as i64), vec![]);
        }
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 5);
        assert!(report.replica_metrics.iter().any(|m| m.updates_applied > 0));
    }
}
