//! # moc-runtime
//!
//! A live, thread-based cluster hosting the consistency-protocol replicas
//! of `moc-protocol` — the same state machines that run on the
//! deterministic simulator, here driven by OS threads, crossbeam channels
//! and wall-clock time.
//!
//! Topology: one replica thread per process, plus a network thread that
//! routes every message and (optionally) applies randomized delivery
//! delays, reordering messages exactly as the paper's asynchronous channel
//! model allows. Clients block on [`LiveCluster::invoke`]; per-process
//! locks enforce the model's sequential-process rule (one outstanding
//! m-operation per process).
//!
//! Invocation and response events are stamped with nanoseconds since the
//! cluster epoch, so the history assembled at
//! [`LiveCluster::shutdown`] carries a genuine real-time order `~t` and
//! can be checked for m-linearizability.
//!
//! ```
//! use std::sync::Arc;
//! use moc_core::ids::ProcessId;
//! use moc_core::program::{imm, reg, ProgramBuilder};
//! use moc_protocol::MlinOverSequencer;
//! use moc_runtime::{LiveCluster, RuntimeConfig};
//!
//! let cluster: LiveCluster<MlinOverSequencer> =
//!     LiveCluster::start(2, RuntimeConfig::new(1));
//! let mut b = ProgramBuilder::new("wx");
//! b.write(moc_core::ids::ObjectId::new(0), imm(7)).ret(vec![]);
//! let wx = Arc::new(b.build()?);
//! let mut b = ProgramBuilder::new("rx");
//! b.read(moc_core::ids::ObjectId::new(0), 0).ret(vec![reg(0)]);
//! let rx = Arc::new(b.build()?);
//!
//! cluster.invoke(ProcessId::new(0), wx, vec![]);
//! let reply = cluster.invoke(ProcessId::new(1), rx, vec![]);
//! assert_eq!(reply.outputs, vec![7]);
//! let report = cluster.shutdown();
//! assert_eq!(report.history.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use moc_abcast::{LinkConfig, LinkMsg, Outbox, ReliableLink};
use moc_core::history::History;
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::program::Program;
use moc_core::value::Value;
use moc_protocol::{MOperation, ReplicaProtocol};
use moc_sim::DelayModel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt mixed into the seed for the network thread's fault sampler, so
/// enabling faults does not perturb the delay stream (mirrors the
/// simulator's convention).
const FAULT_SEED_SALT: u64 = 0x6d6f_635f_6368_616f;

/// Configuration for a live cluster.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Size of the shared-object universe.
    pub num_objects: usize,
    /// Artificial delivery delay injected by the network thread. `None`
    /// routes messages immediately (still asynchronously).
    pub artificial_delay: Option<DelayModel>,
    /// Seed for the delay sampler.
    pub seed: u64,
    /// Probability the network thread silently discards a routed message
    /// (loopback exempt). The reliable-link sublayer recovers the loss.
    pub drop_prob: f64,
    /// Probability a routed message is delivered twice, with independent
    /// delays (loopback exempt).
    pub dup_prob: f64,
    /// Reliable-link tuning. Wall-clock defaults (2ms base RTO, 50ms cap)
    /// absorb OS scheduling jitter; spurious retransmissions are made
    /// harmless by receive-side dedup.
    pub link: LinkConfig,
    /// Failover suspicion timeouts `(base_ns, max_ns)` for broadcasts
    /// with view-based failover. The simulator-scale defaults baked into
    /// the broadcast (tens of microseconds) would suspect a coordinator
    /// on every OS scheduling hiccup, so the runtime always overrides
    /// them with wall-clock values (20ms base, 500ms cap). False
    /// suspicions are safe but churn views. Ignored by broadcasts
    /// without failover.
    pub failover_timeouts: (u64, u64),
}

impl RuntimeConfig {
    /// A config with immediate routing and a fault-free network.
    pub fn new(num_objects: usize) -> Self {
        RuntimeConfig {
            num_objects,
            artificial_delay: None,
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            link: LinkConfig {
                rto_ns: 2_000_000,
                max_rto_ns: 50_000_000,
                ..LinkConfig::default()
            },
            failover_timeouts: (20_000_000, 500_000_000),
        }
    }

    /// Overrides the failover suspicion timeouts (base and backoff cap).
    pub fn with_failover_timeouts(mut self, base_ns: u64, max_ns: u64) -> Self {
        assert!(base_ns > 0 && base_ns <= max_ns, "need 0 < base <= max");
        self.failover_timeouts = (base_ns, max_ns);
        self
    }

    /// Injects randomized per-message delays (microsecond scale) so the
    /// network visibly reorders messages.
    pub fn with_artificial_delay(mut self, delay: DelayModel) -> Self {
        self.artificial_delay = Some(delay);
        self
    }

    /// Makes the network thread drop and/or duplicate messages with the
    /// given probabilities. The reliable link masks both.
    pub fn with_faults(mut self, drop_prob: f64, dup_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop_prob in [0, 1)");
        assert!((0.0..=1.0).contains(&dup_prob), "dup_prob in [0, 1]");
        self.drop_prob = drop_prob;
        self.dup_prob = dup_prob;
        self
    }

    /// Overrides the reliable-link tuning (e.g. [`LinkConfig::sabotaged`]
    /// to study what the faults do to an unprotected stack).
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }
}

/// The response of a completed m-operation.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The m-operation's identity.
    pub id: MOpId,
    /// Program outputs.
    pub outputs: Vec<Value>,
    /// Protocol classification.
    pub treated_as: MOpClass,
    /// Invocation event (ns since cluster epoch).
    pub invoked_at: EventTime,
    /// Response event (ns since cluster epoch).
    pub responded_at: EventTime,
}

/// Everything a finished cluster leaves behind.
#[derive(Debug)]
pub struct RuntimeReport {
    /// The recorded, validated history.
    pub history: History,
    /// Per-replica message metrics.
    pub replica_metrics: Vec<moc_protocol::ReplicaMetrics>,
}

enum Input<M> {
    Net {
        from: ProcessId,
        msg: M,
    },
    Invoke {
        program: Arc<Program>,
        args: Vec<Value>,
        reply: Sender<Reply>,
    },
    Shutdown,
}

enum NetCmd<M> {
    Route {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    Shutdown,
}

/// A running cluster of `n` replica threads plus a network thread.
///
/// Replicas talk through the [`ReliableLink`] sublayer: every wire frame
/// is a [`LinkMsg`], so the protocol state machines see exactly-once,
/// per-sender-FIFO channels even when the network thread is configured
/// to drop or duplicate messages.
pub struct LiveCluster<R: ReplicaProtocol> {
    inputs: Vec<Sender<Input<LinkMsg<R::Msg>>>>,
    net_tx: Sender<NetCmd<LinkMsg<R::Msg>>>,
    replica_handles: Vec<JoinHandle<ReplicaExit>>,
    net_handle: JoinHandle<()>,
    invoke_locks: Vec<Mutex<()>>,
    num_objects: usize,
}

struct ReplicaExit {
    records: Vec<MOpRecord>,
    metrics: moc_protocol::ReplicaMetrics,
}

impl<R> LiveCluster<R>
where
    R: ReplicaProtocol + Send + 'static,
    R::Msg: Send + 'static,
{
    /// Spawns `n` replica threads and the network thread.
    pub fn start(n: usize, config: RuntimeConfig) -> Self {
        assert!(n > 0, "need at least one process");
        let epoch = Instant::now();
        let (net_tx, net_rx) = unbounded::<NetCmd<LinkMsg<R::Msg>>>();
        let mut inputs = Vec::with_capacity(n);
        let mut replica_handles = Vec::with_capacity(n);

        for p in 0..n {
            let me = ProcessId::new(p as u32);
            let (tx, rx) = unbounded::<Input<LinkMsg<R::Msg>>>();
            inputs.push(tx);
            let net_tx = net_tx.clone();
            let num_objects = config.num_objects;
            let link_cfg = config.link;
            let failover = config.failover_timeouts;
            replica_handles.push(
                std::thread::Builder::new()
                    .name(format!("replica-{p}"))
                    .spawn(move || {
                        replica_main::<R>(me, n, num_objects, link_cfg, failover, epoch, rx, net_tx)
                    })
                    .expect("spawn replica thread"),
            );
        }

        let node_inputs = inputs.clone();
        let faults = NetFaults {
            delay: config.artificial_delay,
            drop_prob: config.drop_prob,
            dup_prob: config.dup_prob,
            seed: config.seed,
        };
        let net_handle = std::thread::Builder::new()
            .name("network".into())
            .spawn(move || network_main::<LinkMsg<R::Msg>>(net_rx, node_inputs, faults))
            .expect("spawn network thread");

        LiveCluster {
            inputs,
            net_tx,
            replica_handles,
            net_handle,
            invoke_locks: (0..n).map(|_| Mutex::new(())).collect(),
            num_objects: config.num_objects,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    /// Invokes `program(args)` as the next m-operation of `process`,
    /// blocking until its response event. Concurrent callers targeting the
    /// same process are serialized (processes are sequential threads of
    /// control in the model).
    ///
    /// # Panics
    ///
    /// Panics if the cluster is shutting down underneath the call.
    pub fn invoke(&self, process: ProcessId, program: Arc<Program>, args: Vec<Value>) -> Reply {
        let _guard = self.invoke_locks[process.index()].lock();
        let (reply_tx, reply_rx) = bounded(1);
        self.inputs[process.index()]
            .send(Input::Invoke {
                program,
                args,
                reply: reply_tx,
            })
            .expect("replica thread alive");
        reply_rx.recv().expect("replica answers every invocation")
    }

    /// Stops the cluster: flushes in-flight messages, joins all threads and
    /// assembles the recorded history.
    pub fn shutdown(self) -> RuntimeReport {
        // The network flushes its delay queue, then tells the replicas to
        // exit; anything a replica sends after that is dropped.
        self.net_tx
            .send(NetCmd::Shutdown)
            .expect("network thread alive");
        self.net_handle.join().expect("network thread panicked");
        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        let mut records = Vec::new();
        let mut replica_metrics = Vec::new();
        for h in self.replica_handles {
            let exit = h.join().expect("replica thread panicked");
            records.extend(exit.records);
            replica_metrics.push(exit.metrics);
        }
        let history =
            History::new(self.num_objects, records).expect("runtime produced an invalid history");
        RuntimeReport {
            history,
            replica_metrics,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn replica_main<R: ReplicaProtocol>(
    me: ProcessId,
    n: usize,
    num_objects: usize,
    link_cfg: LinkConfig,
    failover: (u64, u64),
    epoch: Instant,
    rx: Receiver<Input<LinkMsg<R::Msg>>>,
    net_tx: Sender<NetCmd<LinkMsg<R::Msg>>>,
) -> ReplicaExit {
    let mut replica = R::new(me, n, num_objects);
    replica.set_failover_timeouts(failover.0, failover.1);
    let mut link: ReliableLink<R::Msg> = ReliableLink::new(me, n, link_cfg);
    let mut next_seq = 0u32;
    let mut inflight: Option<(MOpId, EventTime, Sender<Reply>)> = None;
    let mut records = Vec::new();

    let now = |epoch: Instant| EventTime::from_nanos(epoch.elapsed().as_nanos() as u64);

    loop {
        // Wake for the next input or the earliest pending deadline —
        // link retransmission or failover suspicion — whichever first.
        let deadline = match (link.next_deadline(), replica.abcast_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let timeout = match deadline {
            Some(d) => Duration::from_nanos(d.saturating_sub(now(epoch).as_nanos())),
            None => Duration::from_secs(3600),
        };
        let input = match rx.recv_timeout(timeout) {
            Ok(input) => Some(input),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut out = Outbox::new(n);
        let mut wire = Vec::new();
        match input {
            Some(Input::Net { from, msg }) => {
                let ready = link.on_wire(from, msg, now(epoch).as_nanos(), &mut wire);
                for m in ready {
                    replica.on_message(from, m, &mut out);
                }
            }
            Some(Input::Invoke {
                program,
                args,
                reply,
            }) => {
                let id = MOpId::new(me, next_seq);
                next_seq += 1;
                assert!(inflight.is_none(), "process invoked while one is pending");
                inflight = Some((id, now(epoch), reply));
                replica.invoke(MOperation::new(id, program, args), &mut out);
            }
            Some(Input::Shutdown) => break,
            // A deadline was reached: run both tick hooks (each only acts
            // on deadlines that are actually due).
            None => {
                link.on_tick(now(epoch).as_nanos(), &mut wire);
                replica.on_abcast_tick(now(epoch).as_nanos(), &mut out);
            }
        }
        // Frame the replica's sends through the link, then route. After
        // shutdown began the network may be gone — those messages have no
        // waiting client, so dropping them is safe.
        for (to, msg) in out.drain() {
            link.send(to, msg, now(epoch).as_nanos(), &mut wire);
        }
        for (to, frame) in wire {
            let _ = net_tx.send(NetCmd::Route {
                from: me,
                to,
                msg: frame,
            });
        }
        for c in replica.drain_completions() {
            let (id, invoked_at, reply) = inflight.take().expect("completion matches invocation");
            assert_eq!(c.id, id);
            let responded_at = now(epoch);
            records.push(MOpRecord {
                id,
                invoked_at,
                responded_at,
                ops: c.ops,
                outputs: c.outputs.clone(),
                treated_as: c.treated_as,
                label: c.label,
            });
            let _ = reply.send(Reply {
                id,
                outputs: c.outputs,
                treated_as: c.treated_as,
                invoked_at,
                responded_at,
            });
        }
    }
    ReplicaExit {
        records,
        metrics: replica.metrics(),
    }
}

/// Fault knobs for the network thread, mirroring the simulator's
/// [`moc_sim::FaultPlan`] probabilities (schedules such as partitions
/// and crashes stay simulator-only, where virtual time makes them
/// reproducible).
struct NetFaults {
    delay: Option<DelayModel>,
    drop_prob: f64,
    dup_prob: f64,
    seed: u64,
}

fn network_main<M: Send + Clone>(
    rx: Receiver<NetCmd<M>>,
    nodes: Vec<Sender<Input<M>>>,
    faults: NetFaults,
) {
    let NetFaults {
        delay,
        drop_prob,
        dup_prob,
        seed,
    } = faults;
    let mut rng = StdRng::seed_from_u64(seed);
    // Fault decisions draw from their own stream so turning them on does
    // not perturb the delay sampler.
    let mut fault_rng = StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
    // Delay queue ordered by deadline; seq breaks ties FIFO.
    let mut heap: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut payloads: std::collections::HashMap<u64, (ProcessId, ProcessId, M)> =
        std::collections::HashMap::new();
    let mut next_id = 0u64;

    let forward = |nodes: &[Sender<Input<M>>], from: ProcessId, to: ProcessId, msg: M| {
        let _ = nodes[to.index()].send(Input::Net { from, msg });
    };

    loop {
        // Flush everything due.
        let now = Instant::now();
        while let Some(Reverse((deadline, id))) = heap.peek().copied() {
            if deadline > now {
                break;
            }
            heap.pop();
            let (from, to, msg) = payloads.remove(&id).expect("payload exists");
            forward(&nodes, from, to, msg);
        }
        // Wait for the next command or the next deadline.
        let timeout = heap
            .peek()
            .map(|Reverse((deadline, _))| deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));
        match rx.recv_timeout(timeout) {
            Ok(NetCmd::Route { from, to, msg }) => {
                // Loopback is a process talking to itself: exempt from
                // faults, exactly as in the simulator.
                let remote = from != to;
                if remote && drop_prob > 0.0 && fault_rng.gen_bool(drop_prob) {
                    continue;
                }
                let copies = if remote && dup_prob > 0.0 && fault_rng.gen_bool(dup_prob) {
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    match delay {
                        None => forward(&nodes, from, to, msg.clone()),
                        Some(model) => {
                            let d = Duration::from_nanos(model.sample(&mut rng));
                            let id = next_id;
                            next_id += 1;
                            heap.push(Reverse((Instant::now() + d, id)));
                            payloads.insert(id, (from, to, msg.clone()));
                        }
                    }
                }
            }
            Ok(NetCmd::Shutdown) => {
                // Flush the remaining queue immediately, preserving the
                // scheduled order.
                let mut rest: Vec<_> = heap.into_sorted_vec();
                rest.reverse(); // into_sorted_vec on Reverse yields descending deadlines
                rest.sort_by_key(|Reverse(k)| *k);
                for Reverse((_, id)) in rest {
                    let (from, to, msg) = payloads.remove(&id).expect("payload exists");
                    forward(&nodes, from, to, msg);
                }
                return;
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_checker::conditions::{check, Condition, Strategy};
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_protocol::{MlinOverSequencer, MscOverIsis, MscOverSequencer};

    fn wx(val: i64) -> Arc<Program> {
        let mut b = ProgramBuilder::new("wx");
        b.write(ObjectId::new(0), imm(val)).ret(vec![]);
        Arc::new(b.build().unwrap())
    }

    fn rx() -> Arc<Program> {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    fn inc() -> Arc<Program> {
        let mut b = ProgramBuilder::new("inc");
        b.read(ObjectId::new(0), 0)
            .add(0, reg(0), imm(1))
            .write(ObjectId::new(0), reg(0))
            .ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(3, RuntimeConfig::new(1));
        cluster.invoke(ProcessId::new(0), wx(9), vec![]);
        let r = cluster.invoke(ProcessId::new(2), rx(), vec![]);
        assert_eq!(r.outputs, vec![9], "mlin query after update must see it");
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 2);
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied);
    }

    #[test]
    fn concurrent_clients_preserve_increments() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(
            4,
            RuntimeConfig::new(1).with_artificial_delay(DelayModel::Uniform {
                lo: 1_000,
                hi: 200_000,
            }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..4u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    c.invoke(ProcessId::new(p), inc(), vec![]);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let final_value = cluster.invoke(ProcessId::new(0), rx(), vec![]).outputs[0];
        // msc query reads the local copy; process 0 has applied every
        // delivered update... but some may still be in flight. Give the
        // cluster a moment to converge, then re-read.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut v = final_value;
        while v != 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            v = cluster.invoke(ProcessId::new(0), rx(), vec![]).outputs[0];
        }
        assert_eq!(v, 20, "all 20 increments must land");

        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        let sc = check(
            &report.history,
            Condition::MSequentialConsistency,
            Strategy::Auto,
        )
        .unwrap();
        assert!(sc.satisfied, "Theorem 15 on the live runtime");
    }

    #[test]
    fn single_process_cluster_works() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(1, RuntimeConfig::new(1));
        cluster.invoke(ProcessId::new(0), wx(3), vec![]);
        let r = cluster.invoke(ProcessId::new(0), rx(), vec![]);
        assert_eq!(r.outputs, vec![3]);
        assert!(r.invoked_at <= r.responded_at);
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 2);
    }

    #[test]
    fn heavy_delay_reordering_stays_consistent() {
        // Millisecond-scale random delays: messages overtake each other
        // constantly; the history must still check out.
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(
            3,
            RuntimeConfig::new(2)
                .with_artificial_delay(DelayModel::Exponential { mean: 1_000_000 }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12);
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn replies_carry_monotone_event_times_per_process() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(2, RuntimeConfig::new(1));
        let p = ProcessId::new(0);
        let r1 = cluster.invoke(p, wx(1), vec![]);
        let r2 = cluster.invoke(p, wx(2), vec![]);
        assert!(r1.responded_at <= r2.invoked_at, "process order in time");
        assert_eq!(r1.id.seq, 0);
        assert_eq!(r2.id.seq, 1);
        cluster.shutdown();
    }

    #[test]
    fn reliable_link_masks_drops_and_duplicates_live() {
        // A 20% drop / 10% dup network: the link's retransmissions and
        // dedup must keep every invocation completing and the history
        // m-linearizable.
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(
            3,
            RuntimeConfig::new(1)
                .with_artificial_delay(DelayModel::Uniform {
                    lo: 1_000,
                    hi: 100_000,
                })
                .with_faults(0.2, 0.1)
                .with_link(LinkConfig {
                    rto_ns: 1_000_000,
                    max_rto_ns: 20_000_000,
                    ..LinkConfig::default()
                }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12, "every invocation completed");
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn view_backend_works_live() {
        // The view-based broadcast on real threads and wall-clock
        // suspicion timers: no crash occurs, so view 0 must stay stable
        // (wall-clock timeouts absorb scheduling jitter) and the history
        // must be m-linearizable.
        let cluster: LiveCluster<moc_protocol::MlinOverView> = LiveCluster::start(
            3,
            RuntimeConfig::new(1).with_artificial_delay(DelayModel::Uniform {
                lo: 1_000,
                hi: 100_000,
            }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12, "every invocation completed");
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn isis_backend_works_live() {
        let cluster: LiveCluster<MscOverIsis> = LiveCluster::start(3, RuntimeConfig::new(2));
        for i in 0..5 {
            cluster.invoke(ProcessId::new((i % 3) as u32), wx(i as i64), vec![]);
        }
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 5);
        assert!(report.replica_metrics.iter().any(|m| m.updates_applied > 0));
    }
}
