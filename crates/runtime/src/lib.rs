//! # moc-runtime
//!
//! A live, thread-based cluster hosting the consistency-protocol replicas
//! of `moc-protocol` — the same state machines that run on the
//! deterministic simulator, here driven by OS threads, crossbeam channels
//! and wall-clock time.
//!
//! Topology: one replica thread per process, plus a network thread that
//! routes every message and (optionally) applies randomized delivery
//! delays, reordering messages exactly as the paper's asynchronous channel
//! model allows. Clients block on [`LiveCluster::invoke`]; per-process
//! locks enforce the model's sequential-process rule (one outstanding
//! m-operation per process).
//!
//! Invocation and response events are stamped with nanoseconds since the
//! cluster epoch, so the history assembled at
//! [`LiveCluster::shutdown`] carries a genuine real-time order `~t` and
//! can be checked for m-linearizability.
//!
//! ```
//! use std::sync::Arc;
//! use moc_core::ids::ProcessId;
//! use moc_core::program::{imm, reg, ProgramBuilder};
//! use moc_protocol::MlinOverSequencer;
//! use moc_runtime::{LiveCluster, RuntimeConfig};
//!
//! let cluster: LiveCluster<MlinOverSequencer> =
//!     LiveCluster::start(2, RuntimeConfig::new(1));
//! let mut b = ProgramBuilder::new("wx");
//! b.write(moc_core::ids::ObjectId::new(0), imm(7)).ret(vec![]);
//! let wx = Arc::new(b.build()?);
//! let mut b = ProgramBuilder::new("rx");
//! b.read(moc_core::ids::ObjectId::new(0), 0).ret(vec![reg(0)]);
//! let rx = Arc::new(b.build()?);
//!
//! cluster.invoke(ProcessId::new(0), wx, vec![]);
//! let reply = cluster.invoke(ProcessId::new(1), rx, vec![]);
//! assert_eq!(reply.outputs, vec![7]);
//! let report = cluster.shutdown();
//! assert_eq!(report.history.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use moc_abcast::{LinkConfig, LinkMsg, Outbox, ReliableLink};
use moc_core::history::History;
use moc_core::ids::{MOpId, ProcessId};
use moc_core::mop::{EventTime, MOpClass, MOpRecord};
use moc_core::program::Program;
use moc_core::value::Value;
use moc_monitor::OnlineMonitor;
pub use moc_monitor::{MonitorConfig, MonitorRunSummary};
use moc_protocol::{MOperation, ReplicaProtocol};
use moc_sim::DelayModel;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt mixed into the seed for the network thread's fault sampler, so
/// enabling faults does not perturb the delay stream (mirrors the
/// simulator's convention).
const FAULT_SEED_SALT: u64 = 0x6d6f_635f_6368_616f;

/// Configuration for a live cluster.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Size of the shared-object universe.
    pub num_objects: usize,
    /// Artificial delivery delay injected by the network thread. `None`
    /// routes messages immediately (still asynchronously).
    pub artificial_delay: Option<DelayModel>,
    /// Seed for the delay sampler.
    pub seed: u64,
    /// Probability the network thread silently discards a routed message
    /// (loopback exempt). The reliable-link sublayer recovers the loss.
    pub drop_prob: f64,
    /// Probability a routed message is delivered twice, with independent
    /// delays (loopback exempt).
    pub dup_prob: f64,
    /// Reliable-link tuning. Wall-clock defaults (2ms base RTO, 50ms cap)
    /// absorb OS scheduling jitter; spurious retransmissions are made
    /// harmless by receive-side dedup.
    pub link: LinkConfig,
    /// Failover suspicion timeouts `(base_ns, max_ns)` for broadcasts
    /// with view-based failover. The simulator-scale defaults baked into
    /// the broadcast (tens of microseconds) would suspect a coordinator
    /// on every OS scheduling hiccup, so the runtime always overrides
    /// them with wall-clock values (20ms base, 500ms cap). False
    /// suspicions are safe but churn views. Ignored by broadcasts
    /// without failover.
    pub failover_timeouts: (u64, u64),
    /// Group-commit batching installed on every replica's broadcast
    /// before traffic starts (see
    /// [`moc_protocol::ReplicaProtocol::set_batching`]). `None` keeps
    /// one-fan-out-per-stamp ordering.
    pub batching: Option<moc_abcast::BatchConfig>,
}

impl RuntimeConfig {
    /// A config with immediate routing and a fault-free network.
    pub fn new(num_objects: usize) -> Self {
        RuntimeConfig {
            num_objects,
            artificial_delay: None,
            seed: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
            link: LinkConfig {
                rto_ns: 2_000_000,
                max_rto_ns: 50_000_000,
                ..LinkConfig::default()
            },
            failover_timeouts: (20_000_000, 500_000_000),
            batching: None,
        }
    }

    /// Enables group-commit batching on every replica's broadcast: pending
    /// submissions accumulate until `cfg.max_batch` items or
    /// `cfg.max_delay_ns` elapse, then stamp as one ordering frame.
    pub fn with_batching(mut self, cfg: moc_abcast::BatchConfig) -> Self {
        self.batching = Some(cfg);
        self
    }

    /// Overrides the failover suspicion timeouts (base and backoff cap).
    pub fn with_failover_timeouts(mut self, base_ns: u64, max_ns: u64) -> Self {
        assert!(base_ns > 0 && base_ns <= max_ns, "need 0 < base <= max");
        self.failover_timeouts = (base_ns, max_ns);
        self
    }

    /// Injects randomized per-message delays (microsecond scale) so the
    /// network visibly reorders messages.
    pub fn with_artificial_delay(mut self, delay: DelayModel) -> Self {
        self.artificial_delay = Some(delay);
        self
    }

    /// Makes the network thread drop and/or duplicate messages with the
    /// given probabilities. The reliable link masks both.
    pub fn with_faults(mut self, drop_prob: f64, dup_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&drop_prob), "drop_prob in [0, 1)");
        assert!((0.0..=1.0).contains(&dup_prob), "dup_prob in [0, 1]");
        self.drop_prob = drop_prob;
        self.dup_prob = dup_prob;
        self
    }

    /// Overrides the reliable-link tuning (e.g. [`LinkConfig::sabotaged`]
    /// to study what the faults do to an unprotected stack).
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }
}

/// The response of a completed m-operation.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The m-operation's identity.
    pub id: MOpId,
    /// Program outputs.
    pub outputs: Vec<Value>,
    /// Protocol classification.
    pub treated_as: MOpClass,
    /// Invocation event (ns since cluster epoch).
    pub invoked_at: EventTime,
    /// Response event (ns since cluster epoch).
    pub responded_at: EventTime,
}

/// Everything a finished cluster leaves behind.
#[derive(Debug)]
pub struct RuntimeReport {
    /// The recorded, validated history.
    pub history: History,
    /// Per-replica message metrics.
    pub replica_metrics: Vec<moc_protocol::ReplicaMetrics>,
    /// Per-replica reliable-link transport counters.
    pub link_stats: Vec<moc_abcast::LinkStats>,
    /// Per-replica invocation-pipeline counters.
    pub pipeline: Vec<PipelineMetrics>,
    /// Per-replica broadcast group-commit counters (all zero unless the
    /// cluster ran with [`RuntimeConfig::with_batching`]).
    pub batch_stats: Vec<moc_abcast::BatchStats>,
}

impl RuntimeReport {
    /// Cluster-wide transport counters (sum over replicas).
    pub fn total_link_stats(&self) -> moc_abcast::LinkStats {
        self.link_stats
            .iter()
            .fold(moc_abcast::LinkStats::default(), |a, s| a.merge(s))
    }

    /// Cluster-wide pipeline counters (sums; peak depth is the max).
    pub fn total_pipeline(&self) -> PipelineMetrics {
        self.pipeline
            .iter()
            .fold(PipelineMetrics::default(), |a, p| a.merge(p))
    }

    /// Cluster-wide group-commit counters (sum over replicas).
    pub fn total_batch_stats(&self) -> moc_abcast::BatchStats {
        let mut total = moc_abcast::BatchStats::default();
        for b in &self.batch_stats {
            total.merge(*b);
        }
        total
    }
}

/// Counters describing one replica thread's invocation pipeline: how
/// deep the in-flight window got, how long admissions waited behind the
/// read-your-writes gate, and whether any reply went unclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Invocations accepted by the replica thread.
    pub invocations: u64,
    /// Invocations retired (reply generated).
    pub retired: u64,
    /// Peak of admitted-but-uncompleted plus gate-queued invocations.
    pub peak_depth: u64,
    /// Completions that arrived before an earlier invocation of the same
    /// process finished (retired strictly FIFO via the stash).
    pub out_of_order_completions: u64,
    /// Total time invocations spent queued behind the admission gate
    /// before reaching the protocol.
    pub queue_residency_ns: u64,
    /// Replies whose client had gone away by retirement. A healthy
    /// harness never drops one.
    pub dropped_replies: u64,
}

impl PipelineMetrics {
    /// Combines counters from two replicas: sums, except `peak_depth`,
    /// which takes the max.
    pub fn merge(&self, other: &PipelineMetrics) -> PipelineMetrics {
        PipelineMetrics {
            invocations: self.invocations + other.invocations,
            retired: self.retired + other.retired,
            peak_depth: self.peak_depth.max(other.peak_depth),
            out_of_order_completions: self.out_of_order_completions
                + other.out_of_order_completions,
            queue_residency_ns: self.queue_residency_ns + other.queue_residency_ns,
            dropped_replies: self.dropped_replies + other.dropped_replies,
        }
    }
}

/// Rejection returned by [`LiveCluster::try_invoke`] once the online
/// sentinel has quarantined a process: the containment hook fail-stops
/// further traffic from the offending replica (mirroring the fixed
/// sequencer's halt-on-restart negative control) instead of letting a
/// detected inconsistency spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quarantined {
    /// The process whose traffic is fenced off.
    pub process: ProcessId,
}

impl std::fmt::Display for Quarantined {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "process {} is quarantined by the consistency sentinel",
            self.process
        )
    }
}

impl std::error::Error for Quarantined {}

/// Events streamed from the replica threads to the sentinel thread.
enum MonitorEvent {
    Invoke(MOpId, u64),
    Complete(Box<MOpRecord>, u64),
}

enum Input<M> {
    Net {
        from: ProcessId,
        msg: M,
    },
    Invoke {
        program: Arc<Program>,
        args: Vec<Value>,
        reply: Sender<Reply>,
    },
    Shutdown,
}

enum NetCmd<M> {
    Route {
        from: ProcessId,
        to: ProcessId,
        msg: M,
    },
    Shutdown,
}

/// A running cluster of `n` replica threads plus a network thread.
///
/// Replicas talk through the [`ReliableLink`] sublayer: every wire frame
/// is a [`LinkMsg`], so the protocol state machines see exactly-once,
/// per-sender-FIFO channels even when the network thread is configured
/// to drop or duplicate messages.
pub struct LiveCluster<R: ReplicaProtocol> {
    inputs: Vec<Sender<Input<LinkMsg<R::Msg>>>>,
    net_tx: Sender<NetCmd<LinkMsg<R::Msg>>>,
    replica_handles: Vec<JoinHandle<ReplicaExit>>,
    net_handle: JoinHandle<()>,
    invoke_locks: Vec<Mutex<()>>,
    num_objects: usize,
    /// Per-process containment flags, set by the sentinel thread when a
    /// violation latches. All-false without a monitor attached.
    quarantine: Arc<Vec<AtomicBool>>,
    monitor_tx: Option<Sender<MonitorEvent>>,
    monitor_handle: Option<JoinHandle<MonitorRunSummary>>,
}

struct ReplicaExit {
    records: Vec<MOpRecord>,
    metrics: moc_protocol::ReplicaMetrics,
    link_stats: moc_abcast::LinkStats,
    pipeline: PipelineMetrics,
    batch: moc_abcast::BatchStats,
}

impl<R> LiveCluster<R>
where
    R: ReplicaProtocol + Send + 'static,
    R::Msg: Send + 'static,
{
    /// Spawns `n` replica threads and the network thread.
    pub fn start(n: usize, config: RuntimeConfig) -> Self {
        Self::start_inner(n, config, None)
    }

    /// Like [`LiveCluster::start`], but with an online consistency
    /// sentinel riding along: a dedicated monitor thread is fed every
    /// invocation and completion event from the replica threads, checks
    /// windows incrementally, and — on a latched violation — quarantines
    /// the culprit process so [`LiveCluster::try_invoke`] refuses its
    /// further traffic. Retrieve the verdicts and rolling certificates
    /// with [`LiveCluster::shutdown_with_monitor`].
    pub fn start_with_monitor(n: usize, config: RuntimeConfig, monitor: MonitorConfig) -> Self {
        Self::start_inner(n, config, Some(monitor))
    }

    fn start_inner(n: usize, config: RuntimeConfig, monitor: Option<MonitorConfig>) -> Self {
        assert!(n > 0, "need at least one process");
        let epoch = Instant::now();
        let (net_tx, net_rx) = unbounded::<NetCmd<LinkMsg<R::Msg>>>();
        let mut inputs = Vec::with_capacity(n);
        let mut replica_handles = Vec::with_capacity(n);
        let quarantine: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());

        let (monitor_tx, monitor_handle) = match monitor {
            None => (None, None),
            Some(mcfg) => {
                let (tx, rx) = unbounded::<MonitorEvent>();
                let flags = Arc::clone(&quarantine);
                let num_objects = config.num_objects;
                let handle = std::thread::Builder::new()
                    .name("sentinel".into())
                    .spawn(move || monitor_main(num_objects, mcfg, rx, flags))
                    .expect("spawn sentinel thread");
                (Some(tx), Some(handle))
            }
        };

        for p in 0..n {
            let me = ProcessId::new(p as u32);
            let (tx, rx) = unbounded::<Input<LinkMsg<R::Msg>>>();
            inputs.push(tx);
            let net_tx = net_tx.clone();
            let num_objects = config.num_objects;
            let link_cfg = config.link;
            let failover = config.failover_timeouts;
            let batching = config.batching;
            let sentinel = monitor_tx.clone();
            replica_handles.push(
                std::thread::Builder::new()
                    .name(format!("replica-{p}"))
                    .spawn(move || {
                        replica_main::<R>(
                            me,
                            n,
                            num_objects,
                            link_cfg,
                            failover,
                            batching,
                            epoch,
                            rx,
                            net_tx,
                            sentinel,
                        )
                    })
                    .expect("spawn replica thread"),
            );
        }

        let node_inputs = inputs.clone();
        let faults = NetFaults {
            delay: config.artificial_delay,
            drop_prob: config.drop_prob,
            dup_prob: config.dup_prob,
            seed: config.seed,
        };
        let net_handle = std::thread::Builder::new()
            .name("network".into())
            .spawn(move || network_main::<LinkMsg<R::Msg>>(net_rx, node_inputs, faults))
            .expect("spawn network thread");

        LiveCluster {
            inputs,
            net_tx,
            replica_handles,
            net_handle,
            invoke_locks: (0..n).map(|_| Mutex::new(())).collect(),
            num_objects: config.num_objects,
            quarantine,
            monitor_tx,
            monitor_handle,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.inputs.len()
    }

    /// Invokes `program(args)` as the next m-operation of `process`,
    /// blocking until its response event. Concurrent callers targeting the
    /// same process are serialized (processes are sequential threads of
    /// control in the model).
    ///
    /// # Panics
    ///
    /// Panics if the cluster is shutting down underneath the call, or if
    /// the sentinel has quarantined `process` (use
    /// [`LiveCluster::try_invoke`] to handle containment gracefully).
    pub fn invoke(&self, process: ProcessId, program: Arc<Program>, args: Vec<Value>) -> Reply {
        self.try_invoke(process, program, args)
            .expect("process not quarantined")
    }

    /// Like [`LiveCluster::invoke`], but refuses — instead of panicking —
    /// when the online sentinel has quarantined `process` after latching
    /// a consistency violation it attributes to that replica.
    pub fn try_invoke(
        &self,
        process: ProcessId,
        program: Arc<Program>,
        args: Vec<Value>,
    ) -> Result<Reply, Quarantined> {
        let _guard = self.invoke_locks[process.index()].lock();
        if self.quarantined(process) {
            return Err(Quarantined { process });
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.inputs[process.index()]
            .send(Input::Invoke {
                program,
                args,
                reply: reply_tx,
            })
            .expect("replica thread alive");
        Ok(reply_rx.recv().expect("replica answers every invocation"))
    }

    /// Opens a pipelined invocation session for `process`: up to `window`
    /// m-operations may be in flight before
    /// [`PipelinedSession::invoke`] blocks. The session holds the
    /// process's invocation lock, so it is the process's sole thread of
    /// control until dropped; the replica preserves program order and
    /// read-your-writes (a query drains the pipeline before running).
    pub fn pipelined(&self, process: ProcessId, window: usize) -> PipelinedSession<'_, R> {
        assert!(window >= 1, "window must be at least 1");
        let guard = self.invoke_locks[process.index()].lock();
        PipelinedSession {
            cluster: self,
            process,
            window,
            outstanding: VecDeque::new(),
            _guard: guard,
        }
    }

    /// Whether the sentinel has fenced off `process` (always `false`
    /// without a monitor attached).
    pub fn quarantined(&self, process: ProcessId) -> bool {
        self.quarantine[process.index()].load(Ordering::SeqCst)
    }

    /// Stops the cluster: flushes in-flight messages, joins all threads and
    /// assembles the recorded history.
    pub fn shutdown(self) -> RuntimeReport {
        self.shutdown_with_monitor().0
    }

    /// Like [`LiveCluster::shutdown`], additionally returning the
    /// sentinel's run summary — rolling certificates, verdict timeline,
    /// any latched violation — when the cluster was started with
    /// [`LiveCluster::start_with_monitor`] (`None` otherwise).
    pub fn shutdown_with_monitor(self) -> (RuntimeReport, Option<MonitorRunSummary>) {
        // The network flushes its delay queue, then tells the replicas to
        // exit; anything a replica sends after that is dropped.
        self.net_tx
            .send(NetCmd::Shutdown)
            .expect("network thread alive");
        self.net_handle.join().expect("network thread panicked");
        for tx in &self.inputs {
            let _ = tx.send(Input::Shutdown);
        }
        let mut records = Vec::new();
        let mut replica_metrics = Vec::new();
        let mut link_stats = Vec::new();
        let mut pipeline = Vec::new();
        let mut batch_stats = Vec::new();
        for h in self.replica_handles {
            let exit = h.join().expect("replica thread panicked");
            records.extend(exit.records);
            replica_metrics.push(exit.metrics);
            link_stats.push(exit.link_stats);
            pipeline.push(exit.pipeline);
            batch_stats.push(exit.batch);
        }
        // Every replica-held sender is gone once the threads are joined;
        // dropping ours disconnects the sentinel, which flushes and exits.
        drop(self.monitor_tx);
        let monitor = self
            .monitor_handle
            .map(|h| h.join().expect("sentinel thread panicked"));
        let history =
            History::new(self.num_objects, records).expect("runtime produced an invalid history");
        (
            RuntimeReport {
                history,
                replica_metrics,
                link_stats,
                pipeline,
                batch_stats,
            },
            monitor,
        )
    }
}

/// A window of in-flight invocations for one process, created by
/// [`LiveCluster::pipelined`]. Replaces the one-at-a-time blocking
/// [`LiveCluster::invoke`] discipline with a bounded pipeline: new
/// invocations are sent without waiting for earlier replies until
/// `window` are outstanding, then each further invocation retires (and
/// returns) the oldest reply first.
///
/// Replies always come back in invocation order. Dropping the session
/// drains any outstanding replies, so no invocation is abandoned.
pub struct PipelinedSession<'a, R: ReplicaProtocol> {
    cluster: &'a LiveCluster<R>,
    process: ProcessId,
    window: usize,
    outstanding: VecDeque<Receiver<Reply>>,
    _guard: parking_lot::MutexGuard<'a, ()>,
}

impl<R> PipelinedSession<'_, R>
where
    R: ReplicaProtocol + Send + 'static,
    R::Msg: Send + 'static,
{
    /// Sends `program(args)` as the process's next m-operation without
    /// waiting for its reply. If the window was full, first blocks for —
    /// and returns — the oldest outstanding reply. Refuses (leaving the
    /// pipeline intact) once the sentinel has quarantined the process.
    pub fn invoke(
        &mut self,
        program: Arc<Program>,
        args: Vec<Value>,
    ) -> Result<Option<Reply>, Quarantined> {
        if self.cluster.quarantined(self.process) {
            return Err(Quarantined {
                process: self.process,
            });
        }
        let retired = if self.outstanding.len() >= self.window {
            let rx = self.outstanding.pop_front().expect("window is full");
            Some(rx.recv().expect("replica answers every invocation"))
        } else {
            None
        };
        let (reply_tx, reply_rx) = bounded(1);
        self.cluster.inputs[self.process.index()]
            .send(Input::Invoke {
                program,
                args,
                reply: reply_tx,
            })
            .expect("replica thread alive");
        self.outstanding.push_back(reply_rx);
        Ok(retired)
    }

    /// Number of invocations currently awaiting replies.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Blocks for every outstanding reply, in invocation order.
    pub fn drain(&mut self) -> Vec<Reply> {
        self.outstanding
            .drain(..)
            .map(|rx| rx.recv().expect("replica answers every invocation"))
            .collect()
    }
}

impl<R: ReplicaProtocol> Drop for PipelinedSession<'_, R> {
    fn drop(&mut self) {
        for rx in self.outstanding.drain(..) {
            let _ = rx.recv();
        }
    }
}

/// The sentinel thread: drains the event stream into an
/// [`OnlineMonitor`], and sets the containment flag of the culprit
/// process (all processes when the violation has no attributable
/// culprit) the moment a violation latches. Exits — flushing a final
/// window — when every event sender is gone.
fn monitor_main(
    num_objects: usize,
    cfg: MonitorConfig,
    rx: Receiver<MonitorEvent>,
    quarantine: Arc<Vec<AtomicBool>>,
) -> MonitorRunSummary {
    let mut mon = OnlineMonitor::new(num_objects, cfg);
    let mut last_ns = 0u64;
    let mut contained = false;
    while let Ok(ev) = rx.recv() {
        match ev {
            MonitorEvent::Invoke(id, at_ns) => {
                last_ns = last_ns.max(at_ns);
                mon.on_invoke(id, at_ns);
            }
            MonitorEvent::Complete(record, at_ns) => {
                last_ns = last_ns.max(at_ns);
                mon.on_complete(*record, at_ns);
            }
        }
        if contained {
            continue;
        }
        if let Some(v) = mon.violation() {
            contained = true;
            match v.culprit {
                Some(p) if p.index() < quarantine.len() => {
                    quarantine[p.index()].store(true, Ordering::SeqCst);
                }
                _ => {
                    for flag in quarantine.iter() {
                        flag.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
    }
    mon.flush(last_ns + 1);
    mon.into_summary()
}

/// An invocation waiting behind the admission gate: classified but not
/// yet handed to the protocol.
struct QueuedInvoke {
    mop: MOperation,
    invoked_at: EventTime,
    reply: Sender<Reply>,
    is_update: bool,
}

/// An invocation the protocol is working on, awaiting its completion.
struct PendingInvoke {
    id: MOpId,
    invoked_at: EventTime,
    reply: Sender<Reply>,
}

#[allow(clippy::too_many_arguments)]
fn replica_main<R: ReplicaProtocol>(
    me: ProcessId,
    n: usize,
    num_objects: usize,
    link_cfg: LinkConfig,
    failover: (u64, u64),
    batching: Option<moc_abcast::BatchConfig>,
    epoch: Instant,
    rx: Receiver<Input<LinkMsg<R::Msg>>>,
    net_tx: Sender<NetCmd<LinkMsg<R::Msg>>>,
    sentinel: Option<Sender<MonitorEvent>>,
) -> ReplicaExit {
    let mut replica = R::new(me, n, num_objects);
    replica.set_failover_timeouts(failover.0, failover.1);
    if let Some(cfg) = batching {
        replica.set_batching(cfg);
    }
    let mut link: ReliableLink<R::Msg> = ReliableLink::new(me, n, link_cfg);
    let mut next_seq = 0u32;
    let mut records = Vec::new();
    // The invocation pipeline. `admission` holds invocations the gate has
    // not yet let through; `pending` holds invocations the protocol is
    // working on, in invocation (FIFO) order. Completions may surface out
    // of that order (e.g. ops on disjoint broadcast channels); they park
    // in `stash` and retire strictly FIFO so per-process records stay
    // sequential.
    let mut admission: VecDeque<QueuedInvoke> = VecDeque::new();
    let mut pending: VecDeque<PendingInvoke> = VecDeque::new();
    let mut stash: HashMap<MOpId, moc_protocol::Completion> = HashMap::new();
    let mut pending_updates_only = true;
    // High-water mark of recorded response times: pipelined invocations
    // overlap in real time, but the model's processes are sequential, so
    // recorded intervals are clamped to start no earlier than the
    // previous retirement. Client replies keep the true wall-clock times.
    let mut last_retired = EventTime::ZERO;
    let mut pipeline = PipelineMetrics::default();
    // Reused across iterations: the replica's outbox and the framed-wire
    // buffer, so steady-state message handling does not allocate them
    // per input.
    let mut out = Outbox::new(n);
    let mut wire = Vec::new();

    let now = |epoch: Instant| EventTime::from_nanos(epoch.elapsed().as_nanos() as u64);

    loop {
        // Wake for the next input or the earliest pending deadline —
        // link retransmission, failover suspicion, or a group-commit
        // flush — whichever first.
        let deadline = match (link.next_deadline(), replica.abcast_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let timeout = match deadline {
            Some(d) => Duration::from_nanos(d.saturating_sub(now(epoch).as_nanos())),
            None => Duration::from_secs(3600),
        };
        let input = match rx.recv_timeout(timeout) {
            Ok(input) => Some(input),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match input {
            Some(Input::Net { from, msg }) => {
                let ready = link.on_wire(from, msg, now(epoch).as_nanos(), &mut wire);
                for m in ready {
                    replica.on_message(from, m, &mut out);
                }
            }
            Some(Input::Invoke {
                program,
                args,
                reply,
            }) => {
                let id = MOpId::new(me, next_seq);
                next_seq += 1;
                let invoked_at = now(epoch);
                if let Some(tx) = &sentinel {
                    let _ = tx.send(MonitorEvent::Invoke(id, invoked_at.as_nanos()));
                }
                let mop = MOperation::new(id, program, args);
                let is_update = mop.is_update();
                admission.push_back(QueuedInvoke {
                    mop,
                    invoked_at,
                    reply,
                    is_update,
                });
                pipeline.invocations += 1;
                pipeline.peak_depth = pipeline
                    .peak_depth
                    .max((pending.len() + admission.len()) as u64);
            }
            Some(Input::Shutdown) => break,
            // A deadline was reached: run both tick hooks (each only acts
            // on deadlines that are actually due).
            None => {
                link.on_tick(now(epoch).as_nanos(), &mut wire);
                replica.on_abcast_tick(now(epoch).as_nanos(), &mut out);
            }
        }
        // Retire completions and admit queued invocations until neither
        // makes progress. Admission can complete synchronously (a local
        // query) and retirement can open the gate for the next admission,
        // so the two interleave to a fixpoint.
        loop {
            let mut progress = false;
            for c in replica.drain_completions() {
                progress = true;
                let in_pipeline = pending.iter().any(|p| p.id == c.id);
                if !in_pipeline || stash.contains_key(&c.id) {
                    // A completion with no pending invocation (or a second
                    // completion of one): a double-applied broadcast frame
                    // slipping past a sabotaged link. The healthy stack
                    // never produces one; instead of crashing the replica,
                    // surface it to the sentinel (a re-completion of a
                    // settled id latches its duplicate-completion
                    // violation) and drop it.
                    if let Some(tx) = &sentinel {
                        let at = now(epoch);
                        let record = MOpRecord {
                            id: c.id,
                            invoked_at: at,
                            responded_at: at,
                            ops: c.ops,
                            outputs: c.outputs,
                            treated_as: c.treated_as,
                            label: c.label,
                        };
                        let _ = tx.send(MonitorEvent::Complete(Box::new(record), at.as_nanos()));
                    }
                    continue;
                }
                if pending.front().is_some_and(|p| p.id != c.id) {
                    pipeline.out_of_order_completions += 1;
                }
                stash.insert(c.id, c);
            }
            while let Some(front) = pending.front() {
                let Some(c) = stash.remove(&front.id) else {
                    break;
                };
                progress = true;
                let p = pending.pop_front().expect("front exists");
                if pending.is_empty() {
                    pending_updates_only = true;
                }
                let responded_at = now(epoch);
                let invoked_rec = p.invoked_at.max(last_retired);
                let responded_rec = responded_at.max(invoked_rec);
                last_retired = responded_rec;
                let record = MOpRecord {
                    id: p.id,
                    invoked_at: invoked_rec,
                    responded_at: responded_rec,
                    ops: c.ops,
                    outputs: c.outputs.clone(),
                    treated_as: c.treated_as,
                    label: c.label,
                };
                if let Some(tx) = &sentinel {
                    let _ = tx.send(MonitorEvent::Complete(
                        Box::new(record.clone()),
                        responded_rec.as_nanos(),
                    ));
                }
                records.push(record);
                pipeline.retired += 1;
                if p.reply
                    .send(Reply {
                        id: p.id,
                        outputs: c.outputs,
                        treated_as: c.treated_as,
                        invoked_at: p.invoked_at,
                        responded_at,
                    })
                    .is_err()
                {
                    pipeline.dropped_replies += 1;
                }
            }
            // The gate: an invocation is admitted while earlier ones are
            // still in flight only when it and everything in flight are
            // updates. A query waits for the pipeline to drain, so it
            // observes every earlier update of its own process
            // (read-your-writes); nothing is admitted past a pending
            // query.
            while let Some(head) = admission.front() {
                let open = pending.is_empty() || (head.is_update && pending_updates_only);
                if !open {
                    break;
                }
                let q = admission.pop_front().expect("head exists");
                progress = true;
                pending_updates_only = if pending.is_empty() {
                    q.is_update
                } else {
                    pending_updates_only && q.is_update
                };
                pipeline.queue_residency_ns += now(epoch)
                    .as_nanos()
                    .saturating_sub(q.invoked_at.as_nanos());
                pending.push_back(PendingInvoke {
                    id: q.mop.id,
                    invoked_at: q.invoked_at,
                    reply: q.reply,
                });
                replica.invoke(q.mop, &mut out);
            }
            if !progress {
                break;
            }
        }
        // Frame the replica's sends through the link, then route. After
        // shutdown began the network may be gone — those messages have no
        // waiting client, so dropping them is safe.
        for (to, msg) in out.drain() {
            link.send(to, msg, now(epoch).as_nanos(), &mut wire);
        }
        for (to, frame) in wire.drain(..) {
            let _ = net_tx.send(NetCmd::Route {
                from: me,
                to,
                msg: frame,
            });
        }
    }
    ReplicaExit {
        records,
        metrics: replica.metrics(),
        link_stats: link.stats(),
        pipeline,
        batch: replica.batch_stats(),
    }
}

/// Fault knobs for the network thread, mirroring the simulator's
/// [`moc_sim::FaultPlan`] probabilities (schedules such as partitions
/// and crashes stay simulator-only, where virtual time makes them
/// reproducible).
struct NetFaults {
    delay: Option<DelayModel>,
    drop_prob: f64,
    dup_prob: f64,
    seed: u64,
}

fn network_main<M: Send + Clone>(
    rx: Receiver<NetCmd<M>>,
    nodes: Vec<Sender<Input<M>>>,
    faults: NetFaults,
) {
    let NetFaults {
        delay,
        drop_prob,
        dup_prob,
        seed,
    } = faults;
    let mut rng = StdRng::seed_from_u64(seed);
    // Fault decisions draw from their own stream so turning them on does
    // not perturb the delay sampler.
    let mut fault_rng = StdRng::seed_from_u64(seed ^ FAULT_SEED_SALT);
    // Delay queue ordered by deadline; seq breaks ties FIFO.
    let mut heap: BinaryHeap<Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut payloads: std::collections::HashMap<u64, (ProcessId, ProcessId, M)> =
        std::collections::HashMap::new();
    let mut next_id = 0u64;

    let forward = |nodes: &[Sender<Input<M>>], from: ProcessId, to: ProcessId, msg: M| {
        let _ = nodes[to.index()].send(Input::Net { from, msg });
    };

    loop {
        // Flush everything due.
        let now = Instant::now();
        while let Some(Reverse((deadline, id))) = heap.peek().copied() {
            if deadline > now {
                break;
            }
            heap.pop();
            let (from, to, msg) = payloads.remove(&id).expect("payload exists");
            forward(&nodes, from, to, msg);
        }
        // Wait for the next command or the next deadline.
        let timeout = heap
            .peek()
            .map(|Reverse((deadline, _))| deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));
        match rx.recv_timeout(timeout) {
            Ok(NetCmd::Route { from, to, msg }) => {
                // Loopback is a process talking to itself: exempt from
                // faults, exactly as in the simulator.
                let remote = from != to;
                if remote && drop_prob > 0.0 && fault_rng.gen_bool(drop_prob) {
                    continue;
                }
                // Duplication is the only path that clones the payload;
                // the primary copy moves.
                let dup = if remote && dup_prob > 0.0 && fault_rng.gen_bool(dup_prob) {
                    Some(msg.clone())
                } else {
                    None
                };
                for m in dup.into_iter().chain(std::iter::once(msg)) {
                    match delay {
                        None => forward(&nodes, from, to, m),
                        Some(model) => {
                            let d = Duration::from_nanos(model.sample(&mut rng));
                            let id = next_id;
                            next_id += 1;
                            heap.push(Reverse((Instant::now() + d, id)));
                            payloads.insert(id, (from, to, m));
                        }
                    }
                }
            }
            Ok(NetCmd::Shutdown) => {
                // Flush the remaining queue immediately, preserving the
                // scheduled order.
                let mut rest: Vec<_> = heap.into_sorted_vec();
                rest.reverse(); // into_sorted_vec on Reverse yields descending deadlines
                rest.sort_by_key(|Reverse(k)| *k);
                for Reverse((_, id)) in rest {
                    let (from, to, msg) = payloads.remove(&id).expect("payload exists");
                    forward(&nodes, from, to, msg);
                }
                return;
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_checker::conditions::{check, Condition, Strategy};
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, ProgramBuilder};
    use moc_protocol::{MlinOverSequencer, MscOverIsis, MscOverSequencer};

    fn wx(val: i64) -> Arc<Program> {
        let mut b = ProgramBuilder::new("wx");
        b.write(ObjectId::new(0), imm(val)).ret(vec![]);
        Arc::new(b.build().unwrap())
    }

    fn rx() -> Arc<Program> {
        let mut b = ProgramBuilder::new("rx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    fn inc() -> Arc<Program> {
        let mut b = ProgramBuilder::new("inc");
        b.read(ObjectId::new(0), 0)
            .add(0, reg(0), imm(1))
            .write(ObjectId::new(0), reg(0))
            .ret(vec![reg(0)]);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(3, RuntimeConfig::new(1));
        cluster.invoke(ProcessId::new(0), wx(9), vec![]);
        let r = cluster.invoke(ProcessId::new(2), rx(), vec![]);
        assert_eq!(r.outputs, vec![9], "mlin query after update must see it");
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 2);
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied);
    }

    #[test]
    fn concurrent_clients_preserve_increments() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(
            4,
            RuntimeConfig::new(1).with_artificial_delay(DelayModel::Uniform {
                lo: 1_000,
                hi: 200_000,
            }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..4u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    c.invoke(ProcessId::new(p), inc(), vec![]);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let final_value = cluster.invoke(ProcessId::new(0), rx(), vec![]).outputs[0];
        // msc query reads the local copy; process 0 has applied every
        // delivered update... but some may still be in flight. Give the
        // cluster a moment to converge, then re-read.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut v = final_value;
        while v != 20 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
            v = cluster.invoke(ProcessId::new(0), rx(), vec![]).outputs[0];
        }
        assert_eq!(v, 20, "all 20 increments must land");

        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        let sc = check(
            &report.history,
            Condition::MSequentialConsistency,
            Strategy::Auto,
        )
        .unwrap();
        assert!(sc.satisfied, "Theorem 15 on the live runtime");
    }

    #[test]
    fn single_process_cluster_works() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(1, RuntimeConfig::new(1));
        cluster.invoke(ProcessId::new(0), wx(3), vec![]);
        let r = cluster.invoke(ProcessId::new(0), rx(), vec![]);
        assert_eq!(r.outputs, vec![3]);
        assert!(r.invoked_at <= r.responded_at);
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 2);
    }

    #[test]
    fn heavy_delay_reordering_stays_consistent() {
        // Millisecond-scale random delays: messages overtake each other
        // constantly; the history must still check out.
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(
            3,
            RuntimeConfig::new(2)
                .with_artificial_delay(DelayModel::Exponential { mean: 1_000_000 }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12);
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn replies_carry_monotone_event_times_per_process() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(2, RuntimeConfig::new(1));
        let p = ProcessId::new(0);
        let r1 = cluster.invoke(p, wx(1), vec![]);
        let r2 = cluster.invoke(p, wx(2), vec![]);
        assert!(r1.responded_at <= r2.invoked_at, "process order in time");
        assert_eq!(r1.id.seq, 0);
        assert_eq!(r2.id.seq, 1);
        cluster.shutdown();
    }

    #[test]
    fn reliable_link_masks_drops_and_duplicates_live() {
        // A 20% drop / 10% dup network: the link's retransmissions and
        // dedup must keep every invocation completing and the history
        // m-linearizable.
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start(
            3,
            RuntimeConfig::new(1)
                .with_artificial_delay(DelayModel::Uniform {
                    lo: 1_000,
                    hi: 100_000,
                })
                .with_faults(0.2, 0.1)
                .with_link(LinkConfig {
                    rto_ns: 1_000_000,
                    max_rto_ns: 20_000_000,
                    ..LinkConfig::default()
                }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12, "every invocation completed");
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn view_backend_works_live() {
        // The view-based broadcast on real threads and wall-clock
        // suspicion timers: no crash occurs, so view 0 must stay stable
        // (wall-clock timeouts absorb scheduling jitter) and the history
        // must be m-linearizable.
        let cluster: LiveCluster<moc_protocol::MlinOverView> = LiveCluster::start(
            3,
            RuntimeConfig::new(1).with_artificial_delay(DelayModel::Uniform {
                lo: 1_000,
                hi: 100_000,
            }),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 0..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                for i in 0..4 {
                    if i % 2 == 0 {
                        c.invoke(ProcessId::new(p), wx(p as i64 * 10 + i), vec![]);
                    } else {
                        c.invoke(ProcessId::new(p), rx(), vec![]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 12, "every invocation completed");
        let lin = check(&report.history, Condition::MLinearizability, Strategy::Auto).unwrap();
        assert!(lin.satisfied, "{:?}", lin.reason);
    }

    #[test]
    fn monitored_cluster_emits_rolling_certs() {
        let cluster: LiveCluster<MlinOverSequencer> = LiveCluster::start_with_monitor(
            2,
            RuntimeConfig::new(1),
            MonitorConfig::new(Condition::MLinearizability).with_window(2),
        );
        for i in 0..4 {
            cluster.invoke(ProcessId::new(i % 2), wx(i as i64), vec![]);
            cluster.invoke(ProcessId::new((i + 1) % 2), rx(), vec![]);
        }
        assert!(!cluster.quarantined(ProcessId::new(0)));
        let (report, monitor) = cluster.shutdown_with_monitor();
        assert_eq!(report.history.len(), 8, "every invocation completed");
        let summary = monitor.expect("sentinel attached");
        assert!(summary.violation.is_none(), "{:?}", summary.violation);
        assert_eq!(summary.stats.completions, 8, "every completion streamed");
        assert!(
            !summary.certs.is_empty(),
            "quiescence points must emit rolling certificates"
        );
        for cert in &summary.certs {
            assert!(cert.admissible);
            let batch = check(&cert.window, Condition::MLinearizability, Strategy::Auto).unwrap();
            assert!(batch.satisfied, "streaming and batch verdicts agree");
        }
    }

    /// The sentinel thread end-to-end on a poisoned event stream: the
    /// classic store-buffering outcome (both m-operations read the
    /// initial value even though both writes happened) is inadmissible
    /// under m-SC, so the violation must latch and the containment flag
    /// of the attributed culprit must be set.
    #[test]
    fn sentinel_latches_violation_and_quarantines_culprit() {
        use moc_core::op::CompletedOp;
        let (tx, rx) = unbounded::<MonitorEvent>();
        let flags: Arc<Vec<AtomicBool>> =
            Arc::new((0..2).map(|_| AtomicBool::new(false)).collect());
        let cfg = MonitorConfig::new(Condition::MSequentialConsistency).with_window(1);
        let handle = {
            let flags = Arc::clone(&flags);
            std::thread::spawn(move || monitor_main(2, cfg, rx, flags))
        };
        let x = ObjectId::new(0);
        let y = ObjectId::new(1);
        let a_id = MOpId::new(ProcessId::new(0), 0);
        let b_id = MOpId::new(ProcessId::new(1), 0);
        let mk = |id: MOpId, ops: Vec<CompletedOp>| MOpRecord {
            id,
            invoked_at: EventTime::from_nanos(0),
            responded_at: EventTime::from_nanos(10),
            ops,
            outputs: vec![],
            treated_as: MOpClass::Update,
            label: "sb".to_string(),
        };
        let a = mk(
            a_id,
            vec![
                CompletedOp::write(x, 1, a_id, 1),
                CompletedOp::read(y, 0, MOpId::INITIAL, 0),
            ],
        );
        let b = mk(
            b_id,
            vec![
                CompletedOp::write(y, 1, b_id, 1),
                CompletedOp::read(x, 0, MOpId::INITIAL, 0),
            ],
        );
        tx.send(MonitorEvent::Invoke(a_id, 0)).unwrap();
        tx.send(MonitorEvent::Invoke(b_id, 0)).unwrap();
        tx.send(MonitorEvent::Complete(Box::new(a), 10)).unwrap();
        tx.send(MonitorEvent::Complete(Box::new(b), 10)).unwrap();
        drop(tx);
        let summary = handle.join().unwrap();
        let v = summary.violation.as_ref().expect("violation latched");
        assert!(
            flags.iter().any(|f| f.load(Ordering::SeqCst)),
            "containment flag set"
        );
        if let Some(p) = v.culprit {
            assert!(flags[p.index()].load(Ordering::SeqCst), "culprit fenced");
        }
    }

    /// The containment hook at the invocation boundary: a quarantined
    /// process's traffic is refused while the rest of the cluster keeps
    /// operating.
    #[test]
    fn quarantined_process_is_fenced() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start_with_monitor(
            2,
            RuntimeConfig::new(1),
            MonitorConfig::new(Condition::MSequentialConsistency),
        );
        cluster.invoke(ProcessId::new(0), wx(1), vec![]);
        // Containment decision, as the sentinel thread would make it.
        cluster.quarantine[1].store(true, Ordering::SeqCst);
        let err = cluster
            .try_invoke(ProcessId::new(1), wx(2), vec![])
            .unwrap_err();
        assert_eq!(
            err,
            Quarantined {
                process: ProcessId::new(1)
            }
        );
        assert!(cluster.quarantined(ProcessId::new(1)));
        assert!(
            cluster.try_invoke(ProcessId::new(0), rx(), vec![]).is_ok(),
            "unaffected processes keep working"
        );
        let (report, monitor) = cluster.shutdown_with_monitor();
        assert_eq!(report.history.len(), 2, "the fenced invocation never ran");
        assert!(monitor.expect("sentinel attached").violation.is_none());
    }

    /// A pipelined session keeps several updates in flight at once: the
    /// replica's peak depth must exceed one, every reply must come back
    /// in invocation order with true (overlapping) wall-clock times, and
    /// the recorded history must still be sequential per process and
    /// m-sequentially consistent.
    #[test]
    fn pipelined_updates_overlap_and_stay_consistent() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(2, RuntimeConfig::new(1));
        let p = ProcessId::new(1);
        let mut replies = Vec::new();
        {
            let mut session = cluster.pipelined(p, 8);
            for i in 0..8 {
                if let Some(r) = session.invoke(wx(i), vec![]).unwrap() {
                    replies.push(r);
                }
            }
            assert!(session.in_flight() > 0, "window admits without blocking");
            replies.extend(session.drain());
        }
        assert_eq!(replies.len(), 8, "every pipelined invocation replied");
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.id.seq, i as u32, "replies retire in invocation order");
            assert!(r.invoked_at <= r.responded_at);
        }
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 8);
        let pipe = report.total_pipeline();
        assert_eq!(pipe.invocations, 8);
        assert_eq!(pipe.retired, 8);
        assert!(pipe.peak_depth > 1, "updates overlapped: {pipe:?}");
        assert_eq!(pipe.dropped_replies, 0);
        let sc = check(
            &report.history,
            Condition::MSequentialConsistency,
            Strategy::Auto,
        )
        .unwrap();
        assert!(sc.satisfied, "{:?}", sc.reason);
    }

    /// The admission gate: a query entering a pipeline of the process's
    /// own updates waits for them to apply, so it observes its own writes
    /// even on the local-query msc protocol.
    #[test]
    fn pipelined_query_reads_own_writes() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start(2, RuntimeConfig::new(1));
        let p = ProcessId::new(1);
        let mut session = cluster.pipelined(p, 4);
        session.invoke(wx(41), vec![]).unwrap();
        session.invoke(wx(42), vec![]).unwrap();
        session.invoke(rx(), vec![]).unwrap();
        let replies = session.drain();
        assert_eq!(replies.len(), 3);
        assert_eq!(
            replies[2].outputs,
            vec![42],
            "query gated behind the process's pending updates"
        );
        drop(session);
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 3);
    }

    /// Batching and pipelining together, with the sentinel attached: a
    /// burst of pipelined updates group-commits into multi-item ordering
    /// frames (occupancy above one), the monitor sees no violation, and
    /// the final history checks out.
    #[test]
    fn batched_pipelined_cluster_stays_clean_under_monitor() {
        let cluster: LiveCluster<MscOverSequencer> = LiveCluster::start_with_monitor(
            3,
            RuntimeConfig::new(1).with_batching(moc_abcast::BatchConfig {
                max_batch: 4,
                max_delay_ns: 50_000_000,
            }),
            MonitorConfig::new(Condition::MSequentialConsistency).with_window(2),
        );
        let cluster = Arc::new(cluster);
        let mut joins = Vec::new();
        for p in 1..3u32 {
            let c = Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                let mut session = c.pipelined(ProcessId::new(p), 4);
                for i in 0..6 {
                    session.invoke(wx(p as i64 * 100 + i), vec![]).unwrap();
                }
                session.drain();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let cluster = Arc::try_unwrap(cluster).unwrap_or_else(|_| panic!("refs remain"));
        let (report, monitor) = cluster.shutdown_with_monitor();
        assert_eq!(report.history.len(), 12, "every invocation completed");
        let summary = monitor.expect("sentinel attached");
        assert!(summary.violation.is_none(), "{:?}", summary.violation);
        assert_eq!(summary.stats.completions, 12);
        let batch = report.total_batch_stats();
        assert_eq!(batch.items_stamped, 12, "every update went through a batch");
        assert!(
            batch.occupancy() > 1.0,
            "pipelined burst group-commits: {batch:?}"
        );
        assert_eq!(report.total_pipeline().dropped_replies, 0);
        let sc = check(
            &report.history,
            Condition::MSequentialConsistency,
            Strategy::Auto,
        )
        .unwrap();
        assert!(sc.satisfied, "{:?}", sc.reason);
    }

    #[test]
    fn isis_backend_works_live() {
        let cluster: LiveCluster<MscOverIsis> = LiveCluster::start(3, RuntimeConfig::new(2));
        for i in 0..5 {
            cluster.invoke(ProcessId::new((i % 3) as u32), wx(i as i64), vec![]);
        }
        let report = cluster.shutdown();
        assert_eq!(report.history.len(), 5);
        assert!(report.replica_metrics.iter().any(|m| m.updates_applied > 0));
    }
}
