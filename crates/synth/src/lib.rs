//! # moc-synth
//!
//! Grammar-driven adversarial workload synthesis.
//!
//! The repo's hand-written families only ever test histories a human
//! thought of. This crate enumerates the shared [`moc_workload::arb`]
//! grammar over small m-operation programs — bounded processes, objects
//! and operations per m-op, partially overlapping intervals, free read
//! provenance — and hunts the *boundary* of the paper's admissibility
//! problem (D 4.7, NP-complete by Theorems 1–2):
//!
//! * **`lbi`** — legal-but-inadmissible: every read observes a real write
//!   under the closed base relation (D 4.6 legality of `~H`), yet no
//!   legal sequential extension exists, and the precedence analysis finds
//!   no `~H+` cycle — the verdict costs a genuine exhaustive search.
//! * **`edge`** — the derived configuration misses the Theorem 7
//!   polynomial fast path by exactly one uncovered conflict pair.
//! * **`peak`** — the pruned engine's node count is maximal among all
//!   enumerated specimens of the same size: the search-hardest shapes.
//! * **`cycle`** — refuted without search by a `~H+` cycle (D 4.12): the
//!   polynomial-refutation boundary and the zero-search stress base.
//!
//! Candidates are deduplicated up to isomorphism (process/object/value
//! renaming and record reordering) by a Weisfeiler–Leman colour
//! refinement over the typed structure graph (process order, reads-from,
//! co-writer edges) — the same commutation structure PR 7's symmetry
//! reduction exploits: records with disjoint footprints are
//! interchangeable, so permuted generations collapse to one canonical
//! serialization.
//!
//! Survivors are pinned three ways: as named seed-replayable families in
//! [`moc_workload::synth`], as a golden corpus under
//! `tests/fixtures/synth/`, and as stress rows in `BENCH_checker.json`.
//! [`verify_corpus`] re-runs the hunt and diffs it against the checked-in
//! corpus byte for byte — the CI regression gate.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;

use moc_analyze::{analyze_set, commute_set};
use moc_checker::conditions::Condition;
use moc_checker::{check_certified, Proof, SearchLimits};
use moc_core::constraints::Constraint;
use moc_core::history::History;
use moc_core::ids::MOpId;
use moc_core::op::OpKind;
use moc_core::program::{imm, Program, ProgramBuilder};
use moc_core::{codec, json, json::Json, legality};
use moc_workload::arb::{self, HistoryBounds};
use moc_workload::synth::{smoke_bounds, SynthCategory};

/// Manifest format tag and version.
pub const FORMAT: &str = "moc-synth-corpus";
/// Manifest version.
pub const VERSION: u32 = 1;

/// An enumeration grammar: which seeds to draw, under which bounds, and
/// how much search to spend deciding each candidate.
#[derive(Debug, Clone, Copy)]
pub struct Grammar {
    /// First seed (inclusive).
    pub seed_base: u64,
    /// Number of consecutive seeds to enumerate.
    pub seeds: u64,
    /// History grammar bounds.
    pub bounds: HistoryBounds,
    /// Per-candidate node budget for the certified checker.
    pub max_nodes: u64,
}

impl Grammar {
    /// The pinned smoke grammar: the corpus under `tests/fixtures/synth/`
    /// and the registry in [`moc_workload::synth`] are exactly the
    /// survivors of this enumeration. Changing it is a corpus-breaking
    /// event.
    pub fn smoke() -> Grammar {
        Grammar {
            seed_base: 0,
            seeds: 1024,
            bounds: smoke_bounds(),
            max_nodes: 200_000,
        }
    }
}

/// How the certified checker decided a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofKind {
    /// Admissible with a witness linearization.
    Witness,
    /// Refuted statically by a `~H+` cycle.
    Cycle,
    /// Refuted by exhaustive pruned search.
    Exhaustion,
}

impl ProofKind {
    /// Stable tag used in manifests and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ProofKind::Witness => "witness",
            ProofKind::Cycle => "cycle",
            ProofKind::Exhaustion => "exhaustion",
        }
    }
}

/// Everything the classification pipeline established about a candidate.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Checker verdict under m-sequential consistency.
    pub admissible: bool,
    /// Shape of the certificate's proof.
    pub proof: ProofKind,
    /// Pruned-engine nodes expanded (0 for static refutations).
    pub nodes: u64,
    /// Symmetry-reduction skips recorded by the engine.
    pub symmetry_skips: u64,
    /// D 4.6 legality of `~H` under the closed base relation.
    pub legal_base: bool,
    /// Theorem 7 fast-path eligibility of the derived configuration.
    pub fast_path: bool,
    /// Fewest uncovered pairs across the OO/WW certificates (0 when
    /// certified).
    pub uncovered_pairs: usize,
    /// Conflicting pairs in the derived configuration's conflict graph.
    pub conflict_edges: usize,
    /// Commuting pairs in the derived configuration's commute matrix.
    pub commuting_pairs: usize,
}

/// A selected boundary specimen.
#[derive(Debug, Clone)]
pub struct Specimen {
    /// Stable name (`<category>-<index>` in selection order).
    pub name: String,
    /// The boundary category it was selected for.
    pub category: SynthCategory,
    /// Seed that regenerates it under the grammar bounds.
    pub seed: u64,
    /// The history itself.
    pub history: History,
    /// Classification results.
    pub class: Classification,
    /// The moc-cert text the checker emitted for it.
    pub cert: String,
    /// Regression cap: pinned nodes plus 25% slack.
    pub node_cap: u64,
}

/// Outcome of a hunt over one grammar.
#[derive(Debug, Clone)]
pub struct SynthReport {
    /// The grammar that was enumerated.
    pub grammar: Grammar,
    /// Seeds drawn.
    pub enumerated: u64,
    /// Distinct specimens after isomorphism dedup.
    pub unique: usize,
    /// Selected boundary specimens, in selection order.
    pub specimens: Vec<Specimen>,
}

/// The derived configuration of a history: one straight-line program per
/// m-operation (reads then writes over the same footprint), suitable for
/// the static analyzer. This is the configuration that *produces*
/// histories shaped like the specimen, so Theorem 7 eligibility of the
/// specimen is judged on it.
pub fn derived_programs(h: &History) -> Vec<Program> {
    h.records()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut b = ProgramBuilder::new(format!("m{i}"));
            let mut reg = 0u8;
            for op in &r.ops {
                if op.kind == OpKind::Read {
                    b.read(op.object, reg);
                    reg += 1;
                }
            }
            for op in &r.ops {
                if op.kind == OpKind::Write {
                    b.write(op.object, imm(op.value));
                }
            }
            b.ret(vec![]);
            b.build().expect("derived program is well-formed")
        })
        .collect()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { FNV_OFFSET } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

/// A canonical serialization of `h` up to isomorphism: process, object
/// and value renaming plus record reordering. Two histories with equal
/// keys are the same specimen.
///
/// Implementation: Weisfeiler–Leman colour refinement over the typed
/// structure graph — nodes are m-operation records; edges are process
/// order (`po`), reads-from (`rf`, per external read) and same-object
/// co-writer pairs (`ww`). Initial colours hash each record's label-free
/// shape (class, op kinds, init/self provenance, interval endpoint
/// ranks). After three rounds, records sort by colour and all names are
/// relabelled by first touch in that order. Commuting records (disjoint
/// footprints, no `rf` between them) receive interchangeable colours, so
/// generation-order permutations of independent records — exactly the
/// reorderings PR 7's symmetry reduction prunes — collapse to one key.
pub fn canonical_key(h: &History) -> String {
    let n = h.len();
    // Interval endpoint ranks.
    let mut endpoints: Vec<u64> = Vec::with_capacity(2 * n);
    for r in h.records() {
        endpoints.push(r.invoked_at.as_nanos());
        endpoints.push(r.responded_at.as_nanos());
    }
    endpoints.sort_unstable();
    endpoints.dedup();
    let rank = |t: u64| endpoints.binary_search(&t).unwrap() as u64;

    // Typed edges.
    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Tag {
        PoNext,
        PoPrev,
        RfIn,
        RfOut,
        Ww,
    }
    let mut adj: Vec<Vec<(Tag, usize)>> = vec![Vec::new(); n];
    for (i, r) in h.records().iter().enumerate() {
        // Process order: immediate successor on the same process.
        if let Some(next) = h.records().iter().position(|s| {
            s.id.process == r.id.process && s.id.seq > r.id.seq && {
                // immediate: no m-op strictly between
                !h.records().iter().any(|t| {
                    t.id.process == r.id.process && t.id.seq > r.id.seq && t.id.seq < s.id.seq
                })
            }
        }) {
            adj[i].push((Tag::PoNext, next));
            adj[next].push((Tag::PoPrev, i));
        }
        // Reads-from.
        for &(_, writer) in h.read_sources(moc_core::history::MOpIdx(i)) {
            if let Some(w) = writer {
                adj[i].push((Tag::RfOut, w.0));
                adj[w.0].push((Tag::RfIn, i));
            }
        }
    }
    // Co-writers per object.
    for o in 0..h.num_objects() {
        let writers: Vec<usize> = (0..n)
            .filter(|&i| {
                h.records()[i]
                    .ops
                    .iter()
                    .any(|op| op.kind == OpKind::Write && op.object.index() == o)
            })
            .collect();
        for (a, &i) in writers.iter().enumerate() {
            for &j in &writers[a + 1..] {
                adj[i].push((Tag::Ww, j));
                adj[j].push((Tag::Ww, i));
            }
        }
    }

    // Initial colours: label-free record shape.
    let mut color: Vec<u64> = h
        .records()
        .iter()
        .map(|r| {
            let mut c = fnv1a(0, r.treated_as.to_string().as_bytes());
            c = fnv_u64(c, rank(r.invoked_at.as_nanos()));
            c = fnv_u64(c, rank(r.responded_at.as_nanos()));
            let mut shapes: Vec<u64> = r
                .ops
                .iter()
                .map(|op| match op.kind {
                    OpKind::Write => 1,
                    OpKind::Read if op.writer == MOpId::INITIAL => 2,
                    OpKind::Read if op.writer == r.id => 3,
                    OpKind::Read => 4,
                })
                .collect();
            shapes.sort_unstable();
            for s in shapes {
                c = fnv_u64(c, s);
            }
            c
        })
        .collect();

    // Refinement rounds.
    for _ in 0..3 {
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let mut sig: Vec<(Tag, u64)> = adj[i].iter().map(|&(t, j)| (t, color[j])).collect();
            sig.sort_unstable();
            let mut c = fnv_u64(0, color[i]);
            for (t, cj) in sig {
                c = fnv_u64(c, t as u64);
                c = fnv_u64(c, cj);
            }
            next.push(c);
        }
        color = next;
    }

    // Canonical record order; ties fall back to the original index (only
    // genuinely automorphic records tie, so any tiebreak serializes the
    // same).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (color[i], i));

    // Relabel by first touch in canonical order.
    let mut procs: BTreeMap<u32, usize> = BTreeMap::new();
    let mut objs: BTreeMap<u32, usize> = BTreeMap::new();
    let mut vals: BTreeMap<i64, usize> = BTreeMap::new();
    let mut pos_of: Vec<usize> = vec![0; n];
    for (pos, &i) in order.iter().enumerate() {
        pos_of[i] = pos;
    }
    let mut out = String::new();
    for &i in &order {
        let r = &h.records()[i];
        let np = procs.len();
        let p = *procs.entry(r.id.process.index() as u32).or_insert(np);
        let _ = write!(
            out,
            "{} p{p} s{} i{} r{} [",
            r.treated_as,
            r.id.seq,
            rank(r.invoked_at.as_nanos()),
            rank(r.responded_at.as_nanos())
        );
        let mut rendered: Vec<String> = r
            .ops
            .iter()
            .map(|op| {
                let no = objs.len();
                let o = *objs.entry(op.object.index() as u32).or_insert(no);
                let nv = vals.len();
                let v = *vals.entry(op.value).or_insert(nv);
                match op.kind {
                    OpKind::Write => format!("w o{o} v{v}"),
                    OpKind::Read if op.writer == MOpId::INITIAL => format!("r o{o} init"),
                    OpKind::Read if op.writer == r.id => format!("r o{o} self"),
                    OpKind::Read => {
                        let w = h
                            .idx_of(op.writer)
                            .map(|w| pos_of[w.0])
                            .unwrap_or(usize::MAX);
                        format!("r o{o} v{v} m{w}")
                    }
                }
            })
            .collect();
        rendered.sort();
        let _ = writeln!(out, "{}]", rendered.join(", "));
    }
    out
}

/// Runs the full classification pipeline on one candidate: the certified
/// checker (verdict + proof + node count), D 4.6 base-relation legality,
/// and the static analyzer over the derived configuration (Theorem 7
/// fast path, uncovered pairs, conflict and commute structure).
pub fn classify(h: &History, max_nodes: u64) -> (Classification, String) {
    let limits = SearchLimits::with_max_nodes(max_nodes);
    let (report, cert) = check_certified(h, Condition::MSequentialConsistency, limits)
        .expect("bounded grammar candidates stay within limits");
    let proof = match cert.proof {
        Proof::Witness { .. } => ProofKind::Witness,
        Proof::Cycle(_) => ProofKind::Cycle,
        Proof::Exhaustion { .. } => ProofKind::Exhaustion,
    };
    let base = Condition::MSequentialConsistency
        .base_relation(h)
        .transitive_closure();
    let legal_base = legality::is_legal(h, &base);

    let programs = derived_programs(h);
    let refs: Vec<&Program> = programs.iter().collect();
    let set = analyze_set(&refs, &[]);
    // The WW certificate holds for every configuration by construction
    // (WW-obligated pairs are update pairs, covered by the broadcast
    // order), so the only fast-path route that can *fail* on a raw
    // history — which carries no broadcast order — is the OO
    // certificate. Its offending pairs are the conflict edges separating
    // the configuration from query-side Theorem 7 eligibility.
    let uncovered = match &set.certificate(Constraint::Oo).status {
        moc_analyze::CertificateStatus::NotCertified { pairs } => pairs.len(),
        _ => 0,
    };
    let conflict_edges = set.graph.edges.iter().filter(|e| e.conflicts()).count();
    let movers = commute_set(&refs, h.num_objects());
    let commuting_pairs = movers.cert.matrix.num_commuting_pairs();

    (
        Classification {
            admissible: report.satisfied,
            proof,
            nodes: report.stats.nodes,
            symmetry_skips: report.stats.symmetry_skips,
            legal_base,
            fast_path: set.fast_path,
            uncovered_pairs: uncovered,
            conflict_edges,
            commuting_pairs,
        },
        cert.to_text(),
    )
}

struct Candidate {
    seed: u64,
    history: History,
    class: Classification,
    cert: String,
}

fn node_cap(nodes: u64) -> u64 {
    nodes + nodes / 4 + 8
}

/// Enumerates the grammar, dedupes isomorphic candidates, classifies the
/// survivors and selects the boundary specimens. Fully deterministic in
/// the grammar: same input, byte-identical report.
pub fn hunt(grammar: &Grammar) -> SynthReport {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut cands: Vec<Candidate> = Vec::new();
    for i in 0..grammar.seeds {
        let seed = grammar.seed_base + i;
        let h = arb::history_from_seed(seed, &grammar.bounds);
        if !seen.insert(canonical_key(&h)) {
            continue;
        }
        let (class, cert) = classify(&h, grammar.max_nodes);
        cands.push(Candidate {
            seed,
            history: h,
            class,
            cert,
        });
    }

    let mut taken: BTreeSet<u64> = BTreeSet::new();
    let mut specimens: Vec<Specimen> = Vec::new();
    let mut select = |cat: SynthCategory, picks: Vec<&Candidate>| {
        let mut idx = 0usize;
        for c in picks {
            if !taken.insert(c.seed) {
                continue;
            }
            specimens.push(Specimen {
                name: format!("{}-{idx}", cat.tag()),
                category: cat,
                seed: c.seed,
                history: c.history.clone(),
                class: c.class.clone(),
                cert: c.cert.clone(),
                node_cap: node_cap(c.class.nodes),
            });
            idx += 1;
        }
    };

    // Legal-but-inadmissible: exhaustion-refuted with a genuine search.
    select(
        SynthCategory::LegalInadmissible,
        cands
            .iter()
            .filter(|c| {
                c.class.legal_base
                    && !c.class.admissible
                    && c.class.proof == ProofKind::Exhaustion
                    && c.class.nodes > 0
            })
            .take(3)
            .collect(),
    );
    // One conflict edge from the Theorem 7 fast path.
    select(
        SynthCategory::OneEdgeFromFastPath,
        cands
            .iter()
            .filter(|c| c.class.uncovered_pairs == 1)
            .take(3)
            .collect(),
    );
    // Pruned-engine node maxima per size: for every history size the
    // grammar produced, the candidate with the most expanded nodes; the
    // four hardest such maxima are pinned.
    {
        let mut per_size: BTreeMap<usize, &Candidate> = BTreeMap::new();
        for c in &cands {
            let size = c.history.len();
            let best = per_size.entry(size).or_insert(c);
            if c.class.nodes > best.class.nodes {
                *best = c;
            }
        }
        let mut peaks: Vec<&Candidate> = per_size
            .into_values()
            .filter(|c| c.class.nodes > 0)
            .collect();
        peaks.sort_by_key(|c| (std::cmp::Reverse(c.class.nodes), c.seed));
        select(SynthCategory::NodePeak, peaks.into_iter().take(4).collect());
    }
    // Static `~H+` cycle refutations.
    select(
        SynthCategory::StaticCycle,
        cands
            .iter()
            .filter(|c| c.class.proof == ProofKind::Cycle)
            .take(2)
            .collect(),
    );

    SynthReport {
        grammar: *grammar,
        enumerated: grammar.seeds,
        unique: cands.len(),
        specimens,
    }
}

fn grammar_json(g: &Grammar) -> Json {
    Json::Obj(vec![
        ("seed_base".into(), json::num(g.seed_base as i64)),
        ("seeds".into(), json::num(g.seeds as i64)),
        ("processes".into(), json::num(g.bounds.processes as i64)),
        (
            "mops_per_process".into(),
            json::num(g.bounds.mops_per_process as i64),
        ),
        ("objects".into(), json::num(g.bounds.objects as i64)),
        ("max_span".into(), json::num(g.bounds.max_span as i64)),
        (
            "update_permille".into(),
            json::num((g.bounds.update_fraction * 1000.0).round() as i64),
        ),
        ("max_nodes".into(), json::num(g.max_nodes as i64)),
    ])
}

fn specimen_json(s: &Specimen) -> Json {
    Json::Obj(vec![
        ("name".into(), json::str(s.name.clone())),
        ("category".into(), json::str(s.category.tag())),
        ("seed".into(), json::num(s.seed as i64)),
        ("m_ops".into(), json::num(s.history.len() as i64)),
        ("objects".into(), json::num(s.history.num_objects() as i64)),
        (
            "verdict".into(),
            json::str(if s.class.admissible {
                "admissible"
            } else {
                "inadmissible"
            }),
        ),
        ("proof".into(), json::str(s.class.proof.tag())),
        ("nodes".into(), json::num(s.class.nodes as i64)),
        ("node_cap".into(), json::num(s.node_cap as i64)),
        (
            "uncovered_pairs".into(),
            json::num(s.class.uncovered_pairs as i64),
        ),
        (
            "conflict_edges".into(),
            json::num(s.class.conflict_edges as i64),
        ),
        (
            "commuting_pairs".into(),
            json::num(s.class.commuting_pairs as i64),
        ),
        (
            "fnv1a".into(),
            json::str(format!("{:016x}", codec::fingerprint(&s.history))),
        ),
        (
            "history_file".into(),
            json::str(format!("{}.history.txt", s.name)),
        ),
        (
            "cert_file".into(),
            json::str(format!("{}.cert.json", s.name)),
        ),
        (
            "replay".into(),
            json::str(format!("moc synth --family {}", s.name)),
        ),
    ])
}

/// Renders the corpus manifest for a report.
pub fn render_manifest(report: &SynthReport) -> String {
    let doc = Json::Obj(vec![
        ("format".into(), json::str(FORMAT)),
        ("version".into(), json::num(VERSION as i64)),
        ("grammar".into(), grammar_json(&report.grammar)),
        ("enumerated".into(), json::num(report.enumerated as i64)),
        ("unique".into(), json::num(report.unique as i64)),
        (
            "specimens".into(),
            Json::Arr(report.specimens.iter().map(specimen_json).collect()),
        ),
    ]);
    doc.render()
}

/// Writes the corpus: `corpus.json` plus one history text file and one
/// certificate per specimen.
pub fn write_corpus(dir: &Path, report: &SynthReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("corpus.json"), render_manifest(report))?;
    for s in &report.specimens {
        std::fs::write(
            dir.join(format!("{}.history.txt", s.name)),
            codec::to_text(&s.history),
        )?;
        std::fs::write(dir.join(format!("{}.cert.json", s.name)), &s.cert)?;
    }
    Ok(())
}

/// One manifest entry of a checked-in corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Specimen name.
    pub name: String,
    /// Category tag.
    pub category: String,
    /// Regenerating seed.
    pub seed: u64,
    /// Pinned verdict.
    pub admissible: bool,
    /// Pinned proof kind tag.
    pub proof: String,
    /// Pinned node count at authoring time.
    pub nodes: u64,
    /// Regression cap on nodes.
    pub node_cap: u64,
    /// Pinned history fingerprint.
    pub fingerprint: u64,
    /// History file name relative to the corpus dir.
    pub history_file: String,
    /// Certificate file name relative to the corpus dir.
    pub cert_file: String,
    /// Replay command line.
    pub replay: String,
}

/// A parsed corpus: the grammar it was hunted under and its entries.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The pinned grammar.
    pub grammar: Grammar,
    /// Manifest entries in selection order.
    pub entries: Vec<CorpusEntry>,
}

fn uint(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("manifest field {key:?} must be a non-negative integer"))
}

fn text(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_owned)
        .ok_or_else(|| format!("manifest field {key:?} must be a string"))
}

/// Loads and parses a checked-in corpus manifest.
pub fn load_corpus(dir: &Path) -> Result<Corpus, String> {
    let path = dir.join("corpus.json");
    let raw = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&raw).map_err(|e| format!("{}: {e:?}", path.display()))?;
    if text(&doc, "format")? != FORMAT {
        return Err("not a moc-synth-corpus manifest".into());
    }
    if uint(&doc, "version")? != VERSION as u64 {
        return Err("unsupported corpus version".into());
    }
    let g = doc.get("grammar").ok_or("manifest missing grammar")?;
    let grammar = Grammar {
        seed_base: uint(g, "seed_base")?,
        seeds: uint(g, "seeds")?,
        bounds: HistoryBounds {
            processes: uint(g, "processes")? as usize,
            mops_per_process: uint(g, "mops_per_process")? as usize,
            objects: uint(g, "objects")? as usize,
            max_span: uint(g, "max_span")? as usize,
            update_fraction: uint(g, "update_permille")? as f64 / 1000.0,
        },
        max_nodes: uint(g, "max_nodes")?,
    };
    let mut entries = Vec::new();
    for s in doc
        .get("specimens")
        .and_then(|v| v.as_arr())
        .ok_or("manifest missing specimens")?
    {
        entries.push(CorpusEntry {
            name: text(s, "name")?,
            category: text(s, "category")?,
            seed: uint(s, "seed")?,
            admissible: text(s, "verdict")? == "admissible",
            proof: text(s, "proof")?,
            nodes: uint(s, "nodes")?,
            node_cap: uint(s, "node_cap")?,
            fingerprint: u64::from_str_radix(&text(s, "fnv1a")?, 16)
                .map_err(|e| format!("bad fnv1a: {e}"))?,
            history_file: text(s, "history_file")?,
            cert_file: text(s, "cert_file")?,
            replay: text(s, "replay")?,
        });
    }
    Ok(Corpus { grammar, entries })
}

/// Re-runs the hunt for a checked-in corpus and diffs the result against
/// it: same specimens (name, seed, verdict, fingerprint), regenerated
/// history files byte-identical, fresh node counts within the pinned
/// caps, and every checked-in certificate accepted by the independent
/// auditor against the regenerated history. Returns the mismatches.
pub fn verify_corpus(dir: &Path) -> Result<Vec<String>, String> {
    let corpus = load_corpus(dir)?;
    let report = hunt(&corpus.grammar);
    let mut problems = Vec::new();
    if report.specimens.len() != corpus.entries.len() {
        problems.push(format!(
            "hunt found {} specimens, corpus pins {}",
            report.specimens.len(),
            corpus.entries.len()
        ));
    }
    for (s, e) in report.specimens.iter().zip(&corpus.entries) {
        if s.name != e.name || s.seed != e.seed {
            problems.push(format!(
                "selection drift: hunt {}@{} vs corpus {}@{}",
                s.name, s.seed, e.name, e.seed
            ));
            continue;
        }
        if s.class.admissible != e.admissible {
            problems.push(format!("{}: verdict flipped", e.name));
        }
        if s.class.proof.tag() != e.proof {
            problems.push(format!(
                "{}: proof kind {} vs pinned {}",
                e.name,
                s.class.proof.tag(),
                e.proof
            ));
        }
        if s.class.nodes > e.node_cap {
            problems.push(format!(
                "{}: {} nodes exceeds pinned cap {}",
                e.name, s.class.nodes, e.node_cap
            ));
        }
        if codec::fingerprint(&s.history) != e.fingerprint {
            problems.push(format!("{}: history fingerprint drifted", e.name));
        }
        let hist_path = dir.join(&e.history_file);
        match std::fs::read_to_string(&hist_path) {
            Ok(fixture) => {
                if fixture != codec::to_text(&s.history) {
                    problems.push(format!(
                        "{}: history file differs from regeneration",
                        e.name
                    ));
                }
            }
            Err(err) => problems.push(format!("{}: {err}", hist_path.display())),
        }
        let cert_path = dir.join(&e.cert_file);
        match std::fs::read_to_string(&cert_path) {
            Ok(cert) => {
                if let Err(err) = moc_audit::audit(&s.history, &cert) {
                    problems.push(format!(
                        "{}: checked-in certificate fails audit: {err}",
                        e.name
                    ));
                }
            }
            Err(err) => problems.push(format!("{}: {err}", cert_path.display())),
        }
    }
    Ok(problems)
}

/// Renders a human-readable hunt report.
pub fn render_report(report: &SynthReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "synth: {} seeds enumerated, {} unique after isomorphism dedup, {} boundary specimens",
        report.enumerated,
        report.unique,
        report.specimens.len()
    );
    let _ = writeln!(
        out,
        "{:<8} {:>5} {:>5} {:>12} {:>10} {:>6} {:>5} replay",
        "name", "seed", "m-ops", "verdict", "proof", "nodes", "edge"
    );
    for s in &report.specimens {
        let _ = writeln!(
            out,
            "{:<8} {:>5} {:>5} {:>12} {:>10} {:>6} {:>5} moc synth --family {}",
            s.name,
            s.seed,
            s.history.len(),
            if s.class.admissible {
                "admissible"
            } else {
                "inadmissible"
            },
            s.class.proof.tag(),
            s.class.nodes,
            s.class.uncovered_pairs,
            s.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::ids::{ObjectId, ProcessId};
    use moc_core::mop::{EventTime, MOpClass, MOpRecord};
    use moc_core::op::CompletedOp;

    #[test]
    fn canonical_key_collapses_renamings() {
        // Two concurrent single-object writers and one reader, generated
        // twice with processes/objects/values permuted.
        let build = |procs: [u32; 3], obj: u32, vals: [i64; 2]| {
            let w0 = MOpId::new(ProcessId::new(procs[0]), 0);
            let w1 = MOpId::new(ProcessId::new(procs[1]), 0);
            let r0 = MOpId::new(ProcessId::new(procs[2]), 0);
            let o = ObjectId::new(obj);
            let rec = |id, ops| MOpRecord {
                id,
                invoked_at: EventTime::from_nanos(0),
                responded_at: EventTime::from_nanos(100),
                ops,
                outputs: Vec::new(),
                treated_as: MOpClass::Update,
                label: String::new(),
            };
            let records = vec![
                rec(w0, vec![CompletedOp::write(o, vals[0], w0, 1)]),
                rec(w1, vec![CompletedOp::write(o, vals[1], w1, 2)]),
                rec(r0, vec![CompletedOp::read(o, vals[0], w0, 1)]),
            ];
            History::new((obj + 1) as usize, records).unwrap()
        };
        let a = build([0, 1, 2], 0, [10, 20]);
        let b = build([5, 3, 9], 0, [77, -4]);
        assert_eq!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn canonical_key_separates_structures() {
        let g = Grammar::smoke();
        let a = arb::history_from_seed(0, &g.bounds);
        let b = arb::history_from_seed(1, &g.bounds);
        // Different seeds usually give different structures; these two do.
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn hunt_is_deterministic() {
        let g = Grammar {
            seeds: 24,
            ..Grammar::smoke()
        };
        let a = hunt(&g);
        let b = hunt(&g);
        assert_eq!(render_manifest(&a), render_manifest(&b));
    }

    #[test]
    fn derived_programs_mirror_footprints() {
        let h = arb::history_from_seed(3, &Grammar::smoke().bounds);
        let ps = derived_programs(&h);
        assert_eq!(ps.len(), h.len());
    }
}
