//! # moc-abcast
//!
//! Atomic (total-order) broadcast, the communication primitive the
//! Section 5 protocols of Mittal & Garg (1998) build on: "we use atomic
//! broadcast ... atomic broadcast ensures that all processes apply all
//! update m-operations in the same order."
//!
//! Two from-scratch implementations are provided as pure state machines
//! (no I/O; all sends go through an [`Outbox`], so they run unchanged on
//! the deterministic simulator and on the live thread runtime):
//!
//! * [`SequencerAbcast`] — a fixed sequencer (process 0) stamps global
//!   sequence numbers; receivers deliver gap-free in stamp order. Two
//!   message hops per broadcast; the sequencer is the serialization point.
//! * [`IsisAbcast`] — the ISIS/Skeen agreed-timestamp protocol: every
//!   process proposes a Lamport timestamp, the sender fixes the maximum as
//!   the final timestamp, and messages deliver in final-timestamp order
//!   once no pending message can precede them. Three hops, no fixed leader.
//!
//! Both guarantee, over reliable reordering channels:
//!
//! * **validity** — a broadcast item is eventually delivered everywhere;
//! * **integrity** — each item is delivered exactly once per process;
//! * **total order** — all processes deliver items in the same order.
//!
//! These guarantees are what make the protocols' `~ww` order (P 5.13,
//! P 5.14, P 5.23, P 5.24) well-defined.
//!
//! When the network itself is *not* reliable — it drops, duplicates, or
//! partitions ([`moc_sim::FaultPlan`]) — the [`link`] sublayer
//! ([`ReliableLink`]) re-establishes the reliable reordering channel
//! contract underneath, via sequence numbers, acknowledgements,
//! retransmission with exponential backoff, receive-side dedup, and a
//! crash-rejoin handshake. The broadcast state machines run unmodified
//! above it.

use std::fmt;

use moc_core::ids::ProcessId;

pub mod isis;
pub mod link;
pub mod sequencer;
pub mod sharded;
pub mod view;

pub use isis::IsisAbcast;
pub use link::{LinkConfig, LinkMsg, LinkStats, ReliableLink};
pub use sequencer::SequencerAbcast;
pub use sharded::{ShardItem, ShardedAbcast, ShardedMsg};
pub use view::{ViewAbcast, ViewConfig, ViewMsg};

/// Buffered outgoing messages produced by a state-machine step.
///
/// The hosting layer (simulator node or runtime thread) drains the outbox
/// and performs the actual sends.
#[derive(Debug)]
pub struct Outbox<M> {
    msgs: Vec<(ProcessId, M)>,
    n: usize,
}

impl<M> Outbox<M> {
    /// Creates an outbox for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        Outbox {
            msgs: Vec::new(),
            n,
        }
    }

    /// Number of processes in the system.
    pub fn num_processes(&self) -> usize {
        self.n
    }

    /// Queues `msg` for `to` (possibly the sender itself).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Queues a copy of `msg` for every process, including the sender.
    pub fn send_all(&mut self, msg: M)
    where
        M: Clone,
    {
        for p in 0..self.n {
            self.msgs.push((ProcessId::new(p as u32), msg.clone()));
        }
    }

    /// Drains the queued messages.
    pub fn drain(&mut self) -> Vec<(ProcessId, M)> {
        std::mem::take(&mut self.msgs)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

/// Group-commit tuning for broadcasts that support batched stamping.
///
/// A stamping endpoint (the fixed sequencer, a view leader, or a shard
/// channel's sequencer) assigns every submission its stamp *at arrival* —
/// so the agreed order is byte-identical to the unbatched protocol — but
/// defers the fan-out, draining up to `max_batch` stamped items into one
/// `OrderedBatch` wire message. A partially filled batch is flushed at
/// most `max_delay_ns` after its first item was stamped (the group-commit
/// window). One wire frame (and thus one [`ReliableLink`] ack) covers the
/// whole batch.
///
/// `max_batch <= 1` disables batching entirely: every stamp fans out
/// immediately as a plain `Ordered` message, exactly the pre-batching
/// protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Flush as soon as this many stamped items are pending.
    pub max_batch: usize,
    /// Flush a non-empty partial batch at most this long (virtual ns)
    /// after its first item was stamped.
    pub max_delay_ns: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        // Batching off: identical wire behaviour to the classic protocol.
        BatchConfig {
            max_batch: 1,
            max_delay_ns: 0,
        }
    }
}

impl BatchConfig {
    /// Whether this configuration actually batches.
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

/// Stamping-side batching counters: how many items an endpoint stamped
/// and how many wire flushes carried them. Occupancy = items / flushes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Items this endpoint stamped (as sequencer/leader).
    pub items_stamped: u64,
    /// Ordering fan-outs sent (single `Ordered` or one `OrderedBatch`).
    pub batches_flushed: u64,
}

impl BatchStats {
    /// Mean items per ordering fan-out (1.0 when batching is off).
    pub fn occupancy(&self) -> f64 {
        if self.batches_flushed == 0 {
            0.0
        } else {
            self.items_stamped as f64 / self.batches_flushed as f64
        }
    }

    /// Accumulates another endpoint's counters.
    pub fn merge(&mut self, other: BatchStats) {
        self.items_stamped += other.items_stamped;
        self.batches_flushed += other.batches_flushed;
    }
}

/// One delivered broadcast item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<T> {
    /// The process that broadcast the item.
    pub origin: ProcessId,
    /// Position of this item in the (agreed) global delivery order, counted
    /// locally: the k-th delivery at every process carries `global_seq = k`.
    pub global_seq: u64,
    /// The broadcast payload.
    pub item: T,
}

/// An atomic broadcast endpoint for one process.
///
/// Implementations are deterministic state machines; drive them with
/// [`Abcast::broadcast`] and [`Abcast::on_message`], then collect
/// [`Abcast::drain_delivered`] after each step.
pub trait Abcast<T> {
    /// Wire message type.
    type Msg: Clone + fmt::Debug;

    /// Creates the endpoint for process `me` in a system of `n` processes.
    fn new(me: ProcessId, n: usize) -> Self;

    /// Atomically broadcasts `item` to all processes (including `me`).
    fn broadcast(&mut self, item: T, out: &mut Outbox<Self::Msg>);

    /// Feeds an incoming protocol message.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>);

    /// Removes and returns items that became deliverable, in delivery
    /// order.
    fn drain_delivered(&mut self) -> Vec<Delivery<T>>;

    /// Number of items this endpoint has delivered so far.
    fn delivered_count(&self) -> u64;

    /// The earliest absolute time (ns) at which this endpoint wants
    /// [`Abcast::on_tick`] called, or `None` if it has no timed work.
    /// Protocols without failover timers never request ticks.
    fn next_deadline(&self) -> Option<u64> {
        None
    }

    /// Advances the endpoint's notion of time and fires any expired
    /// internal deadlines (e.g. crash-suspicion timeouts). Hosts call
    /// this when the deadline from [`Abcast::next_deadline`] is due; an
    /// early call is a harmless no-op.
    fn on_tick(&mut self, _now_ns: u64, _out: &mut Outbox<Self::Msg>) {}

    /// The hosting process restarted after a crash. Endpoints that
    /// cannot prove their volatile ordering state survived must react
    /// (halt, rejoin as a follower, …); the default assumes nothing is
    /// needed.
    fn on_restart(&mut self, _now_ns: u64, _out: &mut Outbox<Self::Msg>) {}

    /// Overrides the endpoint's failover timeouts (suspicion base and
    /// cap, in ns). A no-op for protocols without failover machinery.
    fn set_failover_timeouts(&mut self, _base_ns: u64, _max_ns: u64) {}

    /// Installs a certified shard partition ([`moc_core::shard::ShardPlan`]).
    /// Only conflict-sharded implementations ([`ShardedAbcast`]) react;
    /// single-order protocols ignore it. Must be called uniformly on every
    /// endpoint before any traffic flows.
    fn set_shard_plan(&mut self, _plan: moc_core::shard::ShardPlan) {}

    /// Installs the delivery-time view of a certified commutativity
    /// analysis ([`moc_core::commute::CommutePlan`]). Only the
    /// conflict-sharded implementation reacts: cross-shard items skip the
    /// barrier frontiers of shards they provably commute with, and items
    /// with an empty write footprint self-deliver without sequencer
    /// stamping. Must be installed uniformly before any traffic flows;
    /// soundness is exactly the certificate's — install only plans
    /// derived from an audited `moc-commute-cert`.
    fn set_commute_plan(&mut self, _plan: moc_core::commute::CommutePlan) {}

    /// How many deliveries so far bypassed an ordering wait via the
    /// commute plan (zero for protocols without the fast path).
    fn commute_fast_applied(&self) -> u64 {
        0
    }

    /// For multi-channel (sharded) implementations: the ordering channel
    /// each delivery so far came from, aligned with the cumulative
    /// delivery order. `None` means the protocol has a single global
    /// channel, so cross-replica delivery logs must be identical.
    fn delivery_channels(&self) -> Option<Vec<u32>> {
        None
    }

    /// The index of the replica-private pseudo-channel carrying read-only
    /// fast-path self-deliveries, if this implementation has one *armed*
    /// (a commute plan installed). Entries on this channel never cross
    /// the wire, so they legitimately differ across replicas — but every
    /// one of them must be locally issued and write-free, which harnesses
    /// verify instead of comparing the channel for equality.
    fn private_channel(&self) -> Option<u32> {
        None
    }

    /// Installs a group-commit batching configuration ([`BatchConfig`]).
    /// Only stamping protocols with a batched fan-out react; the default
    /// ignores it. Stamps are still assigned at submission arrival, so
    /// the agreed delivery order is unchanged at any batch size. Must be
    /// installed uniformly before any traffic flows.
    fn set_batching(&mut self, _cfg: BatchConfig) {}

    /// Stamping-side batching counters for this endpoint (zeros for
    /// protocols without batched stamping, and for pure followers).
    fn batch_stats(&self) -> BatchStats {
        BatchStats::default()
    }

    /// A deterministic, human-readable log of view/configuration changes
    /// this endpoint went through. Empty for static protocols.
    fn transcript(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Test support: hosts any [`Abcast`] implementation on the simulator and
/// checks the broadcast properties (validity, integrity, total order)
/// under randomized schedules. Public so property tests and downstream
/// crates can reuse it; not part of the stable API surface.
#[doc(hidden)]
pub mod testkit {

    use super::*;
    use moc_sim::{Context, DelayModel, NetworkConfig, Node, World};

    pub struct AbcastNode<A: Abcast<u64>> {
        pub inner: A,
        pub delivered: Vec<(ProcessId, u64)>,
        n: usize,
    }

    impl<A: Abcast<u64>> AbcastNode<A> {
        pub fn new(me: ProcessId, n: usize) -> Self {
            AbcastNode {
                inner: A::new(me, n),
                delivered: Vec::new(),
                n,
            }
        }

        fn drain(&mut self) {
            for d in self.inner.drain_delivered() {
                self.delivered.push((d.origin, d.item));
            }
        }

        pub fn submit(&mut self, item: u64, ctx: &mut Context<'_, A::Msg>) {
            let mut out = Outbox::new(self.n);
            self.inner.broadcast(item, &mut out);
            for (to, m) in out.drain() {
                ctx.send(to, m);
            }
            self.drain();
        }
    }

    impl<A: Abcast<u64>> Node for AbcastNode<A> {
        type Msg = A::Msg;
        fn on_message(&mut self, from: ProcessId, msg: A::Msg, ctx: &mut Context<'_, A::Msg>) {
            let mut out = Outbox::new(self.n);
            self.inner.on_message(from, msg, &mut out);
            for (to, m) in out.drain() {
                ctx.send(to, m);
            }
            self.drain();
        }
    }

    /// Runs `k` broadcasts from every one of `n` processes under the given
    /// delay model and asserts validity, integrity and total order.
    pub fn check_properties<A: Abcast<u64> + 'static>(
        n: usize,
        k: u64,
        delay: DelayModel,
        seed: u64,
    ) {
        let nodes: Vec<AbcastNode<A>> = (0..n)
            .map(|p| AbcastNode::new(ProcessId::new(p as u32), n))
            .collect();
        let mut world = World::new(nodes, NetworkConfig::with_delay(delay), seed);
        for p in 0..n {
            for i in 0..k {
                let item = (p as u64) * 1_000 + i;
                // Spread submissions over time so they interleave.
                world.schedule_call(
                    i * 37 + p as u64,
                    ProcessId::new(p as u32),
                    move |node, ctx| {
                        node.submit(item, ctx);
                    },
                );
            }
        }
        world.run_until_quiescent(5_000_000);
        let nodes = world.into_nodes();
        let reference = &nodes[0].delivered;
        // Validity + integrity: everything delivered exactly once.
        assert_eq!(reference.len(), n * k as usize, "validity");
        let mut items: Vec<u64> = reference.iter().map(|&(_, i)| i).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), n * k as usize, "integrity");
        // Total order: every process delivered the identical sequence.
        for node in &nodes[1..] {
            assert_eq!(&node.delivered, reference, "total order");
        }
    }

    /// Closed-loop submission, as the Section 5 protocols use abcast: each
    /// process broadcasts its next item only after its previous one was
    /// delivered locally (the m-operation's response event). Under this
    /// regime per-sender FIFO is guaranteed; assert it along with the
    /// three broadcast properties.
    pub fn check_closed_loop_fifo<A: Abcast<u64> + 'static>(
        n: usize,
        k: u64,
        delay: DelayModel,
        seed: u64,
    ) {
        struct Closed<A: Abcast<u64>> {
            node: AbcastNode<A>,
            submitted: u64,
            budget: u64,
            me: ProcessId,
        }
        impl<A: Abcast<u64>> Closed<A> {
            fn maybe_submit(&mut self, ctx: &mut Context<'_, A::Msg>) {
                let own_delivered = self
                    .node
                    .delivered
                    .iter()
                    .filter(|&&(o, _)| o == self.me)
                    .count() as u64;
                if self.submitted < self.budget && own_delivered == self.submitted {
                    let item = self.me.as_u32() as u64 * 1_000 + self.submitted;
                    self.submitted += 1;
                    self.node.submit(item, ctx);
                }
            }
        }
        impl<A: Abcast<u64>> Node for Closed<A> {
            type Msg = A::Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>) {
                self.maybe_submit(ctx);
            }
            fn on_message(&mut self, from: ProcessId, msg: A::Msg, ctx: &mut Context<'_, A::Msg>) {
                self.node.on_message(from, msg, ctx);
                self.maybe_submit(ctx);
            }
        }
        let nodes: Vec<Closed<A>> = (0..n)
            .map(|p| Closed {
                node: AbcastNode::new(ProcessId::new(p as u32), n),
                submitted: 0,
                budget: k,
                me: ProcessId::new(p as u32),
            })
            .collect();
        let mut world = World::new(nodes, NetworkConfig::with_delay(delay), seed);
        world.run_until_quiescent(5_000_000);
        let nodes = world.into_nodes();
        let reference = &nodes[0].node.delivered;
        assert_eq!(reference.len(), n * k as usize, "validity");
        for c in &nodes[1..] {
            assert_eq!(&c.node.delivered, reference, "total order");
        }
        for p in 0..n as u64 {
            let per: Vec<u64> = reference
                .iter()
                .filter(|&&(o, _)| o.index() as u64 == p)
                .map(|&(_, i)| i)
                .collect();
            let mut sorted = per.clone();
            sorted.sort_unstable();
            assert_eq!(per, sorted, "per-sender FIFO for P{p} under closed loop");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::check_properties;
    use super::*;
    use moc_sim::DelayModel;

    #[test]
    fn sequencer_properties_fifo_network() {
        check_properties::<SequencerAbcast<u64>>(3, 5, DelayModel::Fixed(100), 1);
    }

    #[test]
    fn sequencer_properties_reordering_network() {
        for seed in 0..8 {
            check_properties::<SequencerAbcast<u64>>(
                4,
                6,
                DelayModel::Uniform { lo: 10, hi: 20_000 },
                seed,
            );
        }
    }

    #[test]
    fn sequencer_properties_heavy_tail() {
        check_properties::<SequencerAbcast<u64>>(5, 4, DelayModel::Exponential { mean: 2_000 }, 9);
    }

    #[test]
    fn isis_properties_fifo_network() {
        check_properties::<IsisAbcast<u64>>(3, 5, DelayModel::Fixed(100), 1);
    }

    #[test]
    fn isis_properties_reordering_network() {
        for seed in 0..8 {
            check_properties::<IsisAbcast<u64>>(
                4,
                6,
                DelayModel::Uniform { lo: 10, hi: 20_000 },
                seed,
            );
        }
    }

    #[test]
    fn isis_properties_heavy_tail() {
        check_properties::<IsisAbcast<u64>>(5, 4, DelayModel::Exponential { mean: 2_000 }, 9);
    }

    #[test]
    fn isis_single_process_degenerate() {
        check_properties::<IsisAbcast<u64>>(1, 10, DelayModel::Fixed(5), 2);
    }

    #[test]
    fn sequencer_single_process_degenerate() {
        check_properties::<SequencerAbcast<u64>>(1, 10, DelayModel::Fixed(5), 2);
    }

    #[test]
    fn sequencer_closed_loop_fifo() {
        for seed in 0..4 {
            super::testkit::check_closed_loop_fifo::<SequencerAbcast<u64>>(
                4,
                5,
                DelayModel::Uniform { lo: 10, hi: 50_000 },
                seed,
            );
        }
    }

    #[test]
    fn isis_closed_loop_fifo() {
        for seed in 0..4 {
            super::testkit::check_closed_loop_fifo::<IsisAbcast<u64>>(
                4,
                5,
                DelayModel::Uniform { lo: 10, hi: 50_000 },
                seed,
            );
        }
    }

    #[test]
    fn view_properties_fifo_network() {
        check_properties::<ViewAbcast<u64>>(3, 5, DelayModel::Fixed(100), 1);
    }

    #[test]
    fn view_properties_reordering_network() {
        for seed in 0..8 {
            check_properties::<ViewAbcast<u64>>(
                4,
                6,
                DelayModel::Uniform { lo: 10, hi: 20_000 },
                seed,
            );
        }
    }

    #[test]
    fn view_properties_heavy_tail() {
        check_properties::<ViewAbcast<u64>>(5, 4, DelayModel::Exponential { mean: 2_000 }, 9);
    }

    #[test]
    fn view_single_process_degenerate() {
        check_properties::<ViewAbcast<u64>>(1, 10, DelayModel::Fixed(5), 2);
    }

    #[test]
    fn view_closed_loop_fifo() {
        for seed in 0..4 {
            super::testkit::check_closed_loop_fifo::<ViewAbcast<u64>>(
                4,
                5,
                DelayModel::Uniform { lo: 10, hi: 50_000 },
                seed,
            );
        }
    }

    #[test]
    fn outbox_send_all_covers_every_process() {
        let mut out: Outbox<u8> = Outbox::new(3);
        assert!(out.is_empty());
        out.send_all(7);
        assert_eq!(out.len(), 3);
        let msgs = out.drain();
        let tos: Vec<u32> = msgs.iter().map(|(p, _)| p.as_u32()).collect();
        assert_eq!(tos, vec![0, 1, 2]);
        assert!(out.is_empty());
    }
}
