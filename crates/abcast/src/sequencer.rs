//! Fixed-sequencer atomic broadcast.
//!
//! Process 0 acts as the sequencer. A broadcast is submitted to the
//! sequencer, which stamps it with the next global sequence number and
//! relays it to every process (including itself and the submitter). Each
//! process buffers stamped messages and delivers them gap-free in stamp
//! order, which yields the agreed total order even when the network
//! reorders messages arbitrarily.

use std::collections::BTreeMap;

use moc_core::ids::ProcessId;

use crate::{Abcast, Delivery, Outbox};

/// Wire messages of the sequencer protocol.
#[derive(Debug, Clone)]
pub enum SequencerMsg<T> {
    /// Submitter → sequencer: please order this item.
    Submit {
        /// The broadcasting process.
        origin: ProcessId,
        /// The item to order.
        item: T,
    },
    /// Sequencer → everyone: item with its global sequence number.
    Ordered {
        /// Global position assigned by the sequencer.
        seq: u64,
        /// The broadcasting process.
        origin: ProcessId,
        /// The ordered item.
        item: T,
    },
}

/// One process's endpoint of the fixed-sequencer protocol.
#[derive(Debug, Clone)]
pub struct SequencerAbcast<T> {
    me: ProcessId,
    /// Next sequence number to assign (meaningful only at the sequencer).
    next_to_assign: u64,
    /// Next sequence number to deliver locally.
    next_to_deliver: u64,
    /// Out-of-order buffer: stamped messages waiting for their gap to fill.
    buffer: BTreeMap<u64, (ProcessId, T)>,
    delivered: Vec<Delivery<T>>,
    delivered_count: u64,
}

impl<T> SequencerAbcast<T> {
    /// The sequencer's identity (process 0 by convention).
    pub const SEQUENCER: ProcessId = ProcessId::new(0);

    /// Whether this endpoint is the sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.me == Self::SEQUENCER
    }

    fn pump(&mut self) {
        while let Some(entry) = self.buffer.remove(&self.next_to_deliver) {
            let (origin, item) = entry;
            self.delivered.push(Delivery {
                origin,
                global_seq: self.next_to_deliver,
                item,
            });
            self.next_to_deliver += 1;
            self.delivered_count += 1;
        }
    }
}

impl<T: Clone + std::fmt::Debug> Abcast<T> for SequencerAbcast<T> {
    type Msg = SequencerMsg<T>;

    fn new(me: ProcessId, _n: usize) -> Self {
        SequencerAbcast {
            me,
            next_to_assign: 0,
            next_to_deliver: 0,
            buffer: BTreeMap::new(),
            delivered: Vec::new(),
            delivered_count: 0,
        }
    }

    fn broadcast(&mut self, item: T, out: &mut Outbox<Self::Msg>) {
        out.send(
            Self::SEQUENCER,
            SequencerMsg::Submit {
                origin: self.me,
                item,
            },
        );
    }

    fn on_message(&mut self, _from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            SequencerMsg::Submit { origin, item } => {
                debug_assert!(self.is_sequencer(), "Submit routed to non-sequencer");
                let seq = self.next_to_assign;
                self.next_to_assign += 1;
                out.send_all(SequencerMsg::Ordered { seq, origin, item });
            }
            SequencerMsg::Ordered { seq, origin, item } => {
                // A stamp below the delivery frontier is a duplicate of an
                // already-delivered frame (e.g. a retransmission that an
                // imperfect link let through): the gap-free stamp-order
                // discipline simply ignores it. Re-inserting a buffered
                // stamp is likewise idempotent.
                if seq >= self.next_to_deliver {
                    self.buffer.insert(seq, (origin, item));
                    self.pump();
                }
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Delivery<T>> {
        std::mem::take(&mut self.delivered)
    }

    fn delivered_count(&self) -> u64 {
        self.delivered_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Drives two endpoints by hand, delivering `Ordered` messages to the
    /// non-sequencer out of order.
    #[test]
    fn out_of_order_stamps_are_buffered() {
        let n = 2;
        let mut seqr: SequencerAbcast<u8> = SequencerAbcast::new(pid(0), n);
        let mut follower: SequencerAbcast<u8> = SequencerAbcast::new(pid(1), n);
        let mut out = Outbox::new(n);

        // Two submissions reach the sequencer.
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 10,
            },
            &mut out,
        );
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 20,
            },
            &mut out,
        );
        let msgs: Vec<_> = out
            .drain()
            .into_iter()
            .filter(|(to, _)| *to == pid(1))
            .map(|(_, m)| m)
            .collect();
        assert_eq!(msgs.len(), 2);

        // Deliver them to the follower in reverse.
        let mut out2 = Outbox::new(n);
        follower.on_message(pid(0), msgs[1].clone(), &mut out2);
        assert!(follower.drain_delivered().is_empty(), "gap: must buffer");
        follower.on_message(pid(0), msgs[0].clone(), &mut out2);
        let got = follower.drain_delivered();
        assert_eq!(
            got.iter().map(|d| d.item).collect::<Vec<_>>(),
            vec![10, 20],
            "delivery order follows stamps, not arrival"
        );
        assert_eq!(got[0].global_seq, 0);
        assert_eq!(got[1].global_seq, 1);
        assert_eq!(follower.delivered_count(), 2);
    }

    #[test]
    fn broadcast_routes_to_sequencer() {
        let mut a: SequencerAbcast<u8> = SequencerAbcast::new(pid(2), 3);
        let mut out = Outbox::new(3);
        a.broadcast(5, &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, pid(0));
        assert!(!a.is_sequencer());
    }
}
