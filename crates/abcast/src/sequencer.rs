//! Fixed-sequencer atomic broadcast.
//!
//! Process 0 acts as the sequencer. A broadcast is submitted to the
//! sequencer, which stamps it with the next global sequence number and
//! relays it to every process (including itself and the submitter). Each
//! process buffers stamped messages and delivers them gap-free in stamp
//! order, which yields the agreed total order even when the network
//! reorders messages arbitrarily.

use std::collections::BTreeMap;

use moc_core::ids::ProcessId;

use crate::{Abcast, BatchConfig, BatchStats, Delivery, Outbox};

/// Wire messages of the sequencer protocol.
#[derive(Debug, Clone)]
pub enum SequencerMsg<T> {
    /// Submitter → sequencer: please order this item.
    Submit {
        /// The broadcasting process.
        origin: ProcessId,
        /// The item to order.
        item: T,
    },
    /// Sequencer → everyone: item with its global sequence number.
    Ordered {
        /// Global position assigned by the sequencer.
        seq: u64,
        /// The broadcasting process.
        origin: ProcessId,
        /// The ordered item.
        item: T,
    },
    /// Sequencer → everyone: a group-committed run of consecutively
    /// stamped items (`items[i]` carries stamp `first_seq + i`). One wire
    /// frame — and therefore one reliable-link ack — covers the whole
    /// batch. Stamps were assigned at submission arrival, so the carried
    /// order is identical to what per-item `Ordered` fan-out would agree.
    OrderedBatch {
        /// Stamp of `items[0]`.
        first_seq: u64,
        /// `(origin, item)` pairs in stamp order.
        items: Vec<(ProcessId, T)>,
    },
}

/// One process's endpoint of the fixed-sequencer protocol.
#[derive(Debug, Clone)]
pub struct SequencerAbcast<T> {
    me: ProcessId,
    /// The process acting as this channel's sequencer (process 0 unless
    /// overridden with [`SequencerAbcast::with_sequencer`]).
    sequencer: ProcessId,
    /// Next sequence number to assign (meaningful only at the sequencer).
    next_to_assign: u64,
    /// Next sequence number to deliver locally.
    next_to_deliver: u64,
    /// Out-of-order buffer: stamped messages waiting for their gap to fill.
    buffer: BTreeMap<u64, (ProcessId, T)>,
    delivered: Vec<Delivery<T>>,
    delivered_count: u64,
    /// Set when the sequencer restarts after a crash: its `next_to_assign`
    /// counter is volatile, so a restarted sequencer must stop stamping
    /// (see [`Abcast::on_restart`]) instead of silently forking the order.
    halted: bool,
    /// Group-commit configuration (meaningful only at the sequencer).
    batch: BatchConfig,
    /// Stamped-but-unflushed items; `pending[i]` carries stamp
    /// `pending_first + i` (stamps are consecutive by construction).
    pending: Vec<(ProcessId, T)>,
    /// Stamp of `pending[0]`.
    pending_first: u64,
    /// Absolute flush time for the current partial batch, once armed.
    batch_deadline: Option<u64>,
    /// Last time observed via `on_tick` (drives deadline arming).
    now: u64,
    /// Stamping-side batching counters.
    stats: BatchStats,
    /// Stamps assigned since the last [`SequencerAbcast::take_newly_stamped`]
    /// call. Lets a wrapping layer observe stamp *assignment* (which
    /// happens at submission arrival) independently of fan-out (which
    /// batching may defer) — the conflict-sharded merge keys its barrier
    /// broadcasts off this so barrier positions do not move with the
    /// batch size.
    newly_stamped: Vec<u64>,
}

impl<T> SequencerAbcast<T> {
    /// The default sequencer identity (process 0 by convention).
    pub const SEQUENCER: ProcessId = ProcessId::new(0);

    /// Re-homes the channel's sequencer role. Every endpoint of a channel
    /// must agree on the sequencer, so call this uniformly right after
    /// [`Abcast::new`], before any traffic flows.
    pub fn with_sequencer(mut self, sequencer: ProcessId) -> Self {
        self.sequencer = sequencer;
        self
    }

    /// The process currently acting as sequencer for this channel.
    pub fn sequencer(&self) -> ProcessId {
        self.sequencer
    }

    /// Whether this endpoint is the sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.me == self.sequencer
    }

    /// Whether this endpoint has fail-stopped (a restarted sequencer).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Drains the stamps this endpoint assigned (as sequencer) since the
    /// last call, in assignment order.
    pub fn take_newly_stamped(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.newly_stamped)
    }

    fn pump(&mut self) {
        while let Some(entry) = self.buffer.remove(&self.next_to_deliver) {
            let (origin, item) = entry;
            self.delivered.push(Delivery {
                origin,
                global_seq: self.next_to_deliver,
                item,
            });
            self.next_to_deliver += 1;
            self.delivered_count += 1;
        }
    }

    /// Fans the pending stamped run out as one `OrderedBatch` frame.
    fn flush_batch(&mut self, out: &mut Outbox<SequencerMsg<T>>)
    where
        T: Clone,
    {
        if self.pending.is_empty() {
            return;
        }
        let items = std::mem::take(&mut self.pending);
        self.batch_deadline = None;
        self.stats.batches_flushed += 1;
        out.send_all(SequencerMsg::OrderedBatch {
            first_seq: self.pending_first,
            items,
        });
    }
}

impl<T: Clone + std::fmt::Debug> Abcast<T> for SequencerAbcast<T> {
    type Msg = SequencerMsg<T>;

    fn new(me: ProcessId, _n: usize) -> Self {
        SequencerAbcast {
            me,
            sequencer: Self::SEQUENCER,
            next_to_assign: 0,
            next_to_deliver: 0,
            buffer: BTreeMap::new(),
            delivered: Vec::new(),
            delivered_count: 0,
            halted: false,
            batch: BatchConfig::default(),
            pending: Vec::new(),
            pending_first: 0,
            batch_deadline: None,
            now: 0,
            stats: BatchStats::default(),
            newly_stamped: Vec::new(),
        }
    }

    fn broadcast(&mut self, item: T, out: &mut Outbox<Self::Msg>) {
        out.send(
            self.sequencer,
            SequencerMsg::Submit {
                origin: self.me,
                item,
            },
        );
    }

    fn on_message(&mut self, _from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            SequencerMsg::Submit { origin, item } => {
                debug_assert!(self.is_sequencer(), "Submit routed to non-sequencer");
                if self.halted {
                    // A restarted sequencer cannot trust its volatile
                    // `next_to_assign`: stamping from a stale value would
                    // reuse sequence numbers, which followers silently
                    // drop as duplicates — a *corrupted* order. Refusing
                    // to stamp turns the damage into a detectable stall
                    // (unfinished operations) instead.
                    return;
                }
                let seq = self.next_to_assign;
                self.next_to_assign += 1;
                self.stats.items_stamped += 1;
                self.newly_stamped.push(seq);
                if self.batch.enabled() {
                    // Stamp now, ship later: the item joins the pending
                    // group-commit run (its stamp is fixed regardless of
                    // when the run flushes, so the agreed order is
                    // unaffected by batching).
                    if self.pending.is_empty() {
                        self.pending_first = seq;
                    }
                    self.pending.push((origin, item));
                    if self.pending.len() >= self.batch.max_batch {
                        self.flush_batch(out);
                    }
                } else {
                    self.stats.batches_flushed += 1;
                    out.send_all(SequencerMsg::Ordered { seq, origin, item });
                }
            }
            SequencerMsg::Ordered { seq, origin, item } => {
                // A stamp below the delivery frontier is a duplicate of an
                // already-delivered frame (e.g. a retransmission that an
                // imperfect link let through): the gap-free stamp-order
                // discipline simply ignores it. Re-inserting a buffered
                // stamp is likewise idempotent.
                if seq >= self.next_to_deliver {
                    self.buffer.insert(seq, (origin, item));
                    self.pump();
                }
            }
            SequencerMsg::OrderedBatch { first_seq, items } => {
                for (i, (origin, item)) in items.into_iter().enumerate() {
                    let seq = first_seq + i as u64;
                    if seq >= self.next_to_deliver {
                        self.buffer.insert(seq, (origin, item));
                    }
                }
                self.pump();
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Delivery<T>> {
        std::mem::take(&mut self.delivered)
    }

    fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    fn next_deadline(&self) -> Option<u64> {
        if self.pending.is_empty() {
            None
        } else {
            // A pending partial batch either has a flush deadline armed,
            // or wants an immediate tick so one can be armed against the
            // host's clock (the state machine never reads time itself).
            Some(
                self.batch_deadline
                    .unwrap_or_else(|| self.now.saturating_add(1)),
            )
        }
    }

    fn on_tick(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        self.now = self.now.max(now_ns);
        if self.pending.is_empty() {
            return;
        }
        match self.batch_deadline {
            None => {
                let d = self.now.saturating_add(self.batch.max_delay_ns);
                if d <= self.now {
                    self.flush_batch(out);
                } else {
                    self.batch_deadline = Some(d);
                }
            }
            Some(d) if self.now >= d => self.flush_batch(out),
            Some(_) => {}
        }
    }

    fn set_batching(&mut self, cfg: BatchConfig) {
        debug_assert!(
            self.next_to_assign == 0 && self.delivered_count == 0,
            "batching must be configured before any traffic"
        );
        self.batch = cfg;
    }

    fn batch_stats(&self) -> BatchStats {
        self.stats
    }

    fn on_restart(&mut self, _now_ns: u64, _out: &mut Outbox<Self::Msg>) {
        // Fail-stop semantics for the single point of failure: a real
        // sequencer's assignment counter would not survive a crash, and
        // this protocol has no way to re-establish it safely (any guess
        // may fork or lose items). Followers keep delivering what was
        // already stamped; new submissions go unanswered — detectably.
        if self.is_sequencer() {
            self.halted = true;
            // Stamped-but-unflushed items died with the crash, exactly
            // like in-flight wire frames would have.
            self.pending.clear();
            self.batch_deadline = None;
        }
    }

    fn transcript(&self) -> Vec<String> {
        if self.halted {
            vec![format!(
                "P{}: sequencer restarted; stamping halted (fail-stop)",
                self.me.as_u32()
            )]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Drives two endpoints by hand, delivering `Ordered` messages to the
    /// non-sequencer out of order.
    #[test]
    fn out_of_order_stamps_are_buffered() {
        let n = 2;
        let mut seqr: SequencerAbcast<u8> = SequencerAbcast::new(pid(0), n);
        let mut follower: SequencerAbcast<u8> = SequencerAbcast::new(pid(1), n);
        let mut out = Outbox::new(n);

        // Two submissions reach the sequencer.
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 10,
            },
            &mut out,
        );
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 20,
            },
            &mut out,
        );
        let msgs: Vec<_> = out
            .drain()
            .into_iter()
            .filter(|(to, _)| *to == pid(1))
            .map(|(_, m)| m)
            .collect();
        assert_eq!(msgs.len(), 2);

        // Deliver them to the follower in reverse.
        let mut out2 = Outbox::new(n);
        follower.on_message(pid(0), msgs[1].clone(), &mut out2);
        assert!(follower.drain_delivered().is_empty(), "gap: must buffer");
        follower.on_message(pid(0), msgs[0].clone(), &mut out2);
        let got = follower.drain_delivered();
        assert_eq!(
            got.iter().map(|d| d.item).collect::<Vec<_>>(),
            vec![10, 20],
            "delivery order follows stamps, not arrival"
        );
        assert_eq!(got[0].global_seq, 0);
        assert_eq!(got[1].global_seq, 1);
        assert_eq!(follower.delivered_count(), 2);
    }

    /// Regression (S1): a restarted sequencer must fail-stop, not resume
    /// stamping from its (volatile, now stale) counter. Pre-fix, the
    /// restarted endpoint re-assigned sequence numbers from an arbitrary
    /// point; stamps below a follower's delivery frontier are silently
    /// ignored as duplicates, so the corruption was *undetectable* at the
    /// abcast layer. Post-fix the sequencer refuses to stamp, which the
    /// chaos harness surfaces as unfinished operations.
    #[test]
    fn restarted_sequencer_fail_stops_instead_of_restamping() {
        let n = 2;
        let mut seqr: SequencerAbcast<u8> = SequencerAbcast::new(pid(0), n);
        let mut follower: SequencerAbcast<u8> = SequencerAbcast::new(pid(1), n);
        let mut out = Outbox::new(n);

        // One item is stamped and delivered everywhere before the crash.
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 10,
            },
            &mut out,
        );
        for (to, m) in out.drain() {
            if to == pid(1) {
                follower.on_message(pid(0), m, &mut out);
            }
        }
        out.drain();
        assert_eq!(follower.drain_delivered().len(), 1);

        // The sequencer crashes and restarts.
        seqr.on_restart(500_000, &mut out);
        assert!(seqr.is_halted());
        assert!(!seqr.transcript().is_empty());

        // A new submission after the restart must NOT be stamped: a fresh
        // stamp from a stale counter would collide with seq 0, which the
        // follower would silently drop (duplicate rule) — losing the item
        // while every endpoint still looks healthy.
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 20,
            },
            &mut out,
        );
        assert!(
            out.is_empty(),
            "halted sequencer must not emit stamps: {:?}",
            out.len()
        );

        // Followers that restart are unaffected (their state is a cache
        // of the agreed order, rebuilt gap-free from stamps).
        follower.on_restart(500_000, &mut out);
        assert!(!follower.is_halted());
    }

    /// Size-triggered group commit: stamps are assigned per submission,
    /// but the fan-out is one `OrderedBatch` frame covering the run, and
    /// followers deliver the identical order the unbatched path agrees.
    #[test]
    fn size_threshold_flushes_one_batch_frame() {
        let n = 2;
        let mut seqr: SequencerAbcast<u8> = SequencerAbcast::new(pid(0), n);
        seqr.set_batching(BatchConfig {
            max_batch: 3,
            max_delay_ns: 1_000_000,
        });
        let mut follower: SequencerAbcast<u8> = SequencerAbcast::new(pid(1), n);
        let mut out = Outbox::new(n);
        for item in [10, 20] {
            seqr.on_message(
                pid(1),
                SequencerMsg::Submit {
                    origin: pid(1),
                    item,
                },
                &mut out,
            );
        }
        assert!(out.is_empty(), "below threshold: nothing on the wire");
        assert!(seqr.next_deadline().is_some(), "partial batch wants a tick");
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 30,
            },
            &mut out,
        );
        let msgs: Vec<_> = out.drain();
        assert_eq!(msgs.len(), n, "one frame per process, not per item");
        assert_eq!(seqr.next_deadline(), None, "flushed: timer disarmed");
        let stats = seqr.batch_stats();
        assert_eq!((stats.items_stamped, stats.batches_flushed), (3, 1));
        assert!(stats.occupancy() > 1.0);
        let mut out2 = Outbox::new(n);
        for (to, m) in msgs {
            if to == pid(1) {
                follower.on_message(pid(0), m, &mut out2);
            }
        }
        let got: Vec<_> = follower
            .drain_delivered()
            .into_iter()
            .map(|d| (d.global_seq, d.item))
            .collect();
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30)]);
    }

    /// Deadline-triggered group commit: a partial batch flushes once the
    /// group-commit window expires, via the immediate-tick arming idiom.
    #[test]
    fn partial_batch_flushes_at_the_deadline() {
        let n = 2;
        let mut seqr: SequencerAbcast<u8> = SequencerAbcast::new(pid(0), n);
        seqr.set_batching(BatchConfig {
            max_batch: 64,
            max_delay_ns: 500,
        });
        let mut out = Outbox::new(n);
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 7,
            },
            &mut out,
        );
        assert!(out.is_empty());
        // First tick arms the window against the host clock...
        let d0 = seqr.next_deadline().expect("pending batch wants a tick");
        seqr.on_tick(d0, &mut out);
        assert!(out.is_empty(), "window not yet expired");
        let d1 = seqr.next_deadline().expect("window armed");
        assert_eq!(d1, d0 + 500);
        // ...and the tick at the window boundary flushes.
        seqr.on_tick(d1, &mut out);
        assert_eq!(out.len(), n);
        assert!(matches!(
            out.drain()[0].1,
            SequencerMsg::OrderedBatch { first_seq: 0, .. }
        ));
        assert_eq!(seqr.next_deadline(), None);
    }

    /// A duplicated batch frame (e.g. a link retransmission that slipped
    /// through) re-inserts already-delivered stamps, which the gap-free
    /// frontier discipline discards idempotently.
    #[test]
    fn duplicate_batch_frames_are_idempotent() {
        let n = 2;
        let mut follower: SequencerAbcast<u8> = SequencerAbcast::new(pid(1), n);
        let batch = SequencerMsg::OrderedBatch {
            first_seq: 0,
            items: vec![(pid(1), 10), (pid(1), 20)],
        };
        let mut out = Outbox::new(n);
        follower.on_message(pid(0), batch.clone(), &mut out);
        assert_eq!(follower.drain_delivered().len(), 2);
        follower.on_message(pid(0), batch, &mut out);
        assert!(follower.drain_delivered().is_empty(), "duplicate ignored");
        assert_eq!(follower.delivered_count(), 2);
    }

    #[test]
    fn broadcast_routes_to_sequencer() {
        let mut a: SequencerAbcast<u8> = SequencerAbcast::new(pid(2), 3);
        let mut out = Outbox::new(3);
        a.broadcast(5, &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, pid(0));
        assert!(!a.is_sequencer());
    }
}
