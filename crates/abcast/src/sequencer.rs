//! Fixed-sequencer atomic broadcast.
//!
//! Process 0 acts as the sequencer. A broadcast is submitted to the
//! sequencer, which stamps it with the next global sequence number and
//! relays it to every process (including itself and the submitter). Each
//! process buffers stamped messages and delivers them gap-free in stamp
//! order, which yields the agreed total order even when the network
//! reorders messages arbitrarily.

use std::collections::BTreeMap;

use moc_core::ids::ProcessId;

use crate::{Abcast, Delivery, Outbox};

/// Wire messages of the sequencer protocol.
#[derive(Debug, Clone)]
pub enum SequencerMsg<T> {
    /// Submitter → sequencer: please order this item.
    Submit {
        /// The broadcasting process.
        origin: ProcessId,
        /// The item to order.
        item: T,
    },
    /// Sequencer → everyone: item with its global sequence number.
    Ordered {
        /// Global position assigned by the sequencer.
        seq: u64,
        /// The broadcasting process.
        origin: ProcessId,
        /// The ordered item.
        item: T,
    },
}

/// One process's endpoint of the fixed-sequencer protocol.
#[derive(Debug, Clone)]
pub struct SequencerAbcast<T> {
    me: ProcessId,
    /// The process acting as this channel's sequencer (process 0 unless
    /// overridden with [`SequencerAbcast::with_sequencer`]).
    sequencer: ProcessId,
    /// Next sequence number to assign (meaningful only at the sequencer).
    next_to_assign: u64,
    /// Next sequence number to deliver locally.
    next_to_deliver: u64,
    /// Out-of-order buffer: stamped messages waiting for their gap to fill.
    buffer: BTreeMap<u64, (ProcessId, T)>,
    delivered: Vec<Delivery<T>>,
    delivered_count: u64,
    /// Set when the sequencer restarts after a crash: its `next_to_assign`
    /// counter is volatile, so a restarted sequencer must stop stamping
    /// (see [`Abcast::on_restart`]) instead of silently forking the order.
    halted: bool,
}

impl<T> SequencerAbcast<T> {
    /// The default sequencer identity (process 0 by convention).
    pub const SEQUENCER: ProcessId = ProcessId::new(0);

    /// Re-homes the channel's sequencer role. Every endpoint of a channel
    /// must agree on the sequencer, so call this uniformly right after
    /// [`Abcast::new`], before any traffic flows.
    pub fn with_sequencer(mut self, sequencer: ProcessId) -> Self {
        self.sequencer = sequencer;
        self
    }

    /// The process currently acting as sequencer for this channel.
    pub fn sequencer(&self) -> ProcessId {
        self.sequencer
    }

    /// Whether this endpoint is the sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.me == self.sequencer
    }

    /// Whether this endpoint has fail-stopped (a restarted sequencer).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    fn pump(&mut self) {
        while let Some(entry) = self.buffer.remove(&self.next_to_deliver) {
            let (origin, item) = entry;
            self.delivered.push(Delivery {
                origin,
                global_seq: self.next_to_deliver,
                item,
            });
            self.next_to_deliver += 1;
            self.delivered_count += 1;
        }
    }
}

impl<T: Clone + std::fmt::Debug> Abcast<T> for SequencerAbcast<T> {
    type Msg = SequencerMsg<T>;

    fn new(me: ProcessId, _n: usize) -> Self {
        SequencerAbcast {
            me,
            sequencer: Self::SEQUENCER,
            next_to_assign: 0,
            next_to_deliver: 0,
            buffer: BTreeMap::new(),
            delivered: Vec::new(),
            delivered_count: 0,
            halted: false,
        }
    }

    fn broadcast(&mut self, item: T, out: &mut Outbox<Self::Msg>) {
        out.send(
            self.sequencer,
            SequencerMsg::Submit {
                origin: self.me,
                item,
            },
        );
    }

    fn on_message(&mut self, _from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            SequencerMsg::Submit { origin, item } => {
                debug_assert!(self.is_sequencer(), "Submit routed to non-sequencer");
                if self.halted {
                    // A restarted sequencer cannot trust its volatile
                    // `next_to_assign`: stamping from a stale value would
                    // reuse sequence numbers, which followers silently
                    // drop as duplicates — a *corrupted* order. Refusing
                    // to stamp turns the damage into a detectable stall
                    // (unfinished operations) instead.
                    return;
                }
                let seq = self.next_to_assign;
                self.next_to_assign += 1;
                out.send_all(SequencerMsg::Ordered { seq, origin, item });
            }
            SequencerMsg::Ordered { seq, origin, item } => {
                // A stamp below the delivery frontier is a duplicate of an
                // already-delivered frame (e.g. a retransmission that an
                // imperfect link let through): the gap-free stamp-order
                // discipline simply ignores it. Re-inserting a buffered
                // stamp is likewise idempotent.
                if seq >= self.next_to_deliver {
                    self.buffer.insert(seq, (origin, item));
                    self.pump();
                }
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Delivery<T>> {
        std::mem::take(&mut self.delivered)
    }

    fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    fn on_restart(&mut self, _now_ns: u64, _out: &mut Outbox<Self::Msg>) {
        // Fail-stop semantics for the single point of failure: a real
        // sequencer's assignment counter would not survive a crash, and
        // this protocol has no way to re-establish it safely (any guess
        // may fork or lose items). Followers keep delivering what was
        // already stamped; new submissions go unanswered — detectably.
        if self.is_sequencer() {
            self.halted = true;
        }
    }

    fn transcript(&self) -> Vec<String> {
        if self.halted {
            vec![format!(
                "P{}: sequencer restarted; stamping halted (fail-stop)",
                self.me.as_u32()
            )]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Drives two endpoints by hand, delivering `Ordered` messages to the
    /// non-sequencer out of order.
    #[test]
    fn out_of_order_stamps_are_buffered() {
        let n = 2;
        let mut seqr: SequencerAbcast<u8> = SequencerAbcast::new(pid(0), n);
        let mut follower: SequencerAbcast<u8> = SequencerAbcast::new(pid(1), n);
        let mut out = Outbox::new(n);

        // Two submissions reach the sequencer.
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 10,
            },
            &mut out,
        );
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 20,
            },
            &mut out,
        );
        let msgs: Vec<_> = out
            .drain()
            .into_iter()
            .filter(|(to, _)| *to == pid(1))
            .map(|(_, m)| m)
            .collect();
        assert_eq!(msgs.len(), 2);

        // Deliver them to the follower in reverse.
        let mut out2 = Outbox::new(n);
        follower.on_message(pid(0), msgs[1].clone(), &mut out2);
        assert!(follower.drain_delivered().is_empty(), "gap: must buffer");
        follower.on_message(pid(0), msgs[0].clone(), &mut out2);
        let got = follower.drain_delivered();
        assert_eq!(
            got.iter().map(|d| d.item).collect::<Vec<_>>(),
            vec![10, 20],
            "delivery order follows stamps, not arrival"
        );
        assert_eq!(got[0].global_seq, 0);
        assert_eq!(got[1].global_seq, 1);
        assert_eq!(follower.delivered_count(), 2);
    }

    /// Regression (S1): a restarted sequencer must fail-stop, not resume
    /// stamping from its (volatile, now stale) counter. Pre-fix, the
    /// restarted endpoint re-assigned sequence numbers from an arbitrary
    /// point; stamps below a follower's delivery frontier are silently
    /// ignored as duplicates, so the corruption was *undetectable* at the
    /// abcast layer. Post-fix the sequencer refuses to stamp, which the
    /// chaos harness surfaces as unfinished operations.
    #[test]
    fn restarted_sequencer_fail_stops_instead_of_restamping() {
        let n = 2;
        let mut seqr: SequencerAbcast<u8> = SequencerAbcast::new(pid(0), n);
        let mut follower: SequencerAbcast<u8> = SequencerAbcast::new(pid(1), n);
        let mut out = Outbox::new(n);

        // One item is stamped and delivered everywhere before the crash.
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 10,
            },
            &mut out,
        );
        for (to, m) in out.drain() {
            if to == pid(1) {
                follower.on_message(pid(0), m, &mut out);
            }
        }
        out.drain();
        assert_eq!(follower.drain_delivered().len(), 1);

        // The sequencer crashes and restarts.
        seqr.on_restart(500_000, &mut out);
        assert!(seqr.is_halted());
        assert!(!seqr.transcript().is_empty());

        // A new submission after the restart must NOT be stamped: a fresh
        // stamp from a stale counter would collide with seq 0, which the
        // follower would silently drop (duplicate rule) — losing the item
        // while every endpoint still looks healthy.
        seqr.on_message(
            pid(1),
            SequencerMsg::Submit {
                origin: pid(1),
                item: 20,
            },
            &mut out,
        );
        assert!(
            out.is_empty(),
            "halted sequencer must not emit stamps: {:?}",
            out.len()
        );

        // Followers that restart are unaffected (their state is a cache
        // of the agreed order, rebuilt gap-free from stamps).
        follower.on_restart(500_000, &mut out);
        assert!(!follower.is_halted());
    }

    #[test]
    fn broadcast_routes_to_sequencer() {
        let mut a: SequencerAbcast<u8> = SequencerAbcast::new(pid(2), 3);
        let mut out = Outbox::new(3);
        a.broadcast(5, &mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, pid(0));
        assert!(!a.is_sequencer());
    }
}
