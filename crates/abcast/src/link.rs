//! A reliable-link sublayer: exactly-once, per-sender FIFO delivery over
//! a lossy, duplicating, reordering network.
//!
//! The Section 5 protocols (and both [`crate::Abcast`] implementations)
//! assume the paper's channel model — "processes and channels are
//! reliable and a message sent is eventually received", with arbitrary
//! reordering the only misbehavior. [`ReliableLink`] re-establishes that
//! contract on top of a network that drops, duplicates, and partitions
//! (`moc_sim::FaultPlan`, or the runtime's fault knobs), so the protocol
//! state machines above it run unmodified:
//!
//! * every payload handed to [`ReliableLink::send`] carries a per-peer
//!   **sequence number** and is kept until cumulatively acknowledged;
//! * receivers **deduplicate** and reorder into gap-free per-sender
//!   sequence order, acknowledging cumulatively ([`LinkMsg::Ack`]);
//! * unacknowledged data is **retransmitted** on a timer with
//!   *decorrelated-jitter* backoff: each retry draws a fresh timeout
//!   uniformly from `[rto_ns, min(max_rto_ns, 3 × previous)]` using a
//!   per-endpoint deterministic stream, so peers that lost traffic at the
//!   same instant (e.g. across a healed partition) do not fire their
//!   retransmissions in synchronized storms the way pure exponential
//!   doubling would;
//! * after a crash window, [`ReliableLink::on_restart`] runs a
//!   **rejoin handshake**: the returning process retransmits its own
//!   unacked data and sends [`LinkMsg::Rejoin`], prompting each peer to
//!   answer with a [`LinkMsg::Snapshot`] of its link state and an
//!   immediate retransmission of everything the outage swallowed.
//!
//! The layer is a pure state machine like everything else in this crate:
//! wire traffic goes out through a caller-supplied buffer, current time
//! comes in as a parameter, and the single timer the host must provide is
//! exposed via [`ReliableLink::next_deadline`].
//!
//! [`LinkConfig::sabotaged`] disables dedup and retransmission — a
//! deliberately broken link used by the negative-path conformance tests
//! to prove the checker pipeline catches real violations.

use std::collections::BTreeMap;

use moc_core::ids::ProcessId;

/// Tuning knobs for a [`ReliableLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Initial retransmission timeout (virtual ns in the simulator).
    pub rto_ns: u64,
    /// Backoff cap: each retry draws a decorrelated-jitter RTO in
    /// `[rto_ns, min(max_rto_ns, 3 × previous RTO)]`, never above this.
    pub max_rto_ns: u64,
    /// Receive-side deduplication + per-sender reordering. Disabling it
    /// forwards raw wire arrivals — duplicates and all — to the layer
    /// above.
    pub dedup: bool,
    /// Whether unacknowledged data is retransmitted. Disabling it makes
    /// every network drop a permanent loss.
    pub retransmit: bool,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rto_ns: 25_000,
            max_rto_ns: 400_000,
            dedup: true,
            retransmit: true,
        }
    }
}

impl LinkConfig {
    /// A deliberately broken link: no dedup, no retransmission. Under
    /// faults this violates the reliable-channel contract the protocols
    /// assume — used by negative-path tests to demonstrate that the
    /// checker then refutes the resulting histories.
    pub fn sabotaged() -> Self {
        LinkConfig {
            dedup: false,
            retransmit: false,
            ..LinkConfig::default()
        }
    }
}

/// Wire frames of the reliable link. `M` is the payload type of the
/// protocol layer above.
#[derive(Debug, Clone)]
pub enum LinkMsg<M> {
    /// A payload with its per-(sender, receiver) sequence number.
    Data {
        /// Position in the sender's stream to this receiver (0-based).
        seq: u64,
        /// The protocol-layer payload.
        payload: M,
    },
    /// Cumulative acknowledgement: every `Data` with `seq < upto` from
    /// the acknowledged peer has been received.
    Ack {
        /// The receiver's gap-free frontier for this sender.
        upto: u64,
    },
    /// Sent to every peer after a crash window: "I am back; resynchronize
    /// me." Peers answer with [`LinkMsg::Snapshot`] and retransmit
    /// everything not yet acknowledged.
    Rejoin,
    /// A peer's link-state snapshot, answering [`LinkMsg::Rejoin`].
    Snapshot {
        /// The next sequence number the peer will assign on its stream to
        /// the rejoiner (diagnostic; retransmission fills any gap).
        sent: u64,
        /// The peer's gap-free receive frontier for the rejoiner's stream
        /// — acts as a cumulative ack.
        received: u64,
    },
}

/// Counters describing one endpoint's link activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// `Data` frames sent first-hand (excluding retransmissions).
    pub data_sent: u64,
    /// `Data` frames received off the wire (duplicates included).
    pub data_received: u64,
    /// Payloads surfaced to the layer above.
    pub delivered: u64,
    /// Duplicate `Data` frames discarded by receive-side dedup.
    pub duplicates_discarded: u64,
    /// `Data` frames retransmitted.
    pub retransmissions: u64,
    /// Acknowledgements sent (including snapshot answers).
    pub acks_sent: u64,
    /// Acknowledgements received (including snapshots).
    pub acks_received: u64,
    /// Rejoin handshakes initiated.
    pub rejoins: u64,
}

impl LinkStats {
    /// Field-wise sum, for aggregating per-endpoint counters into a
    /// cluster-wide transport total.
    pub fn merge(&self, other: &LinkStats) -> LinkStats {
        LinkStats {
            data_sent: self.data_sent + other.data_sent,
            data_received: self.data_received + other.data_received,
            delivered: self.delivered + other.delivered,
            duplicates_discarded: self.duplicates_discarded + other.duplicates_discarded,
            retransmissions: self.retransmissions + other.retransmissions,
            acks_sent: self.acks_sent + other.acks_sent,
            acks_received: self.acks_received + other.acks_received,
            rejoins: self.rejoins + other.rejoins,
        }
    }
}

/// Outbound state for one peer: the sent-but-unacked window and its
/// retransmission timer.
#[derive(Debug, Clone)]
struct SenderState<M> {
    /// Next sequence number to assign on this stream.
    next_seq: u64,
    /// Sent, not yet cumulatively acknowledged.
    unacked: BTreeMap<u64, M>,
    /// Current (backed-off) retransmission timeout.
    rto_ns: u64,
    /// Absolute time of the next retransmission, if armed.
    deadline: Option<u64>,
}

impl<M> SenderState<M> {
    fn new(rto_ns: u64) -> Self {
        SenderState {
            next_seq: 0,
            unacked: BTreeMap::new(),
            rto_ns,
            deadline: None,
        }
    }
}

/// Inbound state for one peer: the gap-free frontier and the
/// out-of-order hold buffer.
#[derive(Debug, Clone)]
struct RecvState<M> {
    /// All `seq < next_expected` have been delivered upward.
    next_expected: u64,
    /// Out-of-order frames waiting for their gap to fill.
    buffer: BTreeMap<u64, M>,
}

impl<M> RecvState<M> {
    fn new() -> Self {
        RecvState {
            next_expected: 0,
            buffer: BTreeMap::new(),
        }
    }
}

/// One process's endpoint of the reliable link (one instance serves all
/// of its peers).
#[derive(Debug, Clone)]
pub struct ReliableLink<M> {
    me: ProcessId,
    n: usize,
    cfg: LinkConfig,
    senders: BTreeMap<ProcessId, SenderState<M>>,
    recv: BTreeMap<ProcessId, RecvState<M>>,
    stats: LinkStats,
    /// splitmix64 state for backoff jitter, seeded per endpoint so peers
    /// desynchronize but identical runs replay identically.
    jitter: u64,
}

/// One splitmix64 step: advances `state` and returns the next draw.
/// Deterministic — the link stays a pure state machine and chaos replays
/// remain byte-identical for a given seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<M: Clone> ReliableLink<M> {
    /// Creates the endpoint for process `me` of `n`.
    pub fn new(me: ProcessId, n: usize, cfg: LinkConfig) -> Self {
        ReliableLink {
            me,
            n,
            cfg,
            senders: BTreeMap::new(),
            recv: BTreeMap::new(),
            stats: LinkStats::default(),
            jitter: 0x6d6f_635f_6c69_6e6b ^ ((me.as_u32() as u64) << 32) ^ n as u64,
        }
    }

    /// Link activity counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Total payloads currently sent but not cumulatively acknowledged.
    pub fn unacked(&self) -> usize {
        self.senders.values().map(|s| s.unacked.len()).sum()
    }

    /// The earliest retransmission deadline across all peers, if any data
    /// is in flight (always `None` when retransmission is disabled). The
    /// host should arrange a call to [`ReliableLink::on_tick`] at (or
    /// after) this time.
    pub fn next_deadline(&self) -> Option<u64> {
        self.senders.values().filter_map(|s| s.deadline).min()
    }

    /// Sends `payload` to `to`, stamping it into that stream. The framed
    /// wire message is appended to `wire`.
    pub fn send(
        &mut self,
        to: ProcessId,
        payload: M,
        now_ns: u64,
        wire: &mut Vec<(ProcessId, LinkMsg<M>)>,
    ) {
        let cfg = self.cfg;
        let s = self
            .senders
            .entry(to)
            .or_insert_with(|| SenderState::new(cfg.rto_ns));
        let seq = s.next_seq;
        s.next_seq += 1;
        if cfg.retransmit {
            s.unacked.insert(seq, payload.clone());
            if s.deadline.is_none() {
                s.deadline = Some(now_ns + s.rto_ns);
            }
        }
        self.stats.data_sent += 1;
        wire.push((to, LinkMsg::Data { seq, payload }));
    }

    /// Feeds a wire frame from `from`. Returns the payloads that became
    /// deliverable to the layer above, in per-sender FIFO order; control
    /// traffic produced in response is appended to `wire`.
    pub fn on_wire(
        &mut self,
        from: ProcessId,
        msg: LinkMsg<M>,
        now_ns: u64,
        wire: &mut Vec<(ProcessId, LinkMsg<M>)>,
    ) -> Vec<M> {
        match msg {
            LinkMsg::Data { seq, payload } => {
                self.stats.data_received += 1;
                if !self.cfg.dedup {
                    // Sabotaged: raw arrivals pass straight through.
                    self.stats.delivered += 1;
                    return vec![payload];
                }
                let r = self.recv.entry(from).or_insert_with(RecvState::new);
                let mut ready = Vec::new();
                if seq < r.next_expected || r.buffer.contains_key(&seq) {
                    self.stats.duplicates_discarded += 1;
                } else {
                    r.buffer.insert(seq, payload);
                    while let Some(p) = r.buffer.remove(&r.next_expected) {
                        r.next_expected += 1;
                        ready.push(p);
                    }
                    self.stats.delivered += ready.len() as u64;
                }
                // Ack even on duplicates: the original ack may have been
                // lost, and re-acking is what stops the retransmissions.
                let upto = r.next_expected;
                self.stats.acks_sent += 1;
                wire.push((from, LinkMsg::Ack { upto }));
                ready
            }
            LinkMsg::Ack { upto } => {
                self.stats.acks_received += 1;
                self.apply_ack(from, upto, now_ns);
                Vec::new()
            }
            LinkMsg::Rejoin => {
                // The peer lost its in-flight traffic: retransmit at once
                // with a fresh backoff, and hand it our link snapshot.
                let cfg = self.cfg;
                let s = self
                    .senders
                    .entry(from)
                    .or_insert_with(|| SenderState::new(cfg.rto_ns));
                s.rto_ns = cfg.rto_ns;
                let mut retransmitted = 0;
                for (&seq, payload) in &s.unacked {
                    wire.push((
                        from,
                        LinkMsg::Data {
                            seq,
                            payload: payload.clone(),
                        },
                    ));
                    retransmitted += 1;
                }
                s.deadline = if s.unacked.is_empty() {
                    None
                } else {
                    Some(now_ns + s.rto_ns)
                };
                self.stats.retransmissions += retransmitted;
                let sent = s.next_seq;
                let received = self.recv.get(&from).map(|r| r.next_expected).unwrap_or(0);
                self.stats.acks_sent += 1;
                wire.push((from, LinkMsg::Snapshot { sent, received }));
                Vec::new()
            }
            LinkMsg::Snapshot { sent: _, received } => {
                // The peer's receive frontier is a cumulative ack for our
                // stream; retransmission covers anything past it.
                self.stats.acks_received += 1;
                self.apply_ack(from, received, now_ns);
                Vec::new()
            }
        }
    }

    /// Retransmits every overdue unacked frame. Call at (or after) the
    /// time reported by [`ReliableLink::next_deadline`].
    ///
    /// Each retry re-arms the timer with a *decorrelated-jitter* backoff
    /// (`rto′ = uniform[rto_ns, min(max_rto_ns, 3·rto)]`): the expected
    /// timeout still grows geometrically toward the cap, but endpoints
    /// that lost traffic at the same instant spread their retries instead
    /// of retransmitting in lockstep storms.
    pub fn on_tick(&mut self, now_ns: u64, wire: &mut Vec<(ProcessId, LinkMsg<M>)>) {
        if !self.cfg.retransmit {
            return;
        }
        let base = self.cfg.rto_ns;
        let max_rto = self.cfg.max_rto_ns;
        for (&peer, s) in self.senders.iter_mut() {
            let Some(deadline) = s.deadline else { continue };
            if deadline > now_ns || s.unacked.is_empty() {
                continue;
            }
            for (&seq, payload) in &s.unacked {
                wire.push((
                    peer,
                    LinkMsg::Data {
                        seq,
                        payload: payload.clone(),
                    },
                ));
                self.stats.retransmissions += 1;
            }
            let hi = s.rto_ns.saturating_mul(3).min(max_rto);
            s.rto_ns = if hi <= base {
                base
            } else {
                base + splitmix64(&mut self.jitter) % (hi - base + 1)
            };
            s.deadline = Some(now_ns + s.rto_ns);
        }
    }

    /// Runs the crash-recovery handshake: retransmits this endpoint's own
    /// unacked data (acks for it may have died with the outage) and asks
    /// every peer to resynchronize via [`LinkMsg::Rejoin`].
    pub fn on_restart(&mut self, now_ns: u64, wire: &mut Vec<(ProcessId, LinkMsg<M>)>) {
        let base_rto = self.cfg.rto_ns;
        let retransmit = self.cfg.retransmit;
        for (&peer, s) in self.senders.iter_mut() {
            s.rto_ns = base_rto;
            if retransmit && !s.unacked.is_empty() {
                for (&seq, payload) in &s.unacked {
                    wire.push((
                        peer,
                        LinkMsg::Data {
                            seq,
                            payload: payload.clone(),
                        },
                    ));
                    self.stats.retransmissions += 1;
                }
                s.deadline = Some(now_ns + s.rto_ns);
            } else {
                s.deadline = None;
            }
        }
        for p in 0..self.n {
            let p = ProcessId::new(p as u32);
            if p != self.me {
                self.stats.rejoins += 1;
                wire.push((p, LinkMsg::Rejoin));
            }
        }
    }

    fn apply_ack(&mut self, from: ProcessId, upto: u64, now_ns: u64) {
        let Some(s) = self.senders.get_mut(&from) else {
            return;
        };
        let before = s.unacked.len();
        s.unacked = s.unacked.split_off(&upto);
        if s.unacked.len() < before {
            // Progress: restart the timer from the base timeout.
            s.rto_ns = self.cfg.rto_ns;
            s.deadline = if s.unacked.is_empty() {
                None
            } else {
                Some(now_ns + s.rto_ns)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    type Wire = Vec<(ProcessId, LinkMsg<u32>)>;

    #[test]
    fn in_order_delivery_and_ack() {
        let mut a: ReliableLink<u32> = ReliableLink::new(pid(0), 2, LinkConfig::default());
        let mut b: ReliableLink<u32> = ReliableLink::new(pid(1), 2, LinkConfig::default());
        let mut wire: Wire = Vec::new();
        a.send(pid(1), 10, 0, &mut wire);
        a.send(pid(1), 20, 0, &mut wire);
        assert_eq!(a.unacked(), 2);
        let mut acks: Wire = Vec::new();
        let mut got = Vec::new();
        for (_, m) in wire {
            got.extend(b.on_wire(pid(0), m, 5, &mut acks));
        }
        assert_eq!(got, vec![10, 20]);
        for (_, m) in acks {
            a.on_wire(pid(1), m, 10, &mut Vec::new());
        }
        assert_eq!(a.unacked(), 0);
        assert_eq!(a.next_deadline(), None, "all acked: timer disarmed");
    }

    #[test]
    fn reorder_is_hidden_and_duplicates_are_discarded() {
        let mut b: ReliableLink<u32> = ReliableLink::new(pid(1), 2, LinkConfig::default());
        let mut acks: Wire = Vec::new();
        // seq 1 before seq 0: held.
        let got = b.on_wire(
            pid(0),
            LinkMsg::Data {
                seq: 1,
                payload: 21,
            },
            0,
            &mut acks,
        );
        assert!(got.is_empty(), "gap: must hold");
        // Duplicate of the held frame: discarded.
        let got = b.on_wire(
            pid(0),
            LinkMsg::Data {
                seq: 1,
                payload: 21,
            },
            1,
            &mut acks,
        );
        assert!(got.is_empty());
        assert_eq!(b.stats().duplicates_discarded, 1);
        // The gap fills: both deliver, in sequence order.
        let got = b.on_wire(
            pid(0),
            LinkMsg::Data {
                seq: 0,
                payload: 11,
            },
            2,
            &mut acks,
        );
        assert_eq!(got, vec![11, 21]);
        // A stale duplicate below the frontier still re-acks.
        let before = acks.len();
        let got = b.on_wire(
            pid(0),
            LinkMsg::Data {
                seq: 0,
                payload: 11,
            },
            3,
            &mut acks,
        );
        assert!(got.is_empty());
        assert_eq!(b.stats().duplicates_discarded, 2);
        assert!(matches!(acks[before].1, LinkMsg::Ack { upto: 2 }));
    }

    #[test]
    fn retransmission_backs_off_and_recovers_a_loss() {
        let cfg = LinkConfig {
            rto_ns: 100,
            max_rto_ns: 400,
            ..LinkConfig::default()
        };
        let mut a: ReliableLink<u32> = ReliableLink::new(pid(0), 2, cfg);
        let mut b: ReliableLink<u32> = ReliableLink::new(pid(1), 2, cfg);
        let mut wire: Wire = Vec::new();
        a.send(pid(1), 7, 0, &mut wire);
        wire.clear(); // the network eats the first copy
        assert_eq!(a.next_deadline(), Some(100), "first send arms the base rto");
        a.on_tick(100, &mut wire);
        assert_eq!(wire.len(), 1, "one retransmission");
        assert_eq!(a.stats().retransmissions, 1);
        // Decorrelated jitter: the re-armed rto is a draw from
        // [base, min(cap, 3·prev)] — bounded, not an exact double.
        let d1 = a.next_deadline().expect("timer still armed");
        assert!(
            (200..=400).contains(&d1),
            "rto in [100, 300], got {}",
            d1 - 100
        );
        wire.clear();
        a.on_tick(d1, &mut wire);
        let d2 = a.next_deadline().expect("timer still armed");
        let rto2 = d2 - d1;
        assert!((100..=400).contains(&rto2), "rto capped at 400, got {rto2}");
        // The retransmission finally lands: delivered once, then acked.
        let (_, m) = wire.pop().unwrap();
        let mut acks: Wire = Vec::new();
        let got = b.on_wire(pid(0), m, d2, &mut acks);
        assert_eq!(got, vec![7]);
        let (_, ack) = acks.pop().unwrap();
        a.on_wire(pid(1), ack, d2 + 10, &mut Vec::new());
        assert_eq!(a.unacked(), 0);
        assert_eq!(a.next_deadline(), None);
    }

    /// Collects the sequence of re-armed RTOs an endpoint draws when a
    /// frame to `to` is never acknowledged.
    fn backoff_trace(me: u32, to: u32, n: usize, cfg: LinkConfig, retries: usize) -> Vec<u64> {
        let mut link: ReliableLink<u32> = ReliableLink::new(pid(me), n, cfg);
        let mut wire: Wire = Vec::new();
        link.send(pid(to), 1, 0, &mut wire);
        let mut trace = Vec::new();
        let mut prev = 0;
        for _ in 0..retries {
            let d = link
                .next_deadline()
                .expect("unacked data keeps the timer armed");
            wire.clear();
            link.on_tick(d, &mut wire);
            assert_eq!(wire.len(), 1, "exactly one frame per retry");
            let next = link.next_deadline().expect("re-armed");
            trace.push(next - d);
            assert!(next > prev, "deadlines advance monotonically");
            prev = next;
        }
        trace
    }

    #[test]
    fn backoff_jitter_is_deterministic_bounded_and_decorrelated() {
        let cfg = LinkConfig {
            rto_ns: 100,
            max_rto_ns: 400,
            ..LinkConfig::default()
        };
        // Deterministic: the same endpoint replays the same draw sequence.
        let t0 = backoff_trace(0, 1, 3, cfg, 12);
        assert_eq!(
            t0,
            backoff_trace(0, 1, 3, cfg, 12),
            "seeded jitter must replay"
        );
        // Bounded: every draw stays within [rto_ns, max_rto_ns].
        for &rto in &t0 {
            assert!((100..=400).contains(&rto), "draw {rto} outside [100, 400]");
        }
        // Decorrelated: distinct endpoints that lost traffic at the same
        // instant do not fire in lockstep (a pure exponential backoff
        // would give every endpoint the identical 200, 400, 400, ... run).
        let t1 = backoff_trace(1, 2, 3, cfg, 12);
        let t2 = backoff_trace(2, 0, 3, cfg, 12);
        assert_ne!(t0, t1, "endpoints 0 and 1 must not synchronize");
        assert_ne!(t0, t2, "endpoints 0 and 2 must not synchronize");
        assert_ne!(t1, t2, "endpoints 1 and 2 must not synchronize");
        // Spread, not degenerate: the trace actually varies.
        for t in [&t0, &t1, &t2] {
            let distinct: std::collections::BTreeSet<u64> = t.iter().copied().collect();
            assert!(distinct.len() > 2, "jitter should spread draws, got {t:?}");
        }
    }

    #[test]
    fn rejoin_handshake_resynchronizes_both_sides() {
        let mut a: ReliableLink<u32> = ReliableLink::new(pid(0), 2, LinkConfig::default());
        let mut b: ReliableLink<u32> = ReliableLink::new(pid(1), 2, LinkConfig::default());
        // A sends two frames; the outage eats both plus any acks.
        let mut lost: Wire = Vec::new();
        a.send(pid(1), 1, 0, &mut lost);
        a.send(pid(1), 2, 0, &mut lost);
        drop(lost);
        // B restarts and rejoins.
        let mut wire: Wire = Vec::new();
        b.on_restart(1_000, &mut wire);
        assert_eq!(b.stats().rejoins, 1);
        let (to, rejoin) = wire.pop().unwrap();
        assert_eq!(to, pid(0));
        // A answers the rejoin with a snapshot + full retransmission.
        let mut resp: Wire = Vec::new();
        assert!(a.on_wire(pid(1), rejoin, 1_001, &mut resp).is_empty());
        assert_eq!(a.stats().retransmissions, 2);
        let mut got = Vec::new();
        let mut acks: Wire = Vec::new();
        for (_, m) in resp {
            got.extend(b.on_wire(pid(0), m, 1_002, &mut acks));
        }
        assert_eq!(got, vec![1, 2], "outage-swallowed data recovered in order");
        for (_, m) in acks {
            a.on_wire(pid(1), m, 1_003, &mut Vec::new());
        }
        assert_eq!(a.unacked(), 0);
    }

    #[test]
    fn snapshot_received_acts_as_cumulative_ack() {
        let mut a: ReliableLink<u32> = ReliableLink::new(pid(0), 2, LinkConfig::default());
        let mut wire: Wire = Vec::new();
        a.send(pid(1), 1, 0, &mut wire);
        a.send(pid(1), 2, 0, &mut wire);
        a.on_wire(
            pid(1),
            LinkMsg::Snapshot {
                sent: 0,
                received: 1,
            },
            10,
            &mut Vec::new(),
        );
        assert_eq!(a.unacked(), 1, "seq 0 acked via snapshot, seq 1 remains");
    }

    #[test]
    fn sabotaged_link_forwards_duplicates_and_never_retransmits() {
        let mut a: ReliableLink<u32> = ReliableLink::new(pid(0), 2, LinkConfig::sabotaged());
        let mut b: ReliableLink<u32> = ReliableLink::new(pid(1), 2, LinkConfig::sabotaged());
        let mut wire: Wire = Vec::new();
        a.send(pid(1), 9, 0, &mut wire);
        assert_eq!(a.unacked(), 0, "fire and forget");
        assert_eq!(a.next_deadline(), None);
        let (_, m) = wire.pop().unwrap();
        let mut acks: Wire = Vec::new();
        // The same frame arrives twice: both copies pass through.
        let first = b.on_wire(pid(0), m.clone(), 1, &mut acks);
        let second = b.on_wire(pid(0), m, 2, &mut acks);
        assert_eq!((first, second), (vec![9], vec![9]));
        assert!(acks.is_empty(), "sabotaged link does not ack");
        a.on_tick(1_000_000, &mut wire);
        assert!(wire.is_empty(), "sabotaged link does not retransmit");
    }

    #[test]
    fn one_batch_frame_costs_one_data_frame_and_one_ack() {
        // The link is payload-agnostic, so a group-committed abcast batch
        // rides a single Data frame and a single cumulative Ack covers it
        // — the framing economy the batching layer is built on.
        use crate::sequencer::SequencerMsg;
        type Batch = SequencerMsg<u64>;
        let mut a: ReliableLink<Batch> = ReliableLink::new(pid(0), 2, LinkConfig::default());
        let mut b: ReliableLink<Batch> = ReliableLink::new(pid(1), 2, LinkConfig::default());
        let batch = SequencerMsg::OrderedBatch {
            first_seq: 0,
            items: (0..16).map(|i| (pid(0), i)).collect(),
        };
        let mut wire: Vec<(ProcessId, LinkMsg<Batch>)> = Vec::new();
        a.send(pid(1), batch, 0, &mut wire);
        assert_eq!(wire.len(), 1, "sixteen stamps, one Data frame");
        assert_eq!(a.stats().data_sent, 1);
        let mut acks: Vec<(ProcessId, LinkMsg<Batch>)> = Vec::new();
        let mut got = Vec::new();
        for (_, m) in wire {
            got.extend(b.on_wire(pid(0), m, 5, &mut acks));
        }
        assert_eq!(got.len(), 1, "delivered as one payload");
        assert!(matches!(&got[0], SequencerMsg::OrderedBatch { items, .. } if items.len() == 16));
        assert_eq!(acks.len(), 1, "one ack covers the whole batch");
        assert_eq!(b.stats().acks_sent, 1);
        for (_, m) in acks {
            a.on_wire(pid(1), m, 10, &mut Vec::new());
        }
        assert_eq!(a.unacked(), 0, "batch fully acked in one round trip");
    }
}
