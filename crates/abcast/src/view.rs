//! View-based failover atomic broadcast.
//!
//! [`SequencerAbcast`](crate::SequencerAbcast) pins the total order on a
//! fixed sequencer: if process 0 crashes, the protocol stalls forever.
//! `ViewAbcast` removes that single point of failure with numbered
//! **views**: view `v` is led by process `v mod n`, which stamps slots
//! exactly like the fixed sequencer while the view is live. Crash
//! suspicion is purely timeout-based (with exponential backoff) — no
//! wall-clock synchrony is assumed, matching the paper's fully
//! asynchronous Section 5 setting: a false suspicion can cost progress,
//! never safety.
//!
//! ## The view-change handshake
//!
//! When a process with unfinished business observes no progress before
//! its suspicion deadline, it *proposes* view `v+1` by sending the
//! leader-elect (`(v+1) mod n`) a `ViewChange` report: its delivered
//! prefix and every slot binding it knows. The leader-elect broadcasts
//! `Collect`, gathers reports from **every process except the suspected
//! old leader**, merges them (per slot, the binding stamped in the
//! highest view wins), fills slots no survivor knows with no-ops, and
//! installs the new view with a `NewView` message carrying the adopted
//! log. Followers adopt wholesale above their delivered prefix and
//! origins re-propose any submission the adopted log does not contain.
//!
//! ## Why the order is never forked
//!
//! Followers deliver slots gap-free as they arrive, but the **leader
//! delivers a slot only after another process acknowledged it**
//! (cumulative `Ack`s). Hence anything delivered anywhere is known to at
//! least one process besides the old leader, i.e. to a member of every
//! view-change quorum (all-but-old-leader) — so an installed view never
//! rebinds a delivered slot. Joining a view change is a *promise*
//! (ballot discipline): once a process has reported for view `t` it
//! ignores traffic from views below `t`, so its report is a stable
//! snapshot. The model tolerates one crashed process at a time (the
//! recoverable-fault discipline of the chaos families); a second
//! simultaneous crash delays the handshake until the restart, it never
//! forks the order.
//!
//! A crashed ex-leader keeps its state (fail-recover) and rejoins as a
//! follower: the [`ReliableLink`](crate::ReliableLink) rejoin handshake
//! replays the `NewView` and subsequent `Ordered` traffic it missed, and
//! its stale stampings are discarded when it adopts the newer view.
//!
//! Like every broadcast here, `ViewAbcast` is a pure state machine: time
//! enters only through [`Abcast::on_tick`], so runs are deterministic
//! and every view change is recorded in a replayable transcript.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use moc_core::ids::ProcessId;

use crate::{Abcast, BatchConfig, BatchStats, Delivery, Outbox};

/// Failover-timing knobs (virtual or real nanoseconds — the protocol
/// only compares them against the host-provided clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewConfig {
    /// Base crash-suspicion timeout: how long unfinished business may see
    /// no progress before the leader is suspected.
    pub suspect_timeout_ns: u64,
    /// Cap for the exponential backoff across consecutive suspicions.
    pub max_suspect_timeout_ns: u64,
}

impl Default for ViewConfig {
    fn default() -> Self {
        // Tuned for the simulator scale (link RTO 25µs..400µs, run
        // horizons around 1ms): late enough to ride out retransmissions,
        // early enough to fail over well inside a horizon.
        ViewConfig {
            suspect_timeout_ns: 60_000,
            max_suspect_timeout_ns: 480_000,
        }
    }
}

/// What a slot carries: a broadcast item tagged with its origin identity,
/// or a no-op filling a slot whose binding died with a leader.
#[derive(Debug, Clone)]
pub enum SlotPayload<T> {
    /// A real broadcast item. `(origin, oseq)` is the broadcast's
    /// identity, used for exactly-once re-proposal across views.
    Item {
        /// The broadcasting process.
        origin: ProcessId,
        /// The origin's local submission number.
        oseq: u64,
        /// The payload.
        item: T,
    },
    /// A filler for a slot no view-change survivor knew a binding for.
    /// Advances the slot cursor without delivering anything.
    Noop,
}

impl<T> SlotPayload<T> {
    fn identity(&self) -> Option<(ProcessId, u64)> {
        match self {
            SlotPayload::Item { origin, oseq, .. } => Some((*origin, *oseq)),
            SlotPayload::Noop => None,
        }
    }
}

/// A slot binding: the payload plus the view that stamped (or re-adopted)
/// it. On merge, the binding from the highest view wins.
#[derive(Debug, Clone)]
pub struct SlotEntry<T> {
    /// View in which this binding was stamped or last re-adopted.
    pub view: u64,
    /// The bound payload.
    pub payload: SlotPayload<T>,
}

/// Wire messages of the view-based protocol.
#[derive(Debug, Clone)]
pub enum ViewMsg<T> {
    /// Origin → leader of `view`: please order this item.
    Submit {
        /// The view the submitter believes is current.
        view: u64,
        /// The broadcasting process.
        origin: ProcessId,
        /// The origin's local submission number (for dedup).
        oseq: u64,
        /// The item to order.
        item: T,
    },
    /// Leader of `view` → followers: slot binding.
    Ordered {
        /// The stamping view.
        view: u64,
        /// The global slot number.
        slot: u64,
        /// The bound payload.
        payload: SlotPayload<T>,
    },
    /// Follower → leader of `view`: cumulative delivery acknowledgement
    /// (`next_to_deliver` = all slots below it are delivered here). Gates
    /// the leader's own delivery — see the module docs.
    Ack {
        /// The acknowledger's current view.
        view: u64,
        /// The acknowledger's delivery cursor.
        next_to_deliver: u64,
    },
    /// Suspector/survivor → leader-elect of `target`: the sender's full
    /// knowledge, i.e. its delivered prefix and every slot binding.
    ViewChange {
        /// The proposed view.
        target: u64,
        /// The sender's last *installed* view. The leader-elect adopts
        /// the longest log among the reports with the maximal installed
        /// view — same-view logs are prefix-comparable, so that log
        /// provably contains every slot delivered anywhere. (A per-slot
        /// union would let a laggard resurrect stale bindings from a
        /// dead view, forking or duplicating the order.)
        normal_view: u64,
        /// The sender's delivery cursor.
        delivered_up_to: u64,
        /// Every slot binding the sender knows.
        entries: Vec<(u64, SlotEntry<T>)>,
    },
    /// Leader-elect of `target` → everyone else: please report for the
    /// view change (answered with a `ViewChange`).
    Collect {
        /// The proposed view.
        target: u64,
    },
    /// New leader → everyone else: the view is installed; `entries` is
    /// the adopted slot log (gap-free, no-op-filled).
    NewView {
        /// The installed view.
        view: u64,
        /// The full adopted log.
        entries: Vec<(u64, SlotEntry<T>)>,
    },
    /// Leader of `view` → followers: a group-committed run of
    /// consecutively stamped slots (`payloads[i]` binds slot
    /// `first_slot + i`). Slots were assigned at submission arrival, so
    /// the carried order is identical to per-slot `Ordered` fan-out; one
    /// wire frame (one reliable-link ack) covers the whole run.
    OrderedBatch {
        /// The stamping view.
        view: u64,
        /// Slot bound by `payloads[0]`.
        first_slot: u64,
        /// The bound payloads in slot order.
        payloads: Vec<SlotPayload<T>>,
    },
}

/// One process's endpoint of the view-based failover broadcast.
#[derive(Debug, Clone)]
pub struct ViewAbcast<T> {
    me: ProcessId,
    n: usize,
    cfg: ViewConfig,
    /// The currently installed view.
    view: u64,
    /// Ballot promise: having reported for a view change to `promised`,
    /// traffic from older views is ignored. `promised >= view` always.
    promised: u64,
    /// The view change in progress (`Some(target)` after proposing or
    /// joining one), cleared when a view >= target is installed.
    vc_target: Option<u64>,
    /// All slot bindings this process knows: the delivered prefix plus
    /// out-of-order/adopted entries above it.
    log: BTreeMap<u64, SlotEntry<T>>,
    /// Identities of all stamped items in `log` (exactly-once dedup).
    stamped: BTreeSet<(u32, u64)>,
    next_to_deliver: u64,
    delivered_count: u64,
    delivered: Vec<Delivery<T>>,
    /// Origin side: next local submission number and the submissions not
    /// yet seen in the delivered order (re-proposed across view changes).
    next_oseq: u64,
    my_pending: BTreeMap<u64, T>,
    /// Leader side: next slot to assign, and the delivery cursor each
    /// peer last acknowledged (gates the leader's own delivery).
    next_slot: u64,
    peer_ack: Vec<u64>,
    /// Leader-elect side: collected view-change reports, keyed by sender,
    /// for `collect_target`: (normal_view, delivered_up_to, entries).
    #[allow(clippy::type_complexity)]
    reports: BTreeMap<u32, (u64, u64, Vec<(u64, SlotEntry<T>)>)>,
    collect_target: u64,
    /// Timer machinery: the host-synchronized clock, the armed suspicion
    /// deadline, the backoff exponent, and the progress watermark the
    /// deadline was armed against.
    now: u64,
    deadline: Option<u64>,
    backoff_exp: u32,
    watermark: (u64, u64, usize, u64),
    transcript: Vec<String>,
    /// Group-commit configuration (meaningful only while leading).
    batch: BatchConfig,
    /// Stamped-but-unfanned slot run; `fan_pending[i]` binds slot
    /// `fan_first + i` in the current view (consecutive by construction).
    fan_pending: Vec<SlotPayload<T>>,
    /// Slot bound by `fan_pending[0]`.
    fan_first: u64,
    /// Absolute flush time for the current partial batch, once armed.
    batch_deadline: Option<u64>,
    /// Stamping-side batching counters.
    batch_stats: BatchStats,
}

impl<T: Clone + fmt::Debug> ViewAbcast<T> {
    /// The leader of view `v`: deterministic rotation over the processes.
    pub fn leader_of(&self, v: u64) -> ProcessId {
        ProcessId::new((v % self.n as u64) as u32)
    }

    /// The currently installed view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether this endpoint currently leads its installed view (and is
    /// not in the middle of a view change).
    pub fn is_leader(&self) -> bool {
        self.leader_of(self.view) == self.me && self.vc_target.is_none()
    }

    /// Number of own submissions not yet delivered.
    pub fn pending_submissions(&self) -> usize {
        self.my_pending.len()
    }

    fn current_timeout(&self) -> u64 {
        self.cfg
            .suspect_timeout_ns
            .checked_shl(self.backoff_exp.min(16))
            .unwrap_or(u64::MAX)
            .min(self.cfg.max_suspect_timeout_ns)
            .max(1)
    }

    /// Is there unfinished business that justifies a suspicion timer?
    fn business_pending(&self) -> bool {
        !self.my_pending.is_empty()
            || self.vc_target.is_some()
            || self.log.range(self.next_to_deliver..).next().is_some()
    }

    fn snapshot(&self) -> (u64, u64, usize, u64) {
        (
            self.view,
            self.next_to_deliver,
            self.my_pending.len(),
            self.vc_target.unwrap_or(0),
        )
    }

    fn rebuild_stamped(&mut self) {
        self.stamped = self
            .log
            .values()
            .filter_map(|e| e.payload.identity())
            .map(|(p, s)| (p.as_u32(), s))
            .collect();
    }

    /// Gap-free delivery from the slot cursor. Followers deliver freely;
    /// the leader of the current view only delivers slots some other
    /// process has acknowledged (see the module docs). Sends a cumulative
    /// `Ack` to the leader when the cursor advanced.
    fn pump(&mut self, out: &mut Outbox<ViewMsg<T>>) {
        let leader = self.leader_of(self.view);
        let i_lead = leader == self.me;
        let gate = if i_lead && self.n > 1 {
            self.peer_ack
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != self.me.index())
                .map(|(_, &a)| a)
                .max()
                .unwrap_or(0)
        } else {
            u64::MAX
        };
        let mut advanced = false;
        loop {
            if self.next_to_deliver >= gate {
                break;
            }
            let Some(entry) = self.log.get(&self.next_to_deliver) else {
                break;
            };
            if let SlotPayload::Item { origin, oseq, item } = &entry.payload {
                self.delivered.push(Delivery {
                    origin: *origin,
                    global_seq: self.delivered_count,
                    item: item.clone(),
                });
                self.delivered_count += 1;
                if *origin == self.me {
                    self.my_pending.remove(oseq);
                }
            }
            self.next_to_deliver += 1;
            advanced = true;
        }
        if advanced && !i_lead {
            out.send(
                leader,
                ViewMsg::Ack {
                    view: self.view,
                    next_to_deliver: self.next_to_deliver,
                },
            );
        }
    }

    /// Leader of the current view: bind `(origin, oseq, item)` to the
    /// next slot (unless that identity is already stamped) and fan the
    /// binding out.
    fn stamp(&mut self, origin: ProcessId, oseq: u64, item: T, out: &mut Outbox<ViewMsg<T>>) {
        if !self.stamped.insert((origin.as_u32(), oseq)) {
            return;
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        let payload = SlotPayload::Item { origin, oseq, item };
        self.log.insert(
            slot,
            SlotEntry {
                view: self.view,
                payload: payload.clone(),
            },
        );
        self.batch_stats.items_stamped += 1;
        if self.batch.enabled() {
            // Slot assigned now, fan-out deferred: the binding joins the
            // pending group-commit run. The agreed order is fixed by the
            // slot number, so batching cannot reorder anything.
            if self.fan_pending.is_empty() {
                self.fan_first = slot;
            }
            self.fan_pending.push(payload);
            if self.fan_pending.len() >= self.batch.max_batch {
                self.flush_fan(out);
            }
        } else {
            self.batch_stats.batches_flushed += 1;
            for p in 0..self.n {
                if p != self.me.index() {
                    out.send(
                        ProcessId::new(p as u32),
                        ViewMsg::Ordered {
                            view: self.view,
                            slot,
                            payload: payload.clone(),
                        },
                    );
                }
            }
        }
        self.pump(out);
    }

    /// Fans the pending stamped slot run out as one `OrderedBatch` frame
    /// per follower.
    fn flush_fan(&mut self, out: &mut Outbox<ViewMsg<T>>) {
        if self.fan_pending.is_empty() {
            return;
        }
        let payloads = std::mem::take(&mut self.fan_pending);
        self.batch_deadline = None;
        self.batch_stats.batches_flushed += 1;
        for p in 0..self.n {
            if p != self.me.index() {
                out.send(
                    ProcessId::new(p as u32),
                    ViewMsg::OrderedBatch {
                        view: self.view,
                        first_slot: self.fan_first,
                        payloads: payloads.clone(),
                    },
                );
            }
        }
    }

    /// Abandons the pending fan-out run across a view transition. The
    /// bindings stay in our log (and hence in our view-change report);
    /// if the transition loses them anyway they were unacked — thus
    /// undelivered anywhere — and their origins re-propose them.
    fn drop_fan(&mut self) {
        self.fan_pending.clear();
        self.batch_deadline = None;
    }

    /// Builds this process's view-change report for `target`.
    fn my_report(&self, target: u64) -> ViewMsg<T> {
        ViewMsg::ViewChange {
            target,
            normal_view: self.view,
            delivered_up_to: self.next_to_deliver,
            entries: self.log.iter().map(|(s, e)| (*s, e.clone())).collect(),
        }
    }

    /// Proposes (or joins) the change to `target`: promise the ballot,
    /// report to the leader-elect, and — if that is us — open collection.
    fn join_view_change(&mut self, target: u64, out: &mut Outbox<ViewMsg<T>>) {
        if target <= self.promised && self.vc_target.is_some() {
            return;
        }
        if target <= self.view {
            return;
        }
        self.promised = self.promised.max(target);
        self.vc_target = Some(target);
        self.drop_fan();
        let elect = self.leader_of(target);
        self.transcript.push(format!(
            "P{}: suspect v{} -> propose v{} (leader-elect P{})",
            self.me.as_u32(),
            self.view,
            target,
            elect.as_u32()
        ));
        if elect == self.me {
            self.open_collection(target, out);
        } else {
            out.send(elect, self.my_report(target));
        }
    }

    /// Leader-elect: start (or restart) collecting reports for `target`,
    /// seeding the set with our own.
    fn open_collection(&mut self, target: u64, out: &mut Outbox<ViewMsg<T>>) {
        if target > self.collect_target {
            self.reports.clear();
            self.collect_target = target;
        }
        self.reports.insert(
            self.me.as_u32(),
            (
                self.view,
                self.next_to_deliver,
                self.log.iter().map(|(s, e)| (*s, e.clone())).collect(),
            ),
        );
        for p in 0..self.n {
            if p != self.me.index() {
                out.send(ProcessId::new(p as u32), ViewMsg::Collect { target });
            }
        }
        self.try_install(out);
    }

    /// Installs `collect_target` once every process except the suspected
    /// old leader has reported.
    fn try_install(&mut self, out: &mut Outbox<ViewMsg<T>>) {
        let target = self.collect_target;
        if self.vc_target != Some(target) || self.leader_of(target) != self.me {
            return;
        }
        let old_leader = self.leader_of(target.wrapping_sub(1));
        let quorum = (0..self.n as u32)
            .filter(|&p| ProcessId::new(p) != old_leader)
            .all(|p| self.reports.contains_key(&p));
        if !quorum {
            return;
        }

        // Adopt the single authoritative log: the longest log among the
        // reports with the maximal installed ("normal") view. Same-view
        // logs are a common base plus a prefix of that view's stamp
        // stream, hence prefix-comparable, and the ack discipline puts
        // every delivered slot in at least one required report — so this
        // log contains every delivery anywhere, and stale bindings from
        // dead views are discarded rather than resurrected.
        let vmax = self
            .reports
            .values()
            .map(|(nv, _, _)| *nv)
            .max()
            .unwrap_or(0);
        let mut adopted: BTreeMap<u64, SlotEntry<T>> = BTreeMap::new();
        let mut best_len = 0usize;
        let mut stable = 0u64;
        for (nv, delivered_up_to, entries) in self.reports.values() {
            stable = stable.max(*delivered_up_to);
            if *nv == vmax && (entries.len() > best_len || adopted.is_empty()) {
                best_len = entries.len();
                adopted = entries.iter().map(|(s, e)| (*s, e.clone())).collect();
            }
        }
        let top = adopted.keys().next_back().map_or(0, |s| s + 1);
        let mut noops = 0u64;
        for slot in 0..top {
            adopted.entry(slot).or_insert_with(|| {
                noops += 1;
                SlotEntry {
                    view: target,
                    payload: SlotPayload::Noop,
                }
            });
        }
        // Re-stamp every adopted binding with the new view so this log is
        // authoritative in any later merge.
        for entry in adopted.values_mut() {
            entry.view = target;
        }

        // Seed the ack gate from the reports: a reporter's delivered
        // prefix is a standing acknowledgement (our own cursor is not an
        // *external* ack, so it stays zeroed).
        let mut acks = vec![0u64; self.n];
        for (&p, (_, delivered_up_to, _)) in self.reports.iter() {
            acks[p as usize] = *delivered_up_to;
        }
        acks[self.me.index()] = 0;

        // Install locally.
        self.drop_fan();
        self.log = adopted;
        self.rebuild_stamped();
        self.view = target;
        self.promised = target;
        self.vc_target = None;
        self.reports.clear();
        self.next_slot = top;
        self.peer_ack = acks;
        self.transcript.push(format!(
            "P{}: install v{} stable={} slots={} noops={}",
            self.me.as_u32(),
            target,
            stable,
            top,
            noops
        ));
        let entries: Vec<(u64, SlotEntry<T>)> =
            self.log.iter().map(|(s, e)| (*s, e.clone())).collect();
        for p in 0..self.n {
            if p != self.me.index() {
                out.send(
                    ProcessId::new(p as u32),
                    ViewMsg::NewView {
                        view: target,
                        entries: entries.clone(),
                    },
                );
            }
        }
        self.pump(out);
        // Re-propose our own unordered submissions in the new view.
        let mine: Vec<(u64, T)> = self
            .my_pending
            .iter()
            .filter(|(oseq, _)| !self.stamped.contains(&(self.me.as_u32(), **oseq)))
            .map(|(o, i)| (*o, i.clone()))
            .collect();
        for (oseq, item) in mine {
            self.stamp(self.me, oseq, item, out);
        }
        self.progress_made();
    }

    /// Adopts a `NewView` installed by another leader.
    fn adopt(&mut self, v: u64, entries: Vec<(u64, SlotEntry<T>)>, out: &mut Outbox<ViewMsg<T>>) {
        if v < self.promised || v <= self.view {
            return;
        }
        self.drop_fan();
        // Keep the immutable delivered prefix, replace everything above.
        self.log.retain(|slot, _| *slot < self.next_to_deliver);
        for (slot, entry) in entries {
            if slot >= self.next_to_deliver {
                self.log.insert(slot, entry);
            } else if cfg!(debug_assertions) {
                let have = self.log.get(&slot).map(|e| e.payload.identity());
                debug_assert_eq!(
                    have,
                    Some(entry.payload.identity()),
                    "NewView v{v} rebinds delivered slot {slot}: forked order"
                );
            }
        }
        self.rebuild_stamped();
        self.view = v;
        self.promised = v;
        self.vc_target = None;
        self.next_slot = self.log.keys().next_back().map_or(0, |s| s + 1);
        self.peer_ack = vec![0; self.n];
        let leader = self.leader_of(v);
        self.transcript.push(format!(
            "P{}: adopt v{} leader=P{} slots={}",
            self.me.as_u32(),
            v,
            leader.as_u32(),
            self.next_slot
        ));
        self.pump(out);
        out.send(
            leader,
            ViewMsg::Ack {
                view: self.view,
                next_to_deliver: self.next_to_deliver,
            },
        );
        // Re-propose our submissions the adopted log does not contain.
        let mine: Vec<(u64, T)> = self
            .my_pending
            .iter()
            .filter(|(oseq, _)| !self.stamped.contains(&(self.me.as_u32(), **oseq)))
            .map(|(o, i)| (*o, i.clone()))
            .collect();
        for (oseq, item) in mine {
            out.send(
                leader,
                ViewMsg::Submit {
                    view: self.view,
                    origin: self.me,
                    oseq,
                    item,
                },
            );
        }
        self.progress_made();
    }

    /// Progress was observed: reset the backoff and let the timer re-arm
    /// from a fresh watermark.
    fn progress_made(&mut self) {
        self.backoff_exp = 0;
        self.deadline = None;
    }
}

impl<T: Clone + fmt::Debug> Abcast<T> for ViewAbcast<T> {
    type Msg = ViewMsg<T>;

    fn new(me: ProcessId, n: usize) -> Self {
        ViewAbcast {
            me,
            n,
            cfg: ViewConfig::default(),
            view: 0,
            promised: 0,
            vc_target: None,
            log: BTreeMap::new(),
            stamped: BTreeSet::new(),
            next_to_deliver: 0,
            delivered_count: 0,
            delivered: Vec::new(),
            next_oseq: 0,
            my_pending: BTreeMap::new(),
            next_slot: 0,
            peer_ack: vec![0; n],
            reports: BTreeMap::new(),
            collect_target: 0,
            now: 0,
            deadline: None,
            backoff_exp: 0,
            watermark: (0, 0, 0, 0),
            transcript: Vec::new(),
            batch: BatchConfig::default(),
            fan_pending: Vec::new(),
            fan_first: 0,
            batch_deadline: None,
            batch_stats: BatchStats::default(),
        }
    }

    fn broadcast(&mut self, item: T, out: &mut Outbox<Self::Msg>) {
        let oseq = self.next_oseq;
        self.next_oseq += 1;
        self.my_pending.insert(oseq, item.clone());
        if self.vc_target.is_some() {
            // A view change is in flight; the submission is re-proposed
            // when the new view is installed.
            return;
        }
        if self.is_leader() {
            self.stamp(self.me, oseq, item, out);
        } else {
            out.send(
                self.leader_of(self.view),
                ViewMsg::Submit {
                    view: self.view,
                    origin: self.me,
                    oseq,
                    item,
                },
            );
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            ViewMsg::Submit {
                view,
                origin,
                oseq,
                item,
            } => {
                // Stale or early submissions are dropped: the origin
                // re-proposes after adopting the current view, and the
                // stamped-identity set keeps this exactly-once.
                if view == self.view && self.is_leader() {
                    self.stamp(origin, oseq, item, out);
                }
            }
            ViewMsg::Ordered {
                view,
                slot,
                payload,
            } => {
                if view != self.view || self.vc_target.is_some() {
                    // Bindings from other views are ignored; anything
                    // that matters is recovered by the view change.
                    return;
                }
                if slot >= self.next_to_deliver {
                    if let Some((p, o)) = payload.identity() {
                        self.stamped.insert((p.as_u32(), o));
                    }
                    self.log.insert(slot, SlotEntry { view, payload });
                    self.pump(out);
                }
            }
            ViewMsg::Ack {
                view,
                next_to_deliver,
            } => {
                if view == self.view && self.is_leader() {
                    let slot = &mut self.peer_ack[from.index()];
                    *slot = (*slot).max(next_to_deliver);
                    self.pump(out);
                }
            }
            ViewMsg::ViewChange {
                target,
                normal_view,
                delivered_up_to,
                entries,
            } => {
                if target <= self.view || self.leader_of(target) != self.me {
                    return;
                }
                // First report for a higher target makes us join it.
                self.join_view_change(target, out);
                if self.collect_target == target {
                    self.reports
                        .insert(from.as_u32(), (normal_view, delivered_up_to, entries));
                    self.try_install(out);
                }
            }
            ViewMsg::Collect { target } => {
                if target > self.view && target > self.promised {
                    self.join_view_change(target, out);
                } else if self.vc_target == Some(target) && self.leader_of(target) != self.me {
                    // Already promised this target (e.g. we proposed it):
                    // (re)send our report to the leader-elect.
                    out.send(self.leader_of(target), self.my_report(target));
                }
            }
            ViewMsg::NewView { view, entries } => {
                self.adopt(view, entries, out);
            }
            ViewMsg::OrderedBatch {
                view,
                first_slot,
                payloads,
            } => {
                if view != self.view || self.vc_target.is_some() {
                    return;
                }
                for (i, payload) in payloads.into_iter().enumerate() {
                    let slot = first_slot + i as u64;
                    if slot >= self.next_to_deliver {
                        if let Some((p, o)) = payload.identity() {
                            self.stamped.insert((p.as_u32(), o));
                        }
                        self.log.insert(slot, SlotEntry { view, payload });
                    }
                }
                self.pump(out);
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Delivery<T>> {
        std::mem::take(&mut self.delivered)
    }

    fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    fn next_deadline(&self) -> Option<u64> {
        let suspicion = if let Some(d) = self.deadline {
            Some(d)
        } else if self.business_pending() {
            // Not yet armed: ask the host for an immediate tick so the
            // deadline can be computed against a fresh clock.
            Some(self.now.saturating_add(1))
        } else {
            None
        };
        let flush = if self.fan_pending.is_empty() {
            None
        } else {
            Some(
                self.batch_deadline
                    .unwrap_or_else(|| self.now.saturating_add(1)),
            )
        };
        match (suspicion, flush) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn on_tick(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        self.now = self.now.max(now_ns);
        // Group-commit window first: arm it on the first tick after a
        // partial batch appeared, flush it once it expires.
        if !self.fan_pending.is_empty() {
            match self.batch_deadline {
                None => {
                    let d = self.now.saturating_add(self.batch.max_delay_ns);
                    if d <= self.now {
                        self.flush_fan(out);
                    } else {
                        self.batch_deadline = Some(d);
                    }
                }
                Some(d) if self.now >= d => self.flush_fan(out),
                Some(_) => {}
            }
        }
        if !self.business_pending() {
            self.deadline = None;
            return;
        }
        match self.deadline {
            None => {
                self.watermark = self.snapshot();
                self.deadline = Some(self.now + self.current_timeout());
            }
            Some(d) if self.now >= d => {
                if self.snapshot() != self.watermark {
                    // Progress since arming: fresh timeout, no suspicion.
                    self.backoff_exp = 0;
                    self.watermark = self.snapshot();
                    self.deadline = Some(self.now + self.current_timeout());
                } else {
                    let target = self.vc_target.map_or(self.view + 1, |t| t + 1);
                    self.backoff_exp = (self.backoff_exp + 1).min(16);
                    self.join_view_change(target, out);
                    self.watermark = self.snapshot();
                    self.deadline = Some(self.now + self.current_timeout());
                }
            }
            Some(_) => {}
        }
    }

    fn on_restart(&mut self, now_ns: u64, _out: &mut Outbox<Self::Msg>) {
        // Fail-recover: ordering state survived. The link's rejoin
        // handshake replays whatever NewView/Ordered traffic we missed;
        // if the cluster moved on we adopt the newer view from it and
        // continue as a follower. Just resynchronize the clock and let
        // the suspicion machinery re-arm.
        self.now = self.now.max(now_ns);
        self.deadline = None;
        self.backoff_exp = 0;
        // An unfanned stamped run died with the crash, like in-flight
        // wire frames; the bindings stay in our log and the suspicion
        // machinery recovers them via the next view change if needed.
        self.drop_fan();
        self.transcript
            .push(format!("P{}: restart in v{}", self.me.as_u32(), self.view));
    }

    fn set_batching(&mut self, cfg: BatchConfig) {
        debug_assert!(
            self.next_slot == 0 && self.delivered_count == 0 && self.next_oseq == 0,
            "batching must be configured before any traffic"
        );
        self.batch = cfg;
    }

    fn batch_stats(&self) -> BatchStats {
        self.batch_stats
    }

    fn set_failover_timeouts(&mut self, base_ns: u64, max_ns: u64) {
        self.cfg = ViewConfig {
            suspect_timeout_ns: base_ns.max(1),
            max_suspect_timeout_ns: max_ns.max(base_ns.max(1)),
        };
    }

    fn transcript(&self) -> Vec<String> {
        self.transcript.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// A tiny loss-free router for driving endpoints by hand: per-pair
    /// FIFO queues (the reliable-link contract), with crashed processes
    /// simply not draining their queues until restart.
    struct Net {
        queues: Vec<Vec<std::collections::VecDeque<ViewMsg<u64>>>>,
        down: Vec<bool>,
    }

    impl Net {
        fn new(n: usize) -> Self {
            Net {
                queues: (0..n)
                    .map(|_| (0..n).map(|_| std::collections::VecDeque::new()).collect())
                    .collect(),
                down: vec![false; n],
            }
        }

        fn push(&mut self, from: ProcessId, out: &mut Outbox<ViewMsg<u64>>) {
            for (to, m) in out.drain() {
                self.queues[from.index()][to.index()].push_back(m);
            }
        }

        /// Delivers every queued message to every up process, repeatedly,
        /// until quiet. Returns the number of messages moved.
        fn settle(&mut self, nodes: &mut [ViewAbcast<u64>]) -> usize {
            let n = nodes.len();
            let mut moved = 0;
            loop {
                let mut any = false;
                for from in 0..n {
                    for to in 0..n {
                        if self.down[to] || self.down[from] {
                            continue;
                        }
                        while let Some(m) = self.queues[from][to].pop_front() {
                            let mut out = Outbox::new(n);
                            nodes[to].on_message(pid(from as u32), m, &mut out);
                            self.push(pid(to as u32), &mut out);
                            any = true;
                            moved += 1;
                        }
                    }
                }
                if !any {
                    return moved;
                }
            }
        }

        /// Ticks every up process at `now`, routing what they send.
        fn tick_all(&mut self, nodes: &mut [ViewAbcast<u64>], now: u64) {
            for (p, node) in nodes.iter_mut().enumerate() {
                if self.down[p] {
                    continue;
                }
                let mut out = Outbox::new(nodes_len(&self.queues));
                node.on_tick(now, &mut out);
                self.push(pid(p as u32), &mut out);
            }
        }
    }

    fn nodes_len(q: &[Vec<std::collections::VecDeque<ViewMsg<u64>>>]) -> usize {
        q.len()
    }

    fn cluster(n: usize) -> (Vec<ViewAbcast<u64>>, Net) {
        let nodes = (0..n)
            .map(|p| ViewAbcast::new(pid(p as u32), n))
            .collect::<Vec<_>>();
        (nodes, Net::new(n))
    }

    fn submit(nodes: &mut [ViewAbcast<u64>], net: &mut Net, p: usize, item: u64) {
        let n = nodes.len();
        let mut out = Outbox::new(n);
        nodes[p].broadcast(item, &mut out);
        net.push(pid(p as u32), &mut out);
    }

    fn delivered_items(node: &mut ViewAbcast<u64>, into: &mut Vec<u64>) {
        for d in node.drain_delivered() {
            into.push(d.item);
        }
    }

    #[test]
    fn steady_state_orders_like_a_sequencer() {
        let (mut nodes, mut net) = cluster(3);
        submit(&mut nodes, &mut net, 1, 10);
        submit(&mut nodes, &mut net, 2, 20);
        submit(&mut nodes, &mut net, 0, 30);
        net.settle(&mut nodes);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (p, node) in nodes.iter_mut().enumerate() {
            delivered_items(node, &mut seqs[p]);
        }
        assert_eq!(seqs[0].len(), 3, "validity");
        assert_eq!(seqs[0], seqs[1], "total order");
        assert_eq!(seqs[1], seqs[2], "total order");
        assert!(nodes.iter().all(|n| n.view() == 0), "no spurious change");
        assert!(nodes[0].transcript().is_empty());
    }

    #[test]
    fn leader_crash_fails_over_and_completes() {
        let (mut nodes, mut net) = cluster(3);
        // P1's submission is stamped by P0 and delivered everywhere.
        submit(&mut nodes, &mut net, 1, 10);
        net.settle(&mut nodes);
        // P0 goes down; P2 submits into the void.
        net.down[0] = true;
        submit(&mut nodes, &mut net, 2, 20);
        net.settle(&mut nodes);
        // Suspicion fires (two ticks: arm, then expire) and the view
        // change completes among the survivors.
        net.tick_all(&mut nodes, 1_000_000);
        net.settle(&mut nodes);
        net.tick_all(&mut nodes, 2_000_000);
        net.settle(&mut nodes);
        assert_eq!(nodes[1].view(), 1, "survivors installed view 1");
        assert_eq!(nodes[2].view(), 1);
        assert!(nodes[1].is_leader(), "leader rotation: view 1 -> P1");
        let mut got1 = Vec::new();
        let mut got2 = Vec::new();
        delivered_items(&mut nodes[1], &mut got1);
        delivered_items(&mut nodes[2], &mut got2);
        assert_eq!(got1, vec![10, 20], "no lost submission, agreed order");
        assert_eq!(got2, vec![10, 20]);
        // The ex-leader restarts and catches up from the retransmitted
        // NewView (modelled here by the queues simply draining late).
        net.down[0] = false;
        net.settle(&mut nodes);
        let mut got0 = Vec::new();
        delivered_items(&mut nodes[0], &mut got0);
        assert_eq!(got0, vec![10, 20], "ex-leader rejoins as follower");
        assert_eq!(nodes[0].view(), 1);
        assert!(!nodes[0].transcript().is_empty() || !nodes[1].transcript().is_empty());
    }

    #[test]
    fn two_successive_leader_crashes() {
        let (mut nodes, mut net) = cluster(3);
        submit(&mut nodes, &mut net, 1, 10);
        net.settle(&mut nodes);
        // Crash P0, fail over to P1.
        net.down[0] = true;
        submit(&mut nodes, &mut net, 2, 20);
        net.settle(&mut nodes);
        net.tick_all(&mut nodes, 1_000_000);
        net.settle(&mut nodes);
        net.tick_all(&mut nodes, 2_000_000);
        net.settle(&mut nodes);
        assert_eq!(nodes[2].view(), 1);
        // P0 restarts (required: view changes wait for all but the old
        // leader), then P1 — the new leader — crashes too.
        net.down[0] = false;
        net.settle(&mut nodes);
        net.down[1] = true;
        submit(&mut nodes, &mut net, 2, 30);
        net.settle(&mut nodes);
        net.tick_all(&mut nodes, 4_000_000);
        net.settle(&mut nodes);
        net.tick_all(&mut nodes, 8_000_000);
        net.settle(&mut nodes);
        assert_eq!(nodes[2].view(), 2, "second failover installed view 2");
        assert!(nodes[2].is_leader());
        net.down[1] = false;
        net.settle(&mut nodes);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (p, node) in nodes.iter_mut().enumerate() {
            delivered_items(node, &mut seqs[p]);
        }
        assert_eq!(seqs[0], seqs[1]);
        assert_eq!(seqs[1], seqs[2]);
        let mut all = seqs[0].clone();
        all.sort_unstable();
        assert_eq!(all, vec![10, 20, 30], "exactly-once, nothing lost");
    }

    #[test]
    fn false_suspicion_is_safe() {
        // The leader is merely slow (messages delayed, not lost): a view
        // change happens anyway, and nothing is delivered twice or
        // reordered.
        let (mut nodes, mut net) = cluster(3);
        submit(&mut nodes, &mut net, 1, 10);
        // Don't settle: the Submit sits queued ("slow"). Suspicion fires.
        net.tick_all(&mut nodes, 1_000_000);
        net.settle(&mut nodes);
        net.tick_all(&mut nodes, 2_000_000);
        net.settle(&mut nodes);
        // Everything (including the stale Submit) eventually drains.
        net.settle(&mut nodes);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (p, node) in nodes.iter_mut().enumerate() {
            delivered_items(node, &mut seqs[p]);
        }
        assert_eq!(seqs[0], seqs[1]);
        assert_eq!(seqs[1], seqs[2]);
        assert_eq!(seqs[0], vec![10], "delivered exactly once despite churn");
    }

    #[test]
    fn deadline_is_requested_only_when_business_pends() {
        let mut a: ViewAbcast<u64> = ViewAbcast::new(pid(1), 3);
        assert_eq!(a.next_deadline(), None);
        let mut out = Outbox::new(3);
        a.broadcast(7, &mut out);
        assert!(a.next_deadline().is_some(), "pending submission arms");
        let mut out2 = Outbox::new(3);
        a.on_tick(1_000, &mut out2);
        let d = a.next_deadline().unwrap();
        assert!(d > 1_000, "armed relative to the fresh clock");
        assert!(out2.is_empty(), "arming sends nothing");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut a: ViewAbcast<u64> = ViewAbcast::new(pid(2), 3);
        a.set_failover_timeouts(100, 350);
        let mut out = Outbox::new(3);
        a.broadcast(1, &mut out);
        let mut now = 10;
        a.on_tick(now, &mut out); // arm at 110
        assert_eq!(a.next_deadline(), Some(110));
        now = 110;
        a.on_tick(now, &mut out); // fire: propose v1, re-arm at 110+200
        assert_eq!(a.next_deadline(), Some(310));
        now = 310;
        a.on_tick(now, &mut out); // fire: propose v2, re-arm capped
        assert_eq!(a.next_deadline(), Some(310 + 350));
    }

    #[test]
    fn leader_batches_fan_out_into_one_frame() {
        let (mut nodes, mut net) = cluster(2);
        nodes[0].set_batching(BatchConfig {
            max_batch: 2,
            max_delay_ns: 1_000_000,
        });
        // First submission stamps a slot but defers the fan-out.
        let mut out = Outbox::new(2);
        nodes[0].broadcast(10, &mut out);
        assert!(out.is_empty(), "sub-threshold batch stays off the wire");
        // Second submission hits the threshold: exactly one frame to P1.
        let mut out = Outbox::new(2);
        nodes[0].broadcast(20, &mut out);
        let framed = out.drain();
        assert_eq!(framed.len(), 1, "one frame covers the whole batch");
        match &framed[0] {
            (
                to,
                ViewMsg::OrderedBatch {
                    first_slot,
                    payloads,
                    ..
                },
            ) => {
                assert_eq!(*to, pid(1));
                assert_eq!(*first_slot, 0);
                assert_eq!(payloads.len(), 2);
            }
            other => panic!("expected OrderedBatch, got {other:?}"),
        }
        for (to, m) in framed {
            net.queues[0][to.index()].push_back(m);
        }
        net.settle(&mut nodes);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for (p, node) in nodes.iter_mut().enumerate() {
            delivered_items(node, &mut seqs[p]);
        }
        assert_eq!(seqs[0], vec![10, 20], "ack-gated leader delivery");
        assert_eq!(seqs[1], vec![10, 20], "follower delivers in slot order");
        assert!(nodes[0].batch_stats().occupancy() > 1.0);
    }

    #[test]
    fn partial_fan_flushes_at_the_deadline() {
        let (mut nodes, mut net) = cluster(2);
        nodes[0].set_batching(BatchConfig {
            max_batch: 8,
            max_delay_ns: 500,
        });
        submit(&mut nodes, &mut net, 0, 10);
        assert_eq!(net.settle(&mut nodes), 0, "batch pends, wire is quiet");
        net.tick_all(&mut nodes, 100); // arms the flush window
        assert_eq!(
            nodes[0].next_deadline(),
            Some(600),
            "flush before suspicion"
        );
        net.tick_all(&mut nodes, 600); // window expires: flush
        net.settle(&mut nodes);
        let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); 2];
        for (p, node) in nodes.iter_mut().enumerate() {
            delivered_items(node, &mut seqs[p]);
        }
        assert_eq!(seqs[0], vec![10]);
        assert_eq!(seqs[1], vec![10]);
        assert_eq!(nodes[0].batch_stats().batches_flushed, 1);
    }
}
