//! ISIS/Skeen agreed-timestamp atomic broadcast.
//!
//! A decentralized total-order broadcast with no fixed sequencer:
//!
//! 1. The sender assigns its message a unique id and sends `Propose` to
//!    every process.
//! 2. Each receiver bumps its Lamport clock, tentatively orders the message
//!    at `(clock, receiver)` and answers the sender with that *proposed*
//!    timestamp.
//! 3. Once the sender has all `n` proposals it fixes the *final* timestamp
//!    as their maximum and announces it with `Final`.
//! 4. Every process keeps pending messages ordered by their current
//!    timestamp (proposed until finalized) and delivers the front message
//!    once it is finalized — a pending message's proposal is a lower bound
//!    on its final timestamp, so nothing can later sneak ahead of a
//!    delivered message.
//!
//! Timestamps are `(clock, proposer)` pairs, unique per proposal, so the
//! final order is a strict total order agreed by all processes.

use std::collections::HashMap;

use moc_core::ids::ProcessId;

use crate::{Abcast, Delivery, Outbox};

/// A Lamport timestamp: logical clock plus proposer id as tiebreak.
pub type LamportTs = (u64, u32);

/// Unique message id: origin plus per-origin counter.
pub type MsgId = (ProcessId, u64);

/// Wire messages of the ISIS protocol.
#[derive(Debug, Clone)]
pub enum IsisMsg<T> {
    /// Sender → everyone: a new message needing a timestamp.
    Propose {
        /// Message id.
        mid: MsgId,
        /// The payload.
        item: T,
    },
    /// Receiver → sender: tentative timestamp for `mid`.
    Proposal {
        /// Message id.
        mid: MsgId,
        /// The proposed timestamp.
        ts: LamportTs,
    },
    /// Sender → everyone: agreed final timestamp for `mid`.
    Final {
        /// Message id.
        mid: MsgId,
        /// The final timestamp (max of all proposals).
        ts: LamportTs,
    },
}

#[derive(Debug, Clone)]
struct Pending<T> {
    item: T,
    ts: LamportTs,
    finalized: bool,
}

#[derive(Debug, Clone, Default)]
struct Gather {
    max_ts: LamportTs,
    responses: usize,
}

/// One process's endpoint of the ISIS protocol.
#[derive(Debug, Clone)]
pub struct IsisAbcast<T> {
    me: ProcessId,
    n: usize,
    clock: u64,
    next_local: u64,
    pending: HashMap<MsgId, Pending<T>>,
    gathering: HashMap<MsgId, Gather>,
    delivered: Vec<Delivery<T>>,
    delivered_count: u64,
}

impl<T> IsisAbcast<T> {
    /// The current Lamport clock (for diagnostics).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of messages awaiting a final timestamp or a predecessor.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Delivers every finalized message that no pending message can
    /// precede. A pending (unfinalized) message's proposed timestamp is a
    /// lower bound on its final timestamp, so the front of the timestamp
    /// order is stable once finalized.
    fn pump(&mut self) {
        loop {
            let Some((&mid, _)) = self
                .pending
                .iter()
                .min_by_key(|(&(origin, seq), p)| (p.ts, origin, seq))
            else {
                return;
            };
            if !self.pending[&mid].finalized {
                return;
            }
            let p = self.pending.remove(&mid).expect("front exists");
            self.delivered.push(Delivery {
                origin: mid.0,
                global_seq: self.delivered_count,
                item: p.item,
            });
            self.delivered_count += 1;
        }
    }
}

impl<T: Clone + std::fmt::Debug> Abcast<T> for IsisAbcast<T> {
    type Msg = IsisMsg<T>;

    fn new(me: ProcessId, n: usize) -> Self {
        IsisAbcast {
            me,
            n,
            clock: 0,
            next_local: 0,
            pending: HashMap::new(),
            gathering: HashMap::new(),
            delivered: Vec::new(),
            delivered_count: 0,
        }
    }

    fn broadcast(&mut self, item: T, out: &mut Outbox<Self::Msg>) {
        let mid = (self.me, self.next_local);
        self.next_local += 1;
        self.gathering.insert(mid, Gather::default());
        out.send_all(IsisMsg::Propose { mid, item });
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        match msg {
            IsisMsg::Propose { mid, item } => {
                self.clock += 1;
                let ts = (self.clock, self.me.as_u32());
                self.pending.insert(
                    mid,
                    Pending {
                        item,
                        ts,
                        finalized: false,
                    },
                );
                out.send(mid.0, IsisMsg::Proposal { mid, ts });
            }
            IsisMsg::Proposal { mid, ts } => {
                debug_assert_eq!(mid.0, self.me, "proposal routed to non-origin");
                let _ = from;
                let g = self
                    .gathering
                    .get_mut(&mid)
                    .expect("proposal for unknown broadcast");
                g.max_ts = g.max_ts.max(ts);
                g.responses += 1;
                if g.responses == self.n {
                    let ts = g.max_ts;
                    self.gathering.remove(&mid);
                    out.send_all(IsisMsg::Final { mid, ts });
                }
            }
            IsisMsg::Final { mid, ts } => {
                // Keep the clock ahead of every finalized timestamp so
                // later proposals cannot be ordered before delivered
                // messages.
                self.clock = self.clock.max(ts.0);
                let p = self
                    .pending
                    .get_mut(&mid)
                    .expect("Final precedes Propose: channel created a message");
                p.ts = ts;
                p.finalized = true;
                self.pump();
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Delivery<T>> {
        std::mem::take(&mut self.delivered)
    }

    fn delivered_count(&self) -> u64 {
        self.delivered_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Hand-drive two endpoints through one broadcast.
    #[test]
    fn single_broadcast_roundtrip() {
        let n = 2;
        let mut a: IsisAbcast<u8> = IsisAbcast::new(pid(0), n);
        let mut b: IsisAbcast<u8> = IsisAbcast::new(pid(1), n);
        let mut out = Outbox::new(n);

        a.broadcast(42, &mut out);
        let proposes = out.drain();
        assert_eq!(proposes.len(), 2);

        // Both receive the Propose and answer with proposals.
        let mut proposals = Vec::new();
        for (to, m) in proposes {
            let node: &mut IsisAbcast<u8> = if to == pid(0) { &mut a } else { &mut b };
            let mut o = Outbox::new(n);
            node.on_message(pid(0), m, &mut o);
            proposals.extend(o.drain());
        }
        assert_eq!(proposals.len(), 2);
        assert!(a.drain_delivered().is_empty(), "not finalized yet");

        // Origin gathers proposals and emits Final.
        let mut finals = Vec::new();
        for (_, m) in proposals {
            let mut o = Outbox::new(n);
            a.on_message(pid(1), m, &mut o);
            finals.extend(o.drain());
        }
        assert_eq!(finals.len(), 2, "Final fans out to everyone");
        for (to, m) in finals {
            let node: &mut IsisAbcast<u8> = if to == pid(0) { &mut a } else { &mut b };
            let mut o = Outbox::new(n);
            node.on_message(pid(0), m, &mut o);
        }
        let da = a.drain_delivered();
        let db = b.drain_delivered();
        assert_eq!(da.len(), 1);
        assert_eq!(db.len(), 1);
        assert_eq!(da[0].item, 42);
        assert_eq!(da[0].origin, pid(0));
        assert_eq!(da[0].global_seq, 0);
        assert_eq!(a.pending_len(), 0);
        assert!(a.clock() > 0);
    }

    /// A finalized message must wait behind an unfinalized one with a
    /// smaller proposed timestamp.
    #[test]
    fn finalized_message_waits_for_smaller_pending() {
        let n = 3;
        let mut c: IsisAbcast<u8> = IsisAbcast::new(pid(2), n);
        let mut out = Outbox::new(n);
        // m1 proposed first (smaller local clock), not finalized.
        c.on_message(
            pid(0),
            IsisMsg::Propose {
                mid: (pid(0), 0),
                item: 1,
            },
            &mut out,
        );
        // m2 proposed second, then finalized with a big timestamp.
        c.on_message(
            pid(1),
            IsisMsg::Propose {
                mid: (pid(1), 0),
                item: 2,
            },
            &mut out,
        );
        c.on_message(
            pid(1),
            IsisMsg::Final {
                mid: (pid(1), 0),
                ts: (10, 1),
            },
            &mut out,
        );
        assert!(
            c.drain_delivered().is_empty(),
            "m1 could still finalize below m2"
        );
        // m1 finalizes above m2: both deliver, m2 first.
        c.on_message(
            pid(0),
            IsisMsg::Final {
                mid: (pid(0), 0),
                ts: (11, 0),
            },
            &mut out,
        );
        let got: Vec<u8> = c.drain_delivered().into_iter().map(|d| d.item).collect();
        assert_eq!(got, vec![2, 1]);
    }
}
