//! Conflict-sharded atomic broadcast over a certified shard partition.
//!
//! A [`ShardCert`](moc_core::shard::ShardCert) proves that the object
//! universe splits into shards such that every conflicting pair of
//! m-operations is confined to one shard (or explicitly enumerated as
//! cross-shard). [`ShardedAbcast`] exploits that proof: it runs one
//! independent [`SequencerAbcast`] ordering channel *per shard* plus one
//! global channel, and routes each broadcast by its object footprint
//! ([`ShardPlan::route`]):
//!
//! * a single-shard item goes through its shard's channel — ordered only
//!   against the items it can actually conflict with, by that shard's own
//!   sequencer (shard `s` is sequenced by process `(s + 1) mod n`, so the
//!   stamping load spreads across the cluster instead of serializing at
//!   process 0);
//! * a cross-shard (or unroutable) item falls back to the global channel
//!   (sequenced by process 0).
//!
//! **Merging** the channels back into one per-replica application order is
//! the delicate part. Independent channels are only safe for items that
//! never conflict; a global item conflicts with shard items, so its
//! position relative to *each* shard channel must be agreed. The global
//! sequencer therefore emits a `Barrier(k)` marker into every shard
//! channel when it stamps global item `k`. Each replica then applies:
//!
//! * shard-channel ops immediately, in channel order;
//! * a barrier `Barrier(j)` at a channel head raises that channel's
//!   barrier frontier to `j + 1` and holds the channel until global item
//!   `j` has applied;
//! * global item `k` once every shard channel's frontier exceeds `k`.
//!
//! Because each channel's delivery sequence is agreed (per-channel total
//! order), the position of `Barrier(k)` inside shard channel `s` is the
//! *same at every replica* — so every replica applies the same shard-`s`
//! ops before global item `k` and the same ops after it. Conflicting
//! pairs are thus consistently ordered everywhere:
//! same-shard pairs by their shard channel, global–global pairs by the
//! global channel, and global–shard pairs by the barrier's agreed slot.
//! Non-conflicting pairs may interleave differently per replica — which
//! is exactly what the certificate licenses (they commute).
//!
//! The frontier rule uses `max` (cumulative), not equality: the barrier
//! Submits travel over a reordering network, so `Barrier(1)` may be
//! stamped before `Barrier(0)` in some shard channel. A frontier of
//! `max(front, j + 1)` lets a later barrier cover earlier global items,
//! and induction over `k` keeps the merge deadlock-free.
//!
//! m-SC across shards additionally needs process confinement (the
//! certificate's `per-shard-with-process-confinement` side condition —
//! IRIW shows per-shard total orders alone are too weak); m-linearizability
//! composes unconditionally by locality.
//!
//! ## Commutativity fast paths
//!
//! An audited `moc-commute-cert` can be installed as a delivery-time
//! [`CommutePlan`] ([`Abcast::set_commute_plan`]), enabling two
//! out-of-order shortcuts the certificate proves harmless:
//!
//! * **Barrier skipping** — a global item need only wait for the barrier
//!   frontiers of shards it can actually conflict with. For a shard `s`
//!   where the plan shows the item writes nothing `s`'s programs may
//!   touch and touches nothing they may write, both relative orders
//!   yield identical states, so the frontier check is skipped.
//! * **Read-only self-delivery** — an item whose [`write_footprint`]
//!   [`Footprinted::write_footprint`] is empty changes no replica state,
//!   so it is applied locally at submission, without sequencer stamping
//!   or any messages at all. Such deliveries are **replica-private**:
//!   they appear only in the issuing endpoint's merged order, on a
//!   pseudo-channel one past the global channel, and are excluded from
//!   the cross-replica channel-agreement property.
//!
//! Installing a plan that *overclaims* commutation (see
//! [`CommutePlan::vacuous`]) re-creates exactly the divergence the
//! barriers exist to prevent — the chaos suite keeps a negative control
//! proving the damage is detectable.

use std::collections::VecDeque;
use std::fmt;

use moc_core::commute::CommutePlan;
use moc_core::ids::{ObjectId, ProcessId};
use moc_core::shard::{Footprinted, Route, ShardPlan};

use crate::sequencer::{SequencerAbcast, SequencerMsg};
use crate::{Abcast, BatchConfig, BatchStats, Delivery, Outbox};

/// Items carried inside a shard channel: real payloads and the barrier
/// markers that pin global items into the shard's order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardItem<T> {
    /// An application payload routed to this channel.
    Op(T),
    /// "Global item with stamp `k` sits *here* in this shard's order."
    Barrier(u64),
}

/// Wire message: a sequencer-protocol message tagged with its channel.
#[derive(Debug, Clone)]
pub struct ShardedMsg<T> {
    /// Channel index: `0..num_shards` are shard channels, `num_shards`
    /// is the global channel.
    pub channel: u32,
    /// The underlying fixed-sequencer protocol message.
    pub msg: SequencerMsg<ShardItem<T>>,
}

/// One process's endpoint of the conflict-sharded broadcast.
///
/// Degenerate until [`Abcast::set_shard_plan`] installs a partition: with
/// no plan there is a single global channel and the protocol behaves like
/// a plain [`SequencerAbcast`].
#[derive(Debug, Clone)]
pub struct ShardedAbcast<T> {
    me: ProcessId,
    n: usize,
    plan: Option<ShardPlan>,
    /// Delivery-time view of an audited commute certificate; gates the
    /// out-of-order fast paths. `None` disables both.
    commute: Option<CommutePlan>,
    /// Deliveries that bypassed an ordering wait via `commute`.
    fast_applied: u64,
    /// `channels[0..num_shards]` are shard channels; the last entry is
    /// always the global channel.
    channels: Vec<SequencerAbcast<ShardItem<T>>>,
    /// Delivered-but-unapplied items per channel, in channel order.
    pending: Vec<VecDeque<Delivery<ShardItem<T>>>>,
    /// Per shard channel: smallest global stamp NOT yet covered by a
    /// barrier that reached the channel head.
    barrier_front: Vec<u64>,
    /// Global stamps `< global_applied` have been applied locally.
    global_applied: u64,
    merged: Vec<Delivery<T>>,
    merged_count: u64,
    /// Channel index of each merged delivery, cumulatively.
    channel_trace: Vec<u32>,
    /// Group-commit configuration, propagated into every ordering
    /// channel (including channels created by a later shard plan).
    batch: BatchConfig,
}

impl<T: Clone + fmt::Debug + Footprinted> ShardedAbcast<T> {
    /// Total number of ordering channels (shards + the global channel).
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Index of the global fallback channel (always the last channel).
    pub fn global_channel(&self) -> u32 {
        (self.channels.len() - 1) as u32
    }

    /// The installed shard plan, if any.
    pub fn plan(&self) -> Option<&ShardPlan> {
        self.plan.as_ref()
    }

    /// Index of the replica-private pseudo-channel carrying read-only
    /// self-deliveries (one past the global channel; never on the wire).
    pub fn local_channel(&self) -> u32 {
        self.channels.len() as u32
    }

    /// Channels whose sequencer has fail-stopped after a restart.
    pub fn halted_channels(&self) -> Vec<u32> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, ch)| ch.is_halted())
            .map(|(c, _)| c as u32)
            .collect()
    }

    fn num_shards(&self) -> usize {
        self.channels.len() - 1
    }

    /// Drains `inner`, tagging messages with `channel`.
    fn relay(
        channel: usize,
        inner: &mut Outbox<SequencerMsg<ShardItem<T>>>,
        out: &mut Outbox<ShardedMsg<T>>,
    ) {
        for (to, msg) in inner.drain() {
            out.send(
                to,
                ShardedMsg {
                    channel: channel as u32,
                    msg,
                },
            );
        }
    }

    /// Post-step bookkeeping for channel `c`: if this endpoint (as the
    /// global sequencer) just *stamped* global items, pin each of them
    /// into every shard channel with a `Barrier(k)` submission. Keyed off
    /// stamp assignment — not fan-out — so group-commit batching never
    /// moves a barrier's agreed slot relative to the unbatched protocol.
    fn after_step(&mut self, c: usize, out: &mut Outbox<ShardedMsg<T>>) {
        let stamped = self.channels[c].take_newly_stamped();
        if c == self.num_shards() {
            for k in stamped {
                for s in 0..self.num_shards() {
                    let mut b = Outbox::new(out.num_processes());
                    self.channels[s].broadcast(ShardItem::Barrier(k), &mut b);
                    Self::relay(s, &mut b, out);
                }
            }
        }
        self.collect_delivered(c);
    }

    fn collect_delivered(&mut self, channel: usize) {
        for d in self.channels[channel].drain_delivered() {
            self.pending[channel].push_back(d);
        }
    }

    /// Applies everything applicable from the pending queues, repeating
    /// until a fixpoint: shard ops freely, barriers and global items under
    /// the frontier discipline described in the module docs.
    fn merge(&mut self) {
        let global = self.num_shards();
        loop {
            let mut progress = false;
            for c in 0..global {
                while let Some(head) = self.pending[c].front() {
                    match &head.item {
                        ShardItem::Op(_) => {
                            let d = self.pending[c].pop_front().unwrap();
                            self.apply(c, d);
                            progress = true;
                        }
                        ShardItem::Barrier(j) => {
                            let j = *j;
                            if self.barrier_front[c] <= j {
                                self.barrier_front[c] = j + 1;
                                progress = true;
                            }
                            if self.global_applied > j {
                                self.pending[c].pop_front();
                                progress = true;
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
            while let Some(head) = self.pending[global].front() {
                let k = head.global_seq;
                // Fast path: a frontier that hasn't covered `k` yet may
                // still be skipped when the commute plan proves the item
                // commutes with everything that shard's channel carries.
                let (clear, bypassed) =
                    if let (Some(cp), ShardItem::Op(it)) = (&self.commute, &head.item) {
                        let touches = it.footprint();
                        let writes = it.write_footprint();
                        let mut bypassed = false;
                        let clear = self.barrier_front.iter().enumerate().all(|(s, &f)| {
                            f > k || {
                                let c = cp.commutes_with_shard(s, &touches, &writes);
                                bypassed |= c;
                                c
                            }
                        });
                        (clear, clear && bypassed)
                    } else {
                        (self.barrier_front.iter().all(|&f| f > k), false)
                    };
                if clear {
                    let d = self.pending[global].pop_front().unwrap();
                    self.apply(global, d);
                    self.global_applied = k + 1;
                    if bypassed {
                        self.fast_applied += 1;
                    }
                    progress = true;
                } else {
                    break;
                }
            }
            if !progress {
                break;
            }
        }
    }

    fn apply(&mut self, channel: usize, d: Delivery<ShardItem<T>>) {
        if let ShardItem::Op(item) = d.item {
            self.merged.push(Delivery {
                origin: d.origin,
                global_seq: self.merged_count,
                item,
            });
            self.channel_trace.push(channel as u32);
            self.merged_count += 1;
        }
    }

    /// Routes a footprint through the plan, falling back to the global
    /// channel for cross-shard, empty, or out-of-universe footprints.
    fn channel_for(&self, footprint: &[ObjectId]) -> usize {
        let Some(plan) = &self.plan else {
            return self.num_shards(); // no plan: everything is global
        };
        if footprint.iter().any(|o| o.index() >= plan.num_objects()) {
            return self.num_shards();
        }
        match plan.route(footprint.iter().copied()) {
            Route::Shard(s) => s as usize,
            Route::Global => self.num_shards(),
        }
    }
}

impl<T: Clone + fmt::Debug + Footprinted> Abcast<T> for ShardedAbcast<T> {
    type Msg = ShardedMsg<T>;

    fn new(me: ProcessId, n: usize) -> Self {
        ShardedAbcast {
            me,
            n,
            plan: None,
            commute: None,
            fast_applied: 0,
            channels: vec![SequencerAbcast::new(me, n)],
            pending: vec![VecDeque::new()],
            barrier_front: Vec::new(),
            global_applied: 0,
            merged: Vec::new(),
            merged_count: 0,
            channel_trace: Vec::new(),
            batch: BatchConfig::default(),
        }
    }

    fn set_shard_plan(&mut self, plan: ShardPlan) {
        debug_assert!(
            self.merged_count == 0 && self.channels.iter().all(|c| c.delivered_count() == 0),
            "shard plan must be installed before any traffic"
        );
        let shards = plan.num_shards() as usize;
        let batch = self.batch;
        self.channels = (0..=shards)
            .map(|c| {
                let seqr = if c == shards {
                    ProcessId::new(0)
                } else {
                    ProcessId::new(((c + 1) % self.n) as u32)
                };
                let mut ch = SequencerAbcast::new(self.me, self.n).with_sequencer(seqr);
                ch.set_batching(batch);
                ch
            })
            .collect();
        self.pending = (0..=shards).map(|_| VecDeque::new()).collect();
        self.barrier_front = vec![0; shards];
        self.plan = Some(plan);
    }

    fn set_commute_plan(&mut self, plan: CommutePlan) {
        debug_assert!(
            self.merged_count == 0 && self.channels.iter().all(|c| c.delivered_count() == 0),
            "commute plan must be installed before any traffic"
        );
        debug_assert_eq!(
            plan.num_shards(),
            self.num_shards(),
            "commute plan must match the installed shard partition"
        );
        self.commute = Some(plan);
    }

    fn commute_fast_applied(&self) -> u64 {
        self.fast_applied
    }

    fn broadcast(&mut self, item: T, out: &mut Outbox<Self::Msg>) {
        // Read-only self-delivery: with a commute certificate installed,
        // an item that may write nothing changes no replica state, so it
        // needs no agreed slot — apply it here, now, with no messages.
        // The delivery is replica-private (pseudo-channel past global).
        if self.commute.is_some() && item.write_footprint().is_empty() {
            let channel = self.local_channel();
            self.merged.push(Delivery {
                origin: self.me,
                global_seq: self.merged_count,
                item,
            });
            self.channel_trace.push(channel);
            self.merged_count += 1;
            self.fast_applied += 1;
            return;
        }
        let c = self.channel_for(&item.footprint());
        let mut inner = Outbox::new(out.num_processes());
        self.channels[c].broadcast(ShardItem::Op(item), &mut inner);
        Self::relay(c, &mut inner, out);
    }

    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, out: &mut Outbox<Self::Msg>) {
        let c = msg.channel as usize;
        if c >= self.channels.len() {
            debug_assert!(false, "message for unknown channel {c}");
            return;
        }
        let mut inner = Outbox::new(out.num_processes());
        self.channels[c].on_message(from, msg.msg, &mut inner);
        Self::relay(c, &mut inner, out);
        // If we just stamped global items, `after_step` pins them into
        // every shard channel: one Barrier(k) per shard, submitted through
        // the shard's own sequencer so it lands at an agreed slot in the
        // shard order.
        self.after_step(c, out);
        self.merge();
    }

    fn next_deadline(&self) -> Option<u64> {
        self.channels
            .iter()
            .filter_map(|ch| ch.next_deadline())
            .min()
    }

    fn on_tick(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        for c in 0..self.channels.len() {
            let mut inner = Outbox::new(out.num_processes());
            self.channels[c].on_tick(now_ns, &mut inner);
            Self::relay(c, &mut inner, out);
            self.after_step(c, out);
        }
        self.merge();
    }

    fn set_batching(&mut self, cfg: BatchConfig) {
        self.batch = cfg;
        for ch in &mut self.channels {
            ch.set_batching(cfg);
        }
    }

    fn batch_stats(&self) -> BatchStats {
        let mut total = BatchStats::default();
        for ch in &self.channels {
            total.merge(ch.batch_stats());
        }
        total
    }

    fn drain_delivered(&mut self) -> Vec<Delivery<T>> {
        std::mem::take(&mut self.merged)
    }

    fn delivered_count(&self) -> u64 {
        self.merged_count
    }

    fn on_restart(&mut self, now_ns: u64, out: &mut Outbox<Self::Msg>) {
        for c in 0..self.channels.len() {
            let mut inner = Outbox::new(out.num_processes());
            self.channels[c].on_restart(now_ns, &mut inner);
            Self::relay(c, &mut inner, out);
            self.after_step(c, out);
        }
        self.merge();
    }

    fn delivery_channels(&self) -> Option<Vec<u32>> {
        Some(self.channel_trace.clone())
    }

    fn private_channel(&self) -> Option<u32> {
        // Armed only once a commute plan unlocks read-only self-delivery;
        // without one the pseudo-channel can never carry an entry.
        self.commute.as_ref().map(|_| self.local_channel())
    }

    fn transcript(&self) -> Vec<String> {
        self.channels
            .iter()
            .enumerate()
            .flat_map(|(c, ch)| {
                ch.transcript()
                    .into_iter()
                    .map(move |line| format!("ch{c}: {line}"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_sim::{Context, DelayModel, NetworkConfig, Node, World};

    /// A payload with an explicit object footprint (and, separately, an
    /// explicit write footprint — empty for read-only items).
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Item {
        id: u64,
        objs: Vec<u32>,
        writes: Vec<u32>,
    }

    impl Footprinted for Item {
        fn footprint(&self) -> Vec<ObjectId> {
            self.objs.iter().map(|&o| ObjectId::new(o)).collect()
        }

        fn write_footprint(&self) -> Vec<ObjectId> {
            self.writes.iter().map(|&o| ObjectId::new(o)).collect()
        }
    }

    fn item(id: u64, objs: &[u32]) -> Item {
        Item {
            id,
            objs: objs.to_vec(),
            writes: objs.to_vec(),
        }
    }

    fn read_item(id: u64, objs: &[u32]) -> Item {
        Item {
            id,
            objs: objs.to_vec(),
            writes: Vec::new(),
        }
    }

    /// The honest delivery-time plan for a partition in which each
    /// shard's programs touch and write exactly the shard's own objects.
    fn commute_plan_for(plan: &ShardPlan) -> CommutePlan {
        let shards = plan.shards();
        CommutePlan {
            shard_touch: shards.clone(),
            shard_write: shards,
        }
    }

    struct ShardNode {
        inner: ShardedAbcast<Item>,
        delivered: Vec<Item>,
        n: usize,
    }

    impl ShardNode {
        fn new(
            me: ProcessId,
            n: usize,
            plan: Option<ShardPlan>,
            commute: Option<CommutePlan>,
        ) -> Self {
            let mut inner = ShardedAbcast::new(me, n);
            if let Some(p) = plan {
                inner.set_shard_plan(p);
            }
            if let Some(cp) = commute {
                inner.set_commute_plan(cp);
            }
            ShardNode {
                inner,
                delivered: Vec::new(),
                n,
            }
        }

        fn drain(&mut self) {
            for d in self.inner.drain_delivered() {
                self.delivered.push(d.item);
            }
        }

        fn submit(&mut self, it: Item, ctx: &mut Context<'_, ShardedMsg<Item>>) {
            let mut out = Outbox::new(self.n);
            self.inner.broadcast(it, &mut out);
            for (to, m) in out.drain() {
                ctx.send(to, m);
            }
            self.drain();
        }
    }

    impl Node for ShardNode {
        type Msg = ShardedMsg<Item>;
        fn on_message(
            &mut self,
            from: ProcessId,
            msg: Self::Msg,
            ctx: &mut Context<'_, Self::Msg>,
        ) {
            let mut out = Outbox::new(self.n);
            self.inner.on_message(from, msg, &mut out);
            for (to, m) in out.drain() {
                ctx.send(to, m);
            }
            self.drain();
        }
    }

    /// Two shards: objects {0,1} and {2,3}.
    fn two_shard_plan() -> ShardPlan {
        ShardPlan::new(vec![0, 0, 1, 1]).unwrap()
    }

    fn run(
        n: usize,
        plan: Option<ShardPlan>,
        submissions: Vec<(u64, u32, Item)>, // (time, process, item)
        seed: u64,
    ) -> Vec<ShardNode> {
        run_with_commute(n, plan, None, submissions, seed)
    }

    fn run_with_commute(
        n: usize,
        plan: Option<ShardPlan>,
        commute: Option<CommutePlan>,
        submissions: Vec<(u64, u32, Item)>, // (time, process, item)
        seed: u64,
    ) -> Vec<ShardNode> {
        let nodes: Vec<ShardNode> = (0..n)
            .map(|p| ShardNode::new(ProcessId::new(p as u32), n, plan.clone(), commute.clone()))
            .collect();
        let mut world = World::new(
            nodes,
            NetworkConfig::with_delay(DelayModel::Uniform { lo: 10, hi: 20_000 }),
            seed,
        );
        for (at, p, it) in submissions {
            world.schedule_call(at, ProcessId::new(p), move |node, ctx| {
                node.submit(it.clone(), ctx);
            });
        }
        world.run_until_quiescent(10_000_000);
        world.into_nodes()
    }

    fn conflicting(a: &Item, b: &Item) -> bool {
        a.objs.iter().any(|o| b.objs.contains(o))
    }

    /// Every pair of footprint-intersecting items must be applied in the
    /// same relative order at every replica; per-channel projections must
    /// be identical sequences.
    fn assert_conflict_consistent(nodes: &[ShardNode], expect_total: usize) {
        for node in nodes {
            assert_eq!(node.delivered.len(), expect_total, "validity");
            let mut ids: Vec<u64> = node.delivered.iter().map(|i| i.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), expect_total, "integrity");
        }
        let reference = &nodes[0];
        let ref_pos: std::collections::BTreeMap<u64, usize> = reference
            .delivered
            .iter()
            .enumerate()
            .map(|(i, it)| (it.id, i))
            .collect();
        for node in &nodes[1..] {
            let pos: std::collections::BTreeMap<u64, usize> = node
                .delivered
                .iter()
                .enumerate()
                .map(|(i, it)| (it.id, i))
                .collect();
            for a in &reference.delivered {
                for b in &reference.delivered {
                    if a.id < b.id && conflicting(a, b) {
                        let ref_before = ref_pos[&a.id] < ref_pos[&b.id];
                        let got_before = pos[&a.id] < pos[&b.id];
                        assert_eq!(
                            ref_before, got_before,
                            "conflicting items {} and {} ordered differently across replicas",
                            a.id, b.id
                        );
                    }
                }
            }
        }
        // Per-channel projections are agreed total orders.
        let ref_channels = reference.inner.delivery_channels().unwrap();
        let num_channels = reference.inner.num_channels();
        for node in &nodes[1..] {
            let channels = node.inner.delivery_channels().unwrap();
            assert_eq!(channels.len(), node.delivered.len());
            for c in 0..num_channels as u32 {
                let ref_proj: Vec<u64> = reference
                    .delivered
                    .iter()
                    .zip(&ref_channels)
                    .filter(|(_, ch)| **ch == c)
                    .map(|(it, _)| it.id)
                    .collect();
                let proj: Vec<u64> = node
                    .delivered
                    .iter()
                    .zip(&channels)
                    .filter(|(_, ch)| **ch == c)
                    .map(|(it, _)| it.id)
                    .collect();
                assert_eq!(ref_proj, proj, "channel {c} projection diverged");
            }
        }
    }

    #[test]
    fn single_shard_items_use_their_shard_channel() {
        let mut subs = Vec::new();
        let mut id = 0;
        for round in 0..6u64 {
            for p in 0..3u32 {
                let objs: &[u32] = if (id + round) % 2 == 0 {
                    &[0, 1]
                } else {
                    &[2, 3]
                };
                subs.push((round * 53 + p as u64 * 7, p, item(id, objs)));
                id += 1;
            }
        }
        for seed in 0..6 {
            let nodes = run(3, Some(two_shard_plan()), subs.clone(), seed);
            assert_conflict_consistent(&nodes, 18);
            let channels = nodes[0].inner.delivery_channels().unwrap();
            assert!(channels.contains(&0), "shard 0 carried traffic");
            assert!(channels.contains(&1), "shard 1 carried traffic");
            assert!(
                channels.iter().all(|&c| c != 2),
                "single-shard items must not use the global channel"
            );
        }
    }

    #[test]
    fn cross_shard_items_are_barrier_ordered_against_every_shard() {
        let mut subs = Vec::new();
        let mut id = 0;
        for round in 0..5u64 {
            for p in 0..3u32 {
                // Mix: shard-0 writes, shard-1 writes, and cross-shard
                // items spanning both (these conflict with everything).
                let objs: &[u32] = match (id + round) % 3 {
                    0 => &[0, 1],
                    1 => &[2, 3],
                    _ => &[1, 2],
                };
                subs.push((round * 41 + p as u64 * 13, p, item(id, objs)));
                id += 1;
            }
        }
        for seed in 0..8 {
            let nodes = run(3, Some(two_shard_plan()), subs.clone(), seed);
            assert_conflict_consistent(&nodes, 15);
            let channels = nodes[0].inner.delivery_channels().unwrap();
            assert!(
                channels.contains(&2),
                "cross-shard items must use the global channel"
            );
        }
    }

    #[test]
    fn without_a_plan_the_protocol_is_a_single_global_order() {
        let subs: Vec<_> = (0..12u64)
            .map(|i| (i * 31, (i % 3) as u32, item(i, &[(i % 4) as u32])))
            .collect();
        let nodes = run(3, None, subs, 7);
        for node in &nodes {
            assert_eq!(node.delivered.len(), 12);
            assert_eq!(node.delivered, nodes[0].delivered, "total order");
        }
        assert_eq!(nodes[0].inner.num_channels(), 1);
        assert!(nodes[0]
            .inner
            .delivery_channels()
            .unwrap()
            .iter()
            .all(|&c| c == 0));
    }

    #[test]
    fn shard_sequencers_are_distributed() {
        let mut a: ShardedAbcast<Item> = ShardedAbcast::new(ProcessId::new(0), 3);
        a.set_shard_plan(two_shard_plan());
        assert_eq!(a.num_channels(), 3);
        assert_eq!(a.global_channel(), 2);
        // Shard 0 → P1, shard 1 → P2, global → P0: submissions route there.
        let mut out = Outbox::new(3);
        a.broadcast(item(1, &[0]), &mut out);
        a.broadcast(item(2, &[2, 3]), &mut out);
        a.broadcast(item(3, &[1, 2]), &mut out);
        let sent = out.drain();
        let targets: Vec<(u32, u32)> = sent
            .iter()
            .map(|(to, m)| (m.channel, to.as_u32()))
            .collect();
        assert_eq!(targets, vec![(0, 1), (1, 2), (2, 0)]);
    }

    /// Three shards: objects {0,1}, {2,3}, {4,5}.
    fn three_shard_plan() -> ShardPlan {
        ShardPlan::new(vec![0, 0, 1, 1, 2, 2]).unwrap()
    }

    /// With an honest commute plan, cross-shard items skip the barrier
    /// frontiers of shards they provably commute with — the fast path
    /// demonstrably engages — while every conflicting pair stays
    /// consistently ordered at every replica.
    #[test]
    fn commuting_global_items_skip_barrier_waits() {
        let plan = three_shard_plan();
        let commute = commute_plan_for(&plan);
        let mut subs = Vec::new();
        let mut id = 0;
        for round in 0..5u64 {
            for p in 0..3u32 {
                // Shard traffic on every shard plus cross items spanning
                // shards 0 and 1 — those conflict with shards 0/1 but
                // commute with shard 2, so only two of the three barrier
                // frontiers gate them.
                let objs: &[u32] = match id % 4 {
                    0 => &[0, 1],
                    1 => &[2, 3],
                    2 => &[4, 5],
                    _ => &[1, 2],
                };
                subs.push((round * 47 + p as u64 * 11, p, item(id, objs)));
                id += 1;
            }
        }
        let mut bypasses = 0u64;
        for seed in 0..8 {
            let nodes = run_with_commute(
                3,
                Some(plan.clone()),
                Some(commute.clone()),
                subs.clone(),
                seed,
            );
            assert_conflict_consistent(&nodes, 15);
            bypasses += nodes
                .iter()
                .map(|n| n.inner.commute_fast_applied())
                .sum::<u64>();
        }
        assert!(
            bypasses > 0,
            "the certified fast path never engaged across the sweep"
        );
    }

    /// Read-only items self-deliver: no messages, no stamping, immediate
    /// local application on the replica-private pseudo-channel.
    #[test]
    fn read_only_items_self_deliver_without_messages() {
        let plan = two_shard_plan();
        let mut a: ShardedAbcast<Item> = ShardedAbcast::new(ProcessId::new(1), 3);
        a.set_shard_plan(plan.clone());
        a.set_commute_plan(commute_plan_for(&plan));
        let mut out = Outbox::new(3);
        a.broadcast(read_item(7, &[0, 1]), &mut out);
        assert!(out.is_empty(), "read-only items send nothing");
        let delivered = a.drain_delivered();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].item.id, 7);
        assert_eq!(a.delivery_channels().unwrap(), vec![a.local_channel()]);
        assert_eq!(a.commute_fast_applied(), 1);

        // Without a commute plan the same item is stamped normally.
        let mut b: ShardedAbcast<Item> = ShardedAbcast::new(ProcessId::new(1), 3);
        b.set_shard_plan(two_shard_plan());
        let mut out = Outbox::new(3);
        b.broadcast(read_item(8, &[0, 1]), &mut out);
        assert!(!out.is_empty(), "no certificate, no fast path");
        assert!(b.drain_delivered().is_empty());
    }

    /// Negative control: a vacuous plan (fabricated certificate claiming
    /// everything commutes) lets cross-shard items apply before their
    /// barriers, and some seed exhibits the divergence the barriers
    /// exist to prevent — conflicting items ordered differently at
    /// different replicas.
    #[test]
    fn vacuous_commute_plan_breaks_conflict_ordering_detectably() {
        let mut subs = Vec::new();
        let mut id = 0;
        for round in 0..5u64 {
            for p in 0..3u32 {
                let objs: &[u32] = match (id + round) % 3 {
                    0 => &[0, 1],
                    1 => &[2, 3],
                    _ => &[1, 2],
                };
                subs.push((round * 41 + p as u64 * 13, p, item(id, objs)));
                id += 1;
            }
        }
        let diverged = |nodes: &[ShardNode]| {
            let reference = &nodes[0];
            let pos = |node: &ShardNode| -> std::collections::BTreeMap<u64, usize> {
                node.delivered
                    .iter()
                    .enumerate()
                    .map(|(i, it)| (it.id, i))
                    .collect()
            };
            let ref_pos = pos(reference);
            nodes[1..].iter().any(|node| {
                let p = pos(node);
                reference.delivered.iter().any(|a| {
                    reference.delivered.iter().any(|b| {
                        a.id < b.id
                            && conflicting(a, b)
                            && (ref_pos[&a.id] < ref_pos[&b.id]) != (p[&a.id] < p[&b.id])
                    })
                })
            })
        };
        let mut detected = 0u64;
        for seed in 0..12 {
            let nodes = run_with_commute(
                3,
                Some(two_shard_plan()),
                Some(CommutePlan::vacuous(2)),
                subs.clone(),
                seed,
            );
            // Validity/integrity still hold — only ordering is damaged.
            for node in &nodes {
                assert_eq!(node.delivered.len(), 15);
            }
            if diverged(&nodes) {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "the vacuous plan never diverged in 12 seeds — the control is inert"
        );
    }

    #[test]
    fn restarted_shard_sequencer_halts_only_its_channel() {
        let mut a: ShardedAbcast<Item> = ShardedAbcast::new(ProcessId::new(1), 3);
        a.set_shard_plan(two_shard_plan());
        let mut out = Outbox::new(3);
        a.on_restart(1_000, &mut out);
        // P1 sequences shard channel 0 only.
        assert_eq!(a.halted_channels(), vec![0]);
        assert!(!a.transcript().is_empty());
    }
}
