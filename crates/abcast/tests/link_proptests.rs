//! Property tests for the reliable-link sublayer in isolation: under an
//! arbitrary adversarial schedule of deliveries, drops, duplications,
//! reorderings, retransmission ticks and crash-restarts, every payload
//! handed to `send` must reach its destination **exactly once** and in
//! **per-sender FIFO order** — the channel contract the Section 5
//! protocols (and both abcast implementations) are proven against.

use moc_abcast::{LinkConfig, LinkMsg, ReliableLink};
use moc_core::ids::ProcessId;
use proptest::prelude::*;

/// An in-flight wire frame: (from, to, msg).
type Frame = (ProcessId, ProcessId, LinkMsg<u64>);

/// Distinct, stream-ordered payload values.
fn encode(sender: usize, receiver: usize, i: u64) -> u64 {
    (sender as u64 + 1) * 1_000_000 + (receiver as u64 + 1) * 10_000 + i
}

/// Interprets `actions` as an adversarial network schedule over `n`
/// link endpoints, then runs a bounded recovery phase (deliver all +
/// tick) and asserts the exactly-once FIFO contract.
fn run_schedule(n: usize, actions: &[(u8, u32)]) {
    let cfg = LinkConfig {
        rto_ns: 1_000,
        max_rto_ns: 8_000,
        ..LinkConfig::default()
    };
    let mut links: Vec<ReliableLink<u64>> = (0..n)
        .map(|p| ReliableLink::new(ProcessId::new(p as u32), n, cfg))
        .collect();
    let mut inflight: Vec<Frame> = Vec::new();
    // delivered[receiver][sender]: payloads surfaced, in order.
    let mut delivered: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); n]; n];
    // sent[sender][receiver]: how many payloads entered the stream.
    let mut sent: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut now: u64 = 0;

    for &(kind, pick) in actions {
        now += 500;
        match kind % 10 {
            // Deliver an arbitrary in-flight frame (arbitrary order).
            0..=2 => {
                if inflight.is_empty() {
                    continue;
                }
                let idx = pick as usize % inflight.len();
                let (from, to, msg) = inflight.swap_remove(idx);
                let mut wire = Vec::new();
                let got = links[to.index()].on_wire(from, msg, now, &mut wire);
                delivered[to.index()][from.index()].extend(got);
                for (dest, m) in wire {
                    inflight.push((to, dest, m));
                }
            }
            // The network eats a frame.
            3 => {
                if !inflight.is_empty() {
                    let idx = pick as usize % inflight.len();
                    inflight.swap_remove(idx);
                }
            }
            // The network duplicates a frame.
            4 => {
                if !inflight.is_empty() {
                    let idx = pick as usize % inflight.len();
                    let f = inflight[idx].clone();
                    inflight.push(f);
                }
            }
            // Retransmission timers fire everywhere.
            5 => {
                for (i, l) in links.iter_mut().enumerate() {
                    let mut wire = Vec::new();
                    l.on_tick(now, &mut wire);
                    for (dest, m) in wire {
                        inflight.push((ProcessId::new(i as u32), dest, m));
                    }
                }
            }
            // A process crashes and restarts: everything addressed to it
            // is lost, then its rejoin handshake runs.
            6 => {
                let p = pick as usize % n;
                inflight.retain(|&(_, to, _)| to.index() != p);
                let mut wire = Vec::new();
                links[p].on_restart(now, &mut wire);
                for (dest, m) in wire {
                    inflight.push((ProcessId::new(p as u32), dest, m));
                }
            }
            // A fresh payload enters some stream.
            _ => {
                let s = pick as usize % n;
                let r = (s + 1 + (pick as usize / n) % (n - 1)) % n;
                let val = encode(s, r, sent[s][r]);
                sent[s][r] += 1;
                let mut wire = Vec::new();
                links[s].send(ProcessId::new(r as u32), val, now, &mut wire);
                for (dest, m) in wire {
                    inflight.push((ProcessId::new(s as u32), dest, m));
                }
            }
        }
    }

    // Recovery: the fault schedule is over; deliver everything and keep
    // ticking until all streams drain. Must converge quickly.
    let mut converged = false;
    for _ in 0..1_000 {
        if inflight.is_empty() && links.iter().all(|l| l.unacked() == 0) {
            converged = true;
            break;
        }
        for (from, to, msg) in std::mem::take(&mut inflight) {
            let mut wire = Vec::new();
            let got = links[to.index()].on_wire(from, msg, now, &mut wire);
            delivered[to.index()][from.index()].extend(got);
            for (dest, m) in wire {
                inflight.push((to, dest, m));
            }
        }
        now += 10_000; // past the rto cap: every pending timer is due
        for (i, l) in links.iter_mut().enumerate() {
            let mut wire = Vec::new();
            l.on_tick(now, &mut wire);
            for (dest, m) in wire {
                inflight.push((ProcessId::new(i as u32), dest, m));
            }
        }
    }
    assert!(converged, "link failed to drain after the fault schedule");

    for r in 0..n {
        for s in 0..n {
            let expect: Vec<u64> = (0..sent[s][r]).map(|i| encode(s, r, i)).collect();
            assert_eq!(
                delivered[r][s], expect,
                "exactly-once per-sender FIFO from P{s} to P{r}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn link_survives_arbitrary_drop_dup_reorder_schedules(
        n in 2usize..5,
        actions in proptest::collection::vec((any::<u8>(), any::<u32>()), 0..400),
    ) {
        run_schedule(n, &actions);
    }

    /// Heavier loss bias: mostly drops and ticks, so almost every payload
    /// must be recovered by retransmission.
    #[test]
    fn link_recovers_under_heavy_loss(
        n in 2usize..4,
        actions in proptest::collection::vec(
            prop_oneof![Just(3u8), Just(3u8), Just(5u8), Just(7u8)].prop_flat_map(|k| {
                (Just(k), any::<u32>())
            }),
            0..300,
        ),
    ) {
        run_schedule(n, &actions);
    }
}
