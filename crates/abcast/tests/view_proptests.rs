//! Property tests for the view-based failover broadcast in isolation:
//! under an arbitrary adversarial schedule of message deliveries, timer
//! ticks, leader crashes and restarts — over the per-pair exactly-once
//! FIFO channel the reliable-link sublayer establishes (a crash *delays*
//! frames, it never loses them) — the handshake must preserve the three
//! broadcast properties across any number of view changes:
//!
//! * **no forked order** — all processes deliver the identical sequence;
//! * **no lost submission** — every broadcast item is delivered (items
//!   orphaned by a crashed leader are re-proposed in the new view);
//! * **exactly-once** — re-proposal never duplicates a delivery.
//!
//! Mirrors `link_proptests.rs`: actions are interpreted as a schedule,
//! then a bounded recovery phase (everyone up, deliver all, tick past the
//! suspicion cap) must converge.

use std::collections::VecDeque;

use moc_abcast::{Abcast, Outbox, ViewAbcast, ViewMsg};
use moc_core::ids::ProcessId;
use proptest::prelude::*;

/// Distinct payload values: origin and per-origin index.
fn encode(origin: usize, i: u64) -> u64 {
    (origin as u64 + 1) * 1_000_000 + i
}

struct Cluster {
    nodes: Vec<ViewAbcast<u64>>,
    /// Per-(from, to) FIFO queues: the reliable-link channel contract.
    queues: Vec<Vec<VecDeque<ViewMsg<u64>>>>,
    down: Option<usize>,
    /// delivered[p]: (origin, item) sequence surfaced at process p.
    delivered: Vec<Vec<(u32, u64)>>,
    sent: Vec<u64>,
    now: u64,
}

impl Cluster {
    fn new(n: usize) -> Self {
        let mut nodes: Vec<ViewAbcast<u64>> = (0..n)
            .map(|p| ViewAbcast::new(ProcessId::new(p as u32), n))
            .collect();
        for node in &mut nodes {
            // Fast suspicion so short schedules exercise failover.
            node.set_failover_timeouts(1_000, 8_000);
        }
        Cluster {
            nodes,
            queues: (0..n)
                .map(|_| (0..n).map(|_| VecDeque::new()).collect())
                .collect(),
            down: None,
            delivered: vec![Vec::new(); n],
            sent: vec![0; n],
            now: 0,
        }
    }

    fn n(&self) -> usize {
        self.nodes.len()
    }

    fn route(&mut self, from: usize, out: &mut Outbox<ViewMsg<u64>>) {
        for (to, m) in out.drain() {
            self.queues[from][to.index()].push_back(m);
        }
    }

    fn drain_node(&mut self, p: usize) {
        let me = ProcessId::new(p as u32);
        for d in self.nodes[p].drain_delivered() {
            // The Abcast contract: the k-th local delivery is global_seq k.
            assert_eq!(
                d.global_seq,
                self.delivered[p].len() as u64,
                "P{p}: global_seq must count local deliveries"
            );
            assert!(
                d.origin != me || d.item == encode(p, 0) || d.item >= encode(p, 0),
                "sanity"
            );
            self.delivered[p].push((d.origin.as_u32(), d.item));
        }
    }

    /// Delivers the head of one (from, to) pair queue, if any.
    fn deliver_one(&mut self, pick: usize) {
        let n = self.n();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|f| (0..n).map(move |t| (f, t)))
            .filter(|&(f, t)| !self.queues[f][t].is_empty() && Some(t) != self.down)
            .collect();
        if pairs.is_empty() {
            return;
        }
        let (from, to) = pairs[pick % pairs.len()];
        let msg = self.queues[from][to].pop_front().unwrap();
        let mut out = Outbox::new(n);
        self.nodes[to].on_message(ProcessId::new(from as u32), msg, &mut out);
        self.route(to, &mut out);
        self.drain_node(to);
    }

    fn tick_all(&mut self) {
        let n = self.n();
        for p in 0..n {
            if Some(p) == self.down {
                continue;
            }
            let mut out = Outbox::new(n);
            self.nodes[p].on_tick(self.now, &mut out);
            self.route(p, &mut out);
            self.drain_node(p);
        }
    }

    fn submit(&mut self, p: usize) {
        if Some(p) == self.down {
            return;
        }
        let val = encode(p, self.sent[p]);
        self.sent[p] += 1;
        let mut out = Outbox::new(self.n());
        self.nodes[p].broadcast(val, &mut out);
        self.route(p, &mut out);
        self.drain_node(p);
    }

    /// Crashes process `p` (single-failure discipline: no-op if someone
    /// is already down). In-flight frames stay queued — the link layer
    /// retransmits across crashes, so at this layer a crash only delays.
    fn crash(&mut self, p: usize) {
        if self.down.is_none() {
            self.down = Some(p);
        }
    }

    /// The current leader as the maximally-progressed process sees it.
    fn apparent_leader(&self) -> usize {
        let v = self.nodes.iter().map(|a| a.view()).max().unwrap_or(0);
        (v % self.n() as u64) as usize
    }

    fn restart(&mut self) {
        let Some(p) = self.down.take() else { return };
        let mut out = Outbox::new(self.n());
        self.nodes[p].on_restart(self.now, &mut out);
        self.route(p, &mut out);
        self.drain_node(p);
    }

    fn queued(&self) -> usize {
        self.queues
            .iter()
            .flat_map(|row| row.iter())
            .map(|q| q.len())
            .sum()
    }
}

/// Interprets `actions` as an adversarial schedule, recovers, and checks
/// the broadcast properties.
fn run_schedule(n: usize, actions: &[(u8, u32)]) {
    let mut c = Cluster::new(n);

    for &(kind, pick) in actions {
        c.now += 500;
        match kind % 12 {
            // Deliver in-flight frames (most common action).
            0..=4 => c.deliver_one(pick as usize),
            // Suspicion / arming timers fire.
            5 | 6 => c.tick_all(),
            // Crash the apparent leader — the interesting fault.
            7 => {
                let l = c.apparent_leader();
                c.crash(l);
            }
            // Crash an arbitrary process.
            8 => c.crash(pick as usize % n),
            // Restart whoever is down.
            9 => c.restart(),
            // A fresh broadcast enters the system.
            _ => c.submit(pick as usize % n),
        }
    }

    recover_and_check(c);
}

/// Recovery phase shared by every schedule runner: everyone restarts;
/// deliver everything and keep ticking past the suspicion cap until all
/// submissions are delivered everywhere (bounded rounds), then check the
/// three broadcast properties.
fn recover_and_check(mut c: Cluster) {
    let n = c.n();
    c.restart();
    let total: u64 = c.sent.iter().sum();
    let mut converged = false;
    for _ in 0..400 {
        if c.queued() == 0 && c.delivered.iter().all(|d| d.len() as u64 == total) {
            converged = true;
            break;
        }
        for _ in 0..10_000 {
            if c.queued() == 0 {
                break;
            }
            c.deliver_one(0);
        }
        c.now += 1_000_000; // past the suspicion cap: every deadline due
        c.tick_all();
    }
    assert!(
        converged,
        "failover failed to converge: delivered {:?} of {total}, {} queued",
        c.delivered.iter().map(|d| d.len()).collect::<Vec<_>>(),
        c.queued()
    );

    // Total order: identical delivery sequences everywhere.
    let reference = &c.delivered[0];
    for (p, d) in c.delivered.iter().enumerate().skip(1) {
        assert_eq!(d, reference, "P{p} forked from P0");
    }
    // Validity + integrity: exactly the submitted multiset, exactly once.
    let mut items: Vec<u64> = reference.iter().map(|&(_, i)| i).collect();
    items.sort_unstable();
    let mut expect: Vec<u64> = (0..n)
        .flat_map(|p| (0..c.sent[p]).map(move |i| encode(p, i)))
        .collect();
    expect.sort_unstable();
    assert_eq!(items, expect, "lost or duplicated submissions");
    // Per-origin FIFO: re-proposal across views must not reorder one
    // origin's submissions.
    for p in 0..n {
        let per: Vec<u64> = reference
            .iter()
            .filter(|&&(o, _)| o as usize == p)
            .map(|&(_, i)| i)
            .collect();
        let mut sorted = per.clone();
        sorted.sort_unstable();
        assert_eq!(per, sorted, "P{p}'s submissions reordered across views");
    }
}

/// Crashes the *incoming* leader mid view-change handshake: the initial
/// leader dies, survivors open the change toward the next view, and after
/// only a prefix of the handshake frames (ViewChange/Collect/NewView) has
/// been delivered, the leader that change is trying to install dies too.
/// The eventual recovery must still yield no-fork/no-loss/exactly-once —
/// the handshake state the dead incoming leader collected must not be
/// able to fork or swallow submissions.
fn run_incoming_leader_crash(n: usize, seed_submits: usize, partial: usize, post: &[(u8, u32)]) {
    let mut c = Cluster::new(n);
    // Seed traffic so the handshake has unordered state to merge.
    for i in 0..seed_submits {
        c.submit(i % n);
    }
    // Crash the initial leader; tick past suspicion so survivors start
    // the view change (handshake frames are now in flight).
    let old = c.apparent_leader();
    c.crash(old);
    for _ in 0..16 {
        c.now += 1_000;
        c.tick_all();
    }
    // Free the single-failure budget: the old leader restarts (it will
    // catch up as a follower) while handshake frames are still queued.
    c.restart();
    // Deliver only a prefix of the in-flight handshake...
    for i in 0..partial {
        c.deliver_one(i);
    }
    // ...then kill the leader the in-flight change is trying to install.
    let v = c.nodes.iter().map(|a| a.view()).max().unwrap_or(0);
    let incoming = if (v % n as u64) as usize == old {
        ((v + 1) % n as u64) as usize
    } else {
        (v % n as u64) as usize
    };
    c.crash(incoming);
    // A few more adversarial steps with the incoming leader dead.
    for &(kind, pick) in post {
        c.now += 500;
        match kind % 8 {
            0..=4 => c.deliver_one(pick as usize),
            5 | 6 => c.tick_all(),
            _ => c.submit(pick as usize % n),
        }
    }
    recover_and_check(c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn view_change_survives_arbitrary_schedules(
        n in 2usize..5,
        actions in proptest::collection::vec((any::<u8>(), any::<u32>()), 0..400),
    ) {
        run_schedule(n, &actions);
    }

    /// Crash-heavy bias: mostly leader crashes, restarts and ticks, so
    /// nearly every delivery crosses at least one view change.
    #[test]
    fn view_change_survives_repeated_leader_crashes(
        n in 2usize..4,
        actions in proptest::collection::vec(
            prop_oneof![
                Just(0u8), Just(0u8), Just(0u8),
                Just(5u8), Just(5u8),
                Just(7u8), Just(9u8), Just(10u8),
            ].prop_flat_map(|k| (Just(k), any::<u32>())),
            0..300,
        ),
    ) {
        run_schedule(n, &actions);
    }

    /// The incoming leader dies mid-handshake (see
    /// [`run_incoming_leader_crash`]).
    #[test]
    fn incoming_leader_crash_mid_handshake_preserves_order(
        n in 3usize..5,
        seed_submits in 1usize..5,
        partial in 0usize..12,
        post in proptest::collection::vec((any::<u8>(), any::<u32>()), 0..60),
    ) {
        run_incoming_leader_crash(n, seed_submits, partial, &post);
    }
}
