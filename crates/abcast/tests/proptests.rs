//! Property tests for the atomic broadcast protocols: validity, integrity
//! and total order must hold for arbitrary cluster sizes, submission
//! patterns, delay models and seeds.

use moc_abcast::testkit::{check_closed_loop_fifo, check_properties};
use moc_abcast::{IsisAbcast, SequencerAbcast};
use moc_sim::DelayModel;
use proptest::prelude::*;

fn delay_strategy() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (1u64..5_000).prop_map(DelayModel::Fixed),
        (1u64..100, 100u64..50_000).prop_map(|(lo, hi)| DelayModel::Uniform { lo, hi }),
        (10u64..10_000).prop_map(|mean| DelayModel::Exponential { mean }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sequencer_total_order(
        n in 1usize..6,
        k in 1u64..6,
        delay in delay_strategy(),
        seed in any::<u64>(),
    ) {
        check_properties::<SequencerAbcast<u64>>(n, k, delay, seed);
    }

    #[test]
    fn isis_total_order(
        n in 1usize..6,
        k in 1u64..6,
        delay in delay_strategy(),
        seed in any::<u64>(),
    ) {
        check_properties::<IsisAbcast<u64>>(n, k, delay, seed);
    }

    #[test]
    fn closed_loop_fifo_holds_for_both(
        n in 1usize..5,
        k in 1u64..5,
        delay in delay_strategy(),
        seed in any::<u64>(),
    ) {
        check_closed_loop_fifo::<SequencerAbcast<u64>>(n, k, delay, seed);
        check_closed_loop_fifo::<IsisAbcast<u64>>(n, k, delay, seed);
    }
}
