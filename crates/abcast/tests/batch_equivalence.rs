//! Batched-vs-unbatched equivalence: group-commit batching is a pure
//! wire-framing optimization, so for any submission pattern, duplication
//! pattern and batch size, each backend must deliver exactly what the
//! batch-size-1 protocol delivers at the same seed.
//!
//! The harness keeps per-(from,to) FIFO queues but classifies traffic
//! into *submission* frames (whose arrival order at the sequencer decides
//! the stamp order) and *ordering* frames (stamped fan-out, acks). The
//! submission schedule is driven identically across the two runs, while
//! ordering frames may be duplicated and arrive in whatever interleaving
//! batching produces — none of which may change what gets delivered:
//!
//! * `SequencerAbcast` and `ViewAbcast` have a single ordering channel,
//!   so the full delivered sequence must be byte-identical.
//! * `ShardedAbcast` agrees on *per-channel* orders and on the position
//!   of every conflicting pair (via barriers); commuting cross-channel
//!   interleavings are licensed to differ. So the per-channel delivered
//!   projections, every conflicting pair's relative order, and the final
//!   last-writer-wins store state must be identical across batch sizes.

use std::collections::VecDeque;

use moc_abcast::sequencer::SequencerMsg;
use moc_abcast::{
    Abcast, BatchConfig, Outbox, SequencerAbcast, ShardedAbcast, ShardedMsg, ViewAbcast, ViewMsg,
};
use moc_core::ids::{ObjectId, ProcessId};
use moc_core::shard::{Footprinted, ShardPlan};
use proptest::prelude::*;

/// A payload with an explicit (write-everything) object footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Item {
    id: u64,
    objs: Vec<u32>,
}

impl Footprinted for Item {
    fn footprint(&self) -> Vec<ObjectId> {
        self.objs.iter().map(|&o| ObjectId::new(o)).collect()
    }

    fn write_footprint(&self) -> Vec<ObjectId> {
        self.objs.iter().map(|&o| ObjectId::new(o)).collect()
    }
}

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i as u32)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One delivered record: (channel, origin, item id).
type Rec = (u32, u32, u64);

struct Outcome {
    /// Per-process delivered sequence.
    seqs: Vec<Vec<Rec>>,
}

/// Drives `n` endpoints to quiescence over a deterministic dual-class
/// network, injecting `waves` of submissions with full settles between
/// waves, advancing virtual time only to flush pending batch windows.
fn run_cluster<A: Abcast<Item>>(
    n: usize,
    waves: &[Vec<(usize, Item)>],
    batch: BatchConfig,
    dup_seed: u64,
    setup: &dyn Fn(&mut A),
    is_submission: &dyn Fn(&A::Msg) -> bool,
) -> Outcome
where
    A::Msg: Clone,
{
    let mut nodes: Vec<A> = (0..n).map(|p| A::new(pid(p), n)).collect();
    for node in &mut nodes {
        setup(node);
        node.set_batching(batch);
    }
    let mut subq: Vec<Vec<VecDeque<A::Msg>>> = (0..n)
        .map(|_| (0..n).map(|_| VecDeque::new()).collect())
        .collect();
    let mut ordq: Vec<Vec<VecDeque<A::Msg>>> = (0..n)
        .map(|_| (0..n).map(|_| VecDeque::new()).collect())
        .collect();
    let mut now = 0u64;
    let mut dup_ctr = 0u64;

    macro_rules! route {
        ($from:expr, $out:expr) => {
            for (dst, msg) in $out.drain() {
                if is_submission(&msg) {
                    subq[$from][dst.index()].push_back(msg);
                } else {
                    ordq[$from][dst.index()].push_back(msg);
                }
            }
        };
    }

    for wave in waves {
        for (p, item) in wave {
            let mut out = Outbox::new(n);
            nodes[*p].broadcast(item.clone(), &mut out);
            route!(*p, out);
        }
        // Settle to quiescence: submissions first in a fixed scan order
        // (identical across batch sizes — the stamp order), then ordering
        // frames with seed-driven duplication, then ticks to flush any
        // pending batch window. Repeat until nothing moves and no
        // deadline pends.
        let mut ticks = 0u32;
        loop {
            let mut progress = false;
            for from in 0..n {
                for to in 0..n {
                    loop {
                        let Some(m) = subq[from][to].pop_front() else {
                            break;
                        };
                        let mut out = Outbox::new(n);
                        nodes[to].on_message(pid(from), m, &mut out);
                        route!(to, out);
                        progress = true;
                    }
                }
            }
            if progress {
                continue; // deliveries may have enqueued fresh submissions
            }
            for from in 0..n {
                for to in 0..n {
                    loop {
                        let Some(m) = ordq[from][to].pop_front() else {
                            break;
                        };
                        let dup = splitmix64(
                            dup_seed ^ ((from as u64) << 32) ^ ((to as u64) << 16) ^ dup_ctr,
                        )
                        .is_multiple_of(4);
                        dup_ctr += 1;
                        let mut out = Outbox::new(n);
                        nodes[to].on_message(pid(from), m.clone(), &mut out);
                        route!(to, out);
                        if dup {
                            let mut out = Outbox::new(n);
                            nodes[to].on_message(pid(from), m, &mut out);
                            route!(to, out);
                        }
                        progress = true;
                    }
                }
            }
            if progress {
                continue;
            }
            let Some(deadline) = nodes.iter().filter_map(|nd| nd.next_deadline()).min() else {
                break;
            };
            now = now.max(deadline).max(now + 1);
            for (p, node) in nodes.iter_mut().enumerate() {
                let mut out = Outbox::new(n);
                node.on_tick(now, &mut out);
                route!(p, out);
            }
            ticks += 1;
            assert!(ticks < 10_000, "tick livelock");
        }
    }

    let seqs = nodes
        .iter_mut()
        .map(|node| {
            let channels = node.delivery_channels();
            node.drain_delivered()
                .into_iter()
                .enumerate()
                .map(|(i, d)| {
                    let ch = channels.as_ref().map_or(0, |c| c[i]);
                    (ch, d.origin.as_u32(), d.item.id)
                })
                .collect()
        })
        .collect();
    Outcome { seqs }
}

/// Builds the submission waves from the raw proptest choices: each entry
/// is (origin % n, footprint choice), ids globally unique.
fn build_waves(n: usize, raw: &[Vec<(usize, u32)>]) -> (Vec<Vec<(usize, Item)>>, Vec<Item>) {
    let mut id = 0u64;
    let mut all = Vec::new();
    let waves = raw
        .iter()
        .map(|wave| {
            wave.iter()
                .map(|&(origin, choice)| {
                    // 0..=3: single-object (routes to a shard under the
                    // test plan); 4..=5: cross-shard (routes global).
                    let objs = match choice % 6 {
                        c @ 0..=3 => vec![c],
                        4 => vec![0, 2],
                        _ => vec![1, 3],
                    };
                    let item = Item { id, objs };
                    id += 1;
                    all.push(item.clone());
                    (origin % n, item)
                })
                .collect()
        })
        .collect();
    (waves, all)
}

fn total(raw: &[Vec<(usize, u32)>]) -> usize {
    raw.iter().map(|w| w.len()).sum()
}

/// Splits a delivered sequence into per-channel projections.
fn per_channel(seq: &[Rec]) -> Vec<Vec<Rec>> {
    let max_ch = seq.iter().map(|r| r.0).max().unwrap_or(0) as usize;
    let mut by = vec![Vec::new(); max_ch + 1];
    for r in seq {
        by[r.0 as usize].push(*r);
    }
    by
}

/// Last-writer-wins register store over a delivered sequence.
fn store_state(seq: &[Rec], items: &[Item]) -> Vec<Option<u64>> {
    let mut store = vec![None; 8];
    for r in seq {
        for &o in &items[r.2 as usize].objs {
            store[o as usize] = Some(r.2);
        }
    }
    store
}

/// Relative order of every conflicting pair in a delivered sequence.
fn conflict_orders(seq: &[Rec], items: &[Item]) -> Vec<(u64, u64)> {
    let mut pos = vec![usize::MAX; items.len()];
    for (i, r) in seq.iter().enumerate() {
        pos[r.2 as usize] = i;
    }
    let mut out = Vec::new();
    for a in 0..items.len() {
        for b in (a + 1)..items.len() {
            let conflict = items[a].objs.iter().any(|o| items[b].objs.contains(o));
            if conflict {
                let (first, second) = if pos[a] < pos[b] {
                    (a as u64, b as u64)
                } else {
                    (b as u64, a as u64)
                };
                out.push((first, second));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sequencer_batched_order_is_byte_identical(
        n in 1usize..5,
        raw in prop::collection::vec(
            prop::collection::vec((0usize..8, 0u32..6), 1..6), 1..4),
        max_batch in 2usize..7,
        max_delay_ns in 0u64..2_000,
        dup_seed in any::<u64>(),
    ) {
        let (waves, _) = build_waves(n, &raw);
        let setup = |_: &mut SequencerAbcast<Item>| {};
        let class = |m: &SequencerMsg<Item>| matches!(m, SequencerMsg::Submit { .. });
        let base = run_cluster::<SequencerAbcast<Item>>(
            n, &waves, BatchConfig::default(), dup_seed, &setup, &class);
        let batched = run_cluster::<SequencerAbcast<Item>>(
            n, &waves, BatchConfig { max_batch, max_delay_ns }, dup_seed, &setup, &class);
        for p in 0..n {
            prop_assert_eq!(base.seqs[p].len(), total(&raw), "validity at P{}", p);
            prop_assert_eq!(&base.seqs[p], &batched.seqs[p],
                "delivered order diverged at P{}", p);
        }
    }

    #[test]
    fn view_batched_order_is_byte_identical(
        n in 1usize..5,
        raw in prop::collection::vec(
            prop::collection::vec((0usize..8, 0u32..6), 1..6), 1..4),
        max_batch in 2usize..7,
        max_delay_ns in 0u64..2_000,
        dup_seed in any::<u64>(),
    ) {
        let (waves, _) = build_waves(n, &raw);
        // Push crash suspicion far out of the virtual horizon: this suite
        // isolates batching; failover interplay belongs to the chaos sweep.
        let setup = |a: &mut ViewAbcast<Item>| a.set_failover_timeouts(1 << 40, 1 << 41);
        let class = |m: &ViewMsg<Item>| matches!(m, ViewMsg::Submit { .. });
        let base = run_cluster::<ViewAbcast<Item>>(
            n, &waves, BatchConfig::default(), dup_seed, &setup, &class);
        let batched = run_cluster::<ViewAbcast<Item>>(
            n, &waves, BatchConfig { max_batch, max_delay_ns }, dup_seed, &setup, &class);
        for p in 0..n {
            prop_assert_eq!(base.seqs[p].len(), total(&raw), "validity at P{}", p);
            prop_assert_eq!(&base.seqs[p], &batched.seqs[p],
                "delivered order diverged at P{}", p);
        }
    }

    #[test]
    fn sharded_batched_channels_and_store_are_identical(
        n in 2usize..5,
        raw in prop::collection::vec(
            prop::collection::vec((0usize..8, 0u32..6), 1..6), 1..4),
        max_batch in 2usize..7,
        max_delay_ns in 0u64..2_000,
        dup_seed in any::<u64>(),
    ) {
        let (waves, items) = build_waves(n, &raw);
        let setup = |a: &mut ShardedAbcast<Item>| {
            a.set_shard_plan(ShardPlan::new(vec![0, 0, 1, 1]).unwrap());
        };
        let class = |m: &ShardedMsg<Item>| matches!(m.msg, SequencerMsg::Submit { .. });
        let base = run_cluster::<ShardedAbcast<Item>>(
            n, &waves, BatchConfig::default(), dup_seed, &setup, &class);
        let batched = run_cluster::<ShardedAbcast<Item>>(
            n, &waves, BatchConfig { max_batch, max_delay_ns }, dup_seed, &setup, &class);
        for p in 0..n {
            prop_assert_eq!(base.seqs[p].len(), total(&raw), "validity at P{}", p);
            prop_assert_eq!(batched.seqs[p].len(), total(&raw), "validity at P{}", p);
            // Per-channel projections are the agreed orders: byte-identical.
            prop_assert_eq!(per_channel(&base.seqs[p]), per_channel(&batched.seqs[p]),
                "a channel order diverged at P{}", p);
            // Every conflicting pair keeps its agreed relative order.
            prop_assert_eq!(conflict_orders(&base.seqs[p], &items),
                conflict_orders(&batched.seqs[p], &items),
                "a conflicting pair flipped at P{}", p);
            // And the final store state is identical across runs (and, by
            // the same comparison chain, across replicas).
            prop_assert_eq!(store_state(&base.seqs[p], &items),
                store_state(&batched.seqs[p], &items),
                "final store state diverged at P{}", p);
        }
    }
}
