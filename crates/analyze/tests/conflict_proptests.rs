//! Property tests for the conflict-graph invariants of
//! `moc_analyze::conflict`.
//!
//! Random straight-line programs over a small object universe exercise
//! three contracts of `analyze_set`:
//!
//! * the conflict graph is canonical (edges stored with `a <= b`, never
//!   vacuous, WW dominating RW) and `edge(a, b)` is symmetric;
//! * `CertificateStatus::certified()` agrees exactly with the
//!   `ConstraintNotCertified` findings for a required constraint; and
//! * adding a program that cannot conflict with anything (a query on a
//!   fresh object) never changes any certificate or the fast-path
//!   verdict — certification is monotone under neutral extension.

use moc_analyze::{analyze_set, CertificateStatus, Lint};
use moc_core::constraints::Constraint;
use moc_core::ids::ObjectId;
use moc_core::program::{imm, reg, Program, ProgramBuilder};
use proptest::collection::vec;
use proptest::prelude::*;

/// Object universe for generated programs; the neutral program reads
/// outside it.
const UNIVERSE: u32 = 4;

#[derive(Debug, Clone)]
enum Step {
    Read(u32),
    Write(u32, i64),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..UNIVERSE).prop_map(Step::Read),
        (0..UNIVERSE, -4i64..4).prop_map(|(o, v)| Step::Write(o, v)),
    ]
}

/// One random program set: 1–5 programs of 0–4 reads/writes each.
fn program_set() -> impl Strategy<Value = Vec<Vec<Step>>> {
    vec(vec(step(), 0..4), 1..5)
}

fn build(name: &str, steps: &[Step]) -> Program {
    let mut b = ProgramBuilder::new(name);
    let mut regs = Vec::new();
    for (i, s) in steps.iter().enumerate() {
        match s {
            Step::Read(o) => {
                b.read(ObjectId::new(*o), i as u8);
                regs.push(reg(i as u8));
            }
            Step::Write(o, v) => {
                b.write(ObjectId::new(*o), imm(*v));
            }
        }
    }
    b.ret(regs);
    b.build().expect("generated programs are well-formed")
}

fn build_set(sets: &[Vec<Step>]) -> Vec<Program> {
    sets.iter()
        .enumerate()
        .map(|(i, steps)| build(&format!("p{i}"), steps))
        .collect()
}

/// A query on an object no generated program touches: conflicts with
/// nothing, including its own second instance.
fn neutral_query() -> Program {
    let mut b = ProgramBuilder::new("neutral");
    b.read(ObjectId::new(UNIVERSE + 3), 0).ret(vec![reg(0)]);
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conflict_graph_is_canonical_and_edge_lookup_symmetric(sets in program_set()) {
        let programs = build_set(&sets);
        let refs: Vec<&Program> = programs.iter().collect();
        let s = analyze_set(&refs, &[]);

        for e in &s.graph.edges {
            prop_assert!(e.a <= e.b, "edges are stored with a <= b");
            prop_assert!(e.conflicts(), "vacuous edges are omitted");
            prop_assert!(
                e.write_write.is_disjoint(&e.read_write),
                "a WW conflict dominates the RW edge on the same object"
            );
        }
        for w in s.graph.edges.windows(2) {
            prop_assert!(
                (w[0].a, w[0].b) < (w[1].a, w[1].b),
                "edges are sorted lexicographically without duplicates"
            );
        }
        for a in 0..programs.len() {
            for b in 0..programs.len() {
                match (s.graph.edge(a, b), s.graph.edge(b, a)) {
                    (Some(ab), Some(ba)) => prop_assert_eq!(ab, ba),
                    (None, None) => {}
                    _ => prop_assert!(false, "edge({a},{b}) asymmetric"),
                }
            }
        }
    }

    #[test]
    fn certified_agrees_with_required_findings(sets in program_set()) {
        let programs = build_set(&sets);
        let refs: Vec<&Program> = programs.iter().collect();
        for required in [Constraint::Oo, Constraint::Ww, Constraint::Wo] {
            let s = analyze_set(&refs, &[required]);
            let flagged = s
                .all_findings()
                .iter()
                .any(|f| f.lint == Lint::ConstraintNotCertified);
            prop_assert_eq!(
                s.certificate(required).status.certified(),
                !flagged,
                "{} certification must match its findings",
                required
            );
        }
    }

    #[test]
    fn neutral_program_never_flips_a_certificate(sets in program_set()) {
        let programs = build_set(&sets);
        let refs: Vec<&Program> = programs.iter().collect();
        let before = analyze_set(&refs, &[]);

        let neutral = neutral_query();
        let mut extended = refs.clone();
        extended.push(&neutral);
        let after = analyze_set(&extended, &[]);

        prop_assert_eq!(
            before.graph.edges.len(),
            after.graph.edges.len(),
            "a never-conflicting program adds no edges"
        );
        for (b, a) in before.certificates.iter().zip(&after.certificates) {
            prop_assert_eq!(b, a, "certificate for {} changed", b.constraint);
            // In particular NotCertified pairs keep their indices: the
            // neutral program is appended, never interleaved.
            if let CertificateStatus::NotCertified { pairs } = &a.status {
                for &(q, u) in pairs {
                    prop_assert!(q < refs.len() && u < refs.len());
                }
            }
        }
        prop_assert_eq!(before.fast_path, after.fast_path);
    }
}
