//! Soundness of the analyzer against the interpreter: the refined static
//! sets really do over-approximate every dynamic execution, and the
//! must-write set under-approximates every completed one.
//!
//! Programs are drawn from the shared grammar in `moc_workload::arb` —
//! the same one `moc synth` enumerates — so any seed that falsifies a
//! property here replays directly through the synthesis tooling (and
//! shrinks via `arb::minimize`/`arb::shrink_program`).

use std::collections::BTreeSet;

use moc_analyze::analyze_program;
use moc_core::ids::ObjectId;
use moc_core::program::{
    arg, execute, imm, reg, CmpOp, MContext, Program, ProgramBuilder, VecContext,
};
use moc_core::value::Value;
use moc_workload::arb::{self, ProgramBounds};
use proptest::prelude::*;

const PROP_OBJECTS: u32 = 4;

fn program_strategy() -> impl Strategy<Value = Program> {
    any::<u64>().prop_map(|seed| {
        arb::program_from_seed(
            seed,
            &ProgramBounds {
                objects: PROP_OBJECTS,
                max_len: 12,
            },
        )
    })
}

/// Context recording the objects dynamically read and written.
struct TrackingContext {
    inner: VecContext,
    read: BTreeSet<ObjectId>,
    written: BTreeSet<ObjectId>,
}

impl TrackingContext {
    fn new() -> Self {
        TrackingContext {
            inner: VecContext::new(PROP_OBJECTS as usize),
            read: BTreeSet::new(),
            written: BTreeSet::new(),
        }
    }
}

impl MContext for TrackingContext {
    fn read(&mut self, object: ObjectId) -> Value {
        self.read.insert(object);
        self.inner.read(object)
    }
    fn write(&mut self, object: ObjectId, value: Value) {
        self.written.insert(object);
        self.inner.write(object, value);
    }
}

proptest! {
    /// Every dynamically touched object is in the refined may sets —
    /// even for runs that die of fuel exhaustion, since any executed
    /// instruction is statically reachable.
    #[test]
    fn dynamic_sets_within_refined_may_sets(
        p in program_strategy(),
        args in proptest::collection::vec(-50i64..50, 3),
    ) {
        let a = analyze_program(&p);
        let mut ctx = TrackingContext::new();
        let _ = execute(&p, &args, &mut ctx, 10_000);
        prop_assert!(
            ctx.read.is_subset(&a.summary.may_read),
            "dynamic reads {:?} ⊄ may_read {:?}",
            ctx.read,
            a.summary.may_read
        );
        prop_assert!(
            ctx.written.is_subset(&a.summary.may_write),
            "dynamic writes {:?} ⊄ may_write {:?}",
            ctx.written,
            a.summary.may_write
        );
    }

    /// A run that reaches Return has written every must-write object.
    #[test]
    fn must_write_happens_on_every_completed_run(
        p in program_strategy(),
        args in proptest::collection::vec(-50i64..50, 3),
    ) {
        let a = analyze_program(&p);
        let mut ctx = TrackingContext::new();
        if execute(&p, &args, &mut ctx, 10_000).is_ok() {
            prop_assert!(
                a.summary.must_write.is_subset(&ctx.written),
                "must_write {:?} ⊄ dynamic {:?}",
                a.summary.must_write,
                ctx.written
            );
        }
    }

    /// Programs the analyzer classifies as queries never write at runtime
    /// — the property the refined protocol classification relies on.
    #[test]
    fn refined_queries_never_write(
        p in program_strategy(),
        args in proptest::collection::vec(-50i64..50, 3),
    ) {
        let a = analyze_program(&p);
        if !a.summary.is_update() {
            let mut ctx = TrackingContext::new();
            let _ = execute(&p, &args, &mut ctx, 10_000);
            prop_assert!(
                ctx.written.is_empty(),
                "refined query wrote {:?}",
                ctx.written
            );
        }
    }

    /// When the analyzer proves termination, its static fuel bound is
    /// enough fuel for any invocation.
    #[test]
    fn static_fuel_bound_covers_execution(p in program_strategy()) {
        let a = analyze_program(&p);
        if let Some(bound) = a.summary.termination.fuel_bound {
            let args = vec![0i64; p.arity()];
            let mut ctx = VecContext::new(PROP_OBJECTS as usize);
            let out = execute(&p, &args, &mut ctx, bound);
            match out {
                Ok(o) => prop_assert!(o.steps <= bound, "{} > {bound}", o.steps),
                Err(e) => prop_assert!(false, "bound {bound} insufficient: {e}"),
            }
        }
    }
}

/// DCAS is the paper's marquee conditional update: both sides of the
/// analysis must agree with both dynamic branches.
#[test]
fn dcas_failed_branch_writes_nothing() {
    let x = ObjectId::new(0);
    let y = ObjectId::new(1);
    let mut b = ProgramBuilder::new("dcas");
    let fail = b.fresh_label();
    b.read(x, 0)
        .read(y, 1)
        .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
        .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
        .write(x, arg(2))
        .write(y, arg(3))
        .ret(vec![imm(1)]);
    b.bind(fail);
    b.ret(vec![imm(0)]);
    let p = b.build().unwrap();

    let a = analyze_program(&p);
    let both: BTreeSet<ObjectId> = [x, y].into_iter().collect();
    assert_eq!(a.summary.may_write, both);
    assert!(
        a.summary.must_write.is_empty(),
        "the failed branch writes nothing, so no object is a must-write"
    );
    assert!(a.summary.is_update());

    // Success branch (both expectations match the zero-initialized store).
    let mut ctx = TrackingContext::new();
    let out = execute(&p, &[0, 0, 7, 8], &mut ctx, 1_000).unwrap();
    assert_eq!(out.outputs, vec![1]);
    assert_eq!(ctx.written, both);

    // Failure branch: a torn expectation writes nothing at all.
    let mut ctx = TrackingContext::new();
    let out = execute(&p, &[0, 99, 7, 8], &mut ctx, 1_000).unwrap();
    assert_eq!(out.outputs, vec![0]);
    assert!(ctx.written.is_empty());
}
