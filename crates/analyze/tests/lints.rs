//! Regression tests: every stable lint code fires on its canonical
//! trigger program and stays quiet on a clean one.

use moc_analyze::{analyze_program, analyze_set, Finding, Lint, Severity};
use moc_core::constraints::Constraint;
use moc_core::ids::ObjectId;
use moc_core::program::{arg, imm, reg, CmpOp, Program, ProgramBuilder};

fn codes(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.lint.code()).collect()
}

fn x() -> ObjectId {
    ObjectId::new(0)
}

fn query() -> Program {
    let mut b = ProgramBuilder::new("q");
    b.read(x(), 0).ret(vec![reg(0)]);
    b.build().unwrap()
}

fn writer() -> Program {
    let mut b = ProgramBuilder::new("w");
    b.write(x(), arg(0)).ret(vec![]);
    b.build().unwrap()
}

#[test]
fn moc0001_unreachable_instruction() {
    let mut b = ProgramBuilder::new("dead");
    let end = b.fresh_label();
    b.jump(end);
    b.mov(0, imm(1));
    b.bind(end);
    b.ret(vec![]);
    let a = analyze_program(&b.build().unwrap());
    assert!(codes(&a.findings).contains(&"MOC0001"), "{:?}", a.findings);
    let f = a
        .findings
        .iter()
        .find(|f| f.lint.code() == "MOC0001")
        .unwrap();
    assert_eq!(f.severity, Severity::Warn);
    assert_eq!(f.instr, Some(1), "points at the skipped instruction");
}

#[test]
fn moc0002_uninitialized_register_read() {
    let mut b = ProgramBuilder::new("uninit");
    b.write(x(), reg(4)).ret(vec![]);
    let a = analyze_program(&b.build().unwrap());
    let f = a
        .findings
        .iter()
        .find(|f| f.lint.code() == "MOC0002")
        .expect("uninitialized read flagged");
    assert_eq!(f.severity, Severity::Warn);
    assert_eq!(f.instr, Some(0));
}

#[test]
fn moc0003_unbounded_loop() {
    let mut b = ProgramBuilder::new("spin");
    let top = b.fresh_label();
    b.bind(top);
    b.read(x(), 0)
        .jump_if(reg(0), CmpOp::Eq, imm(0), top)
        .ret(vec![reg(0)]);
    let a = analyze_program(&b.build().unwrap());
    assert!(codes(&a.findings).contains(&"MOC0003"), "{:?}", a.findings);
    assert!(!a.summary.termination.guaranteed);
    assert_eq!(a.summary.termination.fuel_bound, None);
}

#[test]
fn moc0004_dead_register_store() {
    let mut b = ProgramBuilder::new("dead-store");
    b.mov(3, imm(9)).ret(vec![]);
    let a = analyze_program(&b.build().unwrap());
    assert!(codes(&a.findings).contains(&"MOC0004"), "{:?}", a.findings);
}

#[test]
fn moc0005_guaranteed_termination() {
    let a = analyze_program(&query());
    let f = a
        .findings
        .iter()
        .find(|f| f.lint.code() == "MOC0005")
        .expect("termination certificate emitted");
    assert_eq!(f.severity, Severity::Info);
    assert!(a.summary.termination.guaranteed);
    assert_eq!(a.summary.termination.fuel_bound, Some(2));
}

#[test]
fn moc0006_refined_classification() {
    let mut b = ProgramBuilder::new("fake-update");
    let end = b.fresh_label();
    b.jump(end);
    b.write(x(), imm(1));
    b.bind(end);
    b.ret(vec![]);
    let p = b.build().unwrap();
    assert!(p.is_potential_update());
    let a = analyze_program(&p);
    assert!(codes(&a.findings).contains(&"MOC0006"), "{:?}", a.findings);
    assert!(!a.summary.is_update());
}

#[test]
fn moc0007_required_constraint_not_certified() {
    let q = query();
    let w = writer();
    let s = analyze_set(&[&q, &w], &[Constraint::Oo]);
    let f = s
        .findings
        .iter()
        .find(|f| f.lint.code() == "MOC0007")
        .expect("uncertified required constraint is an error");
    assert_eq!(f.severity, Severity::Error);
}

#[test]
fn moc0008_certificates_always_reported() {
    let w = writer();
    let s = analyze_set(&[&w], &[]);
    let certs = s
        .findings
        .iter()
        .filter(|f| f.lint.code() == "MOC0008")
        .count();
    assert!(
        certs >= 3,
        "one certificate per constraint: {:?}",
        s.findings
    );
}

#[test]
fn clean_program_has_no_warnings() {
    let a = analyze_program(&query());
    assert!(
        a.findings.iter().all(|f| f.severity < Severity::Warn),
        "{:?}",
        a.findings
    );
}

#[test]
fn lint_codes_are_stable_and_unique() {
    let lints = [
        Lint::UnreachableInstruction,
        Lint::UninitializedRead,
        Lint::UnboundedLoop,
        Lint::DeadStore,
        Lint::GuaranteedTermination,
        Lint::RefinedClassification,
        Lint::ConstraintNotCertified,
        Lint::Certificate,
    ];
    let codes: Vec<&str> = lints.iter().map(|l| l.code()).collect();
    assert_eq!(
        codes,
        vec![
            "MOC0001", "MOC0002", "MOC0003", "MOC0004", "MOC0005", "MOC0006", "MOC0007", "MOC0008"
        ]
    );
    let names: std::collections::BTreeSet<_> = lints.iter().map(|l| l.name()).collect();
    assert_eq!(names.len(), lints.len());
}
