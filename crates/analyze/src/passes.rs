//! The per-program analysis passes.
//!
//! [`analyze_program`] runs, over one CFG:
//!
//! 1. **Reachability** — MOC0001 for instructions control flow can never
//!    reach (after branch folding);
//! 2. **Must-initialized registers** (forward, meet = ∩) — MOC0002 for
//!    reads of registers not written on every path;
//! 3. **Liveness** (backward, join = ∪) — MOC0004 for register stores
//!    whose value is never used;
//! 4. **Termination** — MOC0003 when a loop exists, MOC0005 with a static
//!    fuel bound when the reachable CFG is acyclic;
//! 5. **Refined read/write sets** — `may_read`/`may_write` over reachable
//!    instructions only, plus a `must_write` set (objects written on
//!    *every* terminating path, forward meet = ∩). MOC0006 reports when
//!    refinement shrinks the syntactic write set — in particular when it
//!    demotes a syntactic "update" to a query.
//!
//! The refined sets drive the Section 5 protocol classification: the
//! paper treats an m-operation as an update iff it can *potentially*
//! write; `may_write` is a strictly sharper version of the same
//! over-approximation (sound because pruned edges are statically
//! infeasible), and `must_write ⊆` every dynamic write set gives the
//! matching under-approximation (a failed DCAS writes nothing, so DCAS
//! has empty `must_write`).

use std::collections::BTreeSet;

use moc_core::ids::ObjectId;
use moc_core::program::{Instr, Operand, Program, NUM_REGS};

use crate::cfg::Cfg;
use crate::dataflow::{solve, DataflowAnalysis, Direction};
use crate::diagnostics::{Finding, Lint};

/// Whether the protocols must order this m-operation through the update
/// path (atomic broadcast) or may run it as a local query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Classification {
    /// No reachable write: executable at the local replica.
    Query,
    /// May write: must go through the update protocol.
    Update,
}

/// Static termination facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Termination {
    /// True iff the reachable CFG is acyclic — every execution
    /// terminates without consuming unbounded fuel.
    pub guaranteed: bool,
    /// When `guaranteed`, the longest entry-to-return path in
    /// instructions: a sufficient fuel budget.
    pub fuel_bound: Option<u64>,
}

/// The analyzer's per-program result summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSummary {
    /// Program name.
    pub name: String,
    /// Objects a reachable `Read` may read.
    pub may_read: BTreeSet<ObjectId>,
    /// Objects a reachable `Write` may write (⊆ the syntactic
    /// [`Program::potential_writes`]).
    pub may_write: BTreeSet<ObjectId>,
    /// Objects written on every terminating path (⊆ every dynamic write
    /// set).
    pub must_write: BTreeSet<ObjectId>,
    /// Refined protocol classification: update iff `may_write` nonempty.
    pub classification: Classification,
    /// Termination facts.
    pub termination: Termination,
}

impl ProgramSummary {
    /// Whether the refined classification is `Update`.
    pub fn is_update(&self) -> bool {
        self.classification == Classification::Update
    }
}

/// Per-program analysis output: summary plus diagnostics.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Dataflow summary.
    pub summary: ProgramSummary,
    /// Lint findings, ordered by instruction.
    pub findings: Vec<Finding>,
}

/// Registers an instruction reads (as operands).
fn reg_uses(instr: &Instr) -> Vec<u8> {
    let of = |o: &Operand| match o {
        Operand::Reg(r) => Some(*r),
        _ => None,
    };
    match instr {
        Instr::Read { .. } | Instr::Jump { .. } => Vec::new(),
        Instr::Write { src, .. } | Instr::Mov { src, .. } => of(src).into_iter().collect(),
        Instr::Binary { lhs, rhs, .. } | Instr::JumpIf { lhs, rhs, .. } => {
            of(lhs).into_iter().chain(of(rhs)).collect()
        }
        Instr::Return { outputs } => outputs.iter().filter_map(of).collect(),
    }
}

/// Register an instruction defines, if any.
fn reg_def(instr: &Instr) -> Option<u8> {
    match instr {
        Instr::Read { dst, .. } | Instr::Mov { dst, .. } | Instr::Binary { dst, .. } => Some(*dst),
        _ => None,
    }
}

const _: () = assert!(NUM_REGS <= 64, "register bitmask facts are u64");

/// Forward must-initialized: bit r set ⇔ register r written on every path.
struct MustInit;
impl DataflowAnalysis for MustInit {
    type Fact = u64;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> u64 {
        0
    }
    fn join_identity(&self) -> u64 {
        u64::MAX
    }
    fn join(&self, a: &u64, b: &u64) -> u64 {
        a & b
    }
    fn transfer(&self, _idx: usize, instr: &Instr, fact: &u64) -> u64 {
        match reg_def(instr) {
            Some(r) => fact | (1u64 << r),
            None => *fact,
        }
    }
}

/// Backward liveness: bit r set ⇔ register r may be read before its next
/// definition.
struct Liveness;
impl DataflowAnalysis for Liveness {
    type Fact = u64;
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self) -> u64 {
        0
    }
    fn join_identity(&self) -> u64 {
        0
    }
    fn join(&self, a: &u64, b: &u64) -> u64 {
        a | b
    }
    fn transfer(&self, _idx: usize, instr: &Instr, fact: &u64) -> u64 {
        let mut f = *fact;
        if let Some(r) = reg_def(instr) {
            f &= !(1u64 << r);
        }
        for r in reg_uses(instr) {
            f |= 1u64 << r;
        }
        f
    }
}

/// Forward must-write: objects definitely written so far on every path.
struct MustWrite {
    /// Join identity: the set of all statically writable objects.
    universe: BTreeSet<ObjectId>,
}
impl DataflowAnalysis for MustWrite {
    type Fact = BTreeSet<ObjectId>;
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self) -> BTreeSet<ObjectId> {
        BTreeSet::new()
    }
    fn join_identity(&self) -> BTreeSet<ObjectId> {
        self.universe.clone()
    }
    fn join(&self, a: &BTreeSet<ObjectId>, b: &BTreeSet<ObjectId>) -> BTreeSet<ObjectId> {
        a.intersection(b).copied().collect()
    }
    fn transfer(
        &self,
        _idx: usize,
        instr: &Instr,
        fact: &BTreeSet<ObjectId>,
    ) -> BTreeSet<ObjectId> {
        match instr {
            Instr::Write { object, .. } => {
                let mut f = fact.clone();
                f.insert(*object);
                f
            }
            _ => fact.clone(),
        }
    }
}

/// Runs every pass over `program`.
pub fn analyze_program(program: &Program) -> ProgramAnalysis {
    let cfg = Cfg::build(program);
    let reachable = cfg.reachable_instrs();
    let name = program.name().to_string();
    let mut findings = Vec::new();

    // Pass 1: reachability.
    for (i, r) in reachable.iter().enumerate() {
        if !r {
            findings.push(Finding::new(
                Lint::UnreachableInstruction,
                &name,
                Some(i),
                format!("instruction {i} can never execute"),
            ));
        }
    }

    // Pass 2: uninitialized reads.
    let init = solve(program, &cfg, &MustInit);
    for (i, instr) in program.instrs().iter().enumerate() {
        let Some(fact) = init.at[i] else { continue };
        for r in reg_uses(instr) {
            if fact & (1u64 << r) == 0 {
                findings.push(Finding::new(
                    Lint::UninitializedRead,
                    &name,
                    Some(i),
                    format!("register r{r} may be read before initialization"),
                ));
            }
        }
    }

    // Pass 3: dead stores. `Read` also defines a register, but the read
    // itself is a shared-object operation event, so only pure register
    // stores (Mov/Binary) are flagged.
    let live = solve(program, &cfg, &Liveness);
    for (i, instr) in program.instrs().iter().enumerate() {
        let Some(after) = live.at[i] else { continue };
        if let (Some(r), Instr::Mov { .. } | Instr::Binary { .. }) = (reg_def(instr), instr) {
            if after & (1u64 << r) == 0 {
                findings.push(Finding::new(
                    Lint::DeadStore,
                    &name,
                    Some(i),
                    format!("value stored to r{r} is never used"),
                ));
            }
        }
    }

    // Pass 4: termination.
    let termination = if cfg.is_acyclic() {
        let bound = cfg.max_path_len().expect("acyclic CFG has a longest path");
        findings.push(Finding::new(
            Lint::GuaranteedTermination,
            &name,
            None,
            format!("terminates on every path within {bound} instructions"),
        ));
        Termination {
            guaranteed: true,
            fuel_bound: Some(bound),
        }
    } else {
        for &(from, _to) in &cfg.back_edges {
            let site = cfg.blocks[from].end - 1;
            findings.push(Finding::new(
                Lint::UnboundedLoop,
                &name,
                Some(site),
                "loop detected: termination relies on the interpreter's fuel bound".to_string(),
            ));
        }
        Termination {
            guaranteed: false,
            fuel_bound: None,
        }
    };

    // Pass 5: refined read/write sets.
    let mut may_read = BTreeSet::new();
    let mut may_write = BTreeSet::new();
    for (i, instr) in program.instrs().iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        match instr {
            Instr::Read { object, .. } => {
                may_read.insert(*object);
            }
            Instr::Write { object, .. } => {
                may_write.insert(*object);
            }
            _ => {}
        }
    }
    let mw = MustWrite {
        universe: may_write.clone(),
    };
    let writes = solve(program, &cfg, &mw);
    let mut must_write: Option<BTreeSet<ObjectId>> = None;
    for (i, instr) in program.instrs().iter().enumerate() {
        if let (Instr::Return { .. }, Some(fact)) = (instr, &writes.at[i]) {
            // Fact *before* the Return = objects written on every path
            // reaching this exit.
            must_write = Some(match must_write {
                None => fact.clone(),
                Some(acc) => acc.intersection(fact).copied().collect(),
            });
        }
    }
    // No reachable Return (pure spin loop): no terminating path, so the
    // guarantee is vacuous; report the empty set conservatively.
    let must_write = must_write.unwrap_or_default();

    let syntactic = program.potential_writes();
    if may_write != syntactic {
        let dropped: Vec<String> = syntactic
            .difference(&may_write)
            .map(|o| o.to_string())
            .collect();
        let demoted = may_write.is_empty();
        findings.push(Finding::new(
            Lint::RefinedClassification,
            &name,
            None,
            if demoted {
                format!(
                    "all writes ({}) are unreachable: refined from update to query",
                    dropped.join(", ")
                )
            } else {
                format!(
                    "writes to {} are unreachable: refined write set is smaller than syntactic",
                    dropped.join(", ")
                )
            },
        ));
    }

    let classification = if may_write.is_empty() {
        Classification::Query
    } else {
        Classification::Update
    };

    findings.sort_by_key(|f| (f.instr.unwrap_or(usize::MAX), f.lint.code()));

    ProgramAnalysis {
        summary: ProgramSummary {
            name,
            may_read,
            may_write,
            must_write,
            classification,
            termination,
        },
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::program::{arg, imm, reg, CmpOp, ProgramBuilder};

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn dcas() -> Program {
        let x = oid(0);
        let y = oid(1);
        let mut b = ProgramBuilder::new("dcas");
        let fail = b.fresh_label();
        b.read(x, 0)
            .read(y, 1)
            .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
            .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
            .write(x, arg(2))
            .write(y, arg(3))
            .ret(vec![imm(1)]);
        b.bind(fail);
        b.ret(vec![imm(0)]);
        b.build().unwrap()
    }

    #[test]
    fn dcas_summary() {
        let a = analyze_program(&dcas());
        let s = &a.summary;
        assert_eq!(s.may_write, [oid(0), oid(1)].into());
        assert_eq!(s.may_read, [oid(0), oid(1)].into());
        // The failed branch writes nothing, so nothing is a must-write.
        assert!(s.must_write.is_empty());
        assert_eq!(s.classification, Classification::Update);
        assert!(s.termination.guaranteed);
        assert_eq!(s.termination.fuel_bound, Some(7));
        // Clean program: only the termination info finding.
        assert!(a
            .findings
            .iter()
            .all(|f| f.lint == Lint::GuaranteedTermination));
    }

    #[test]
    fn straight_line_write_is_must_write() {
        let mut b = ProgramBuilder::new("w");
        b.write(oid(3), imm(7)).ret(vec![]);
        let p = b.build().unwrap();
        let s = analyze_program(&p).summary;
        assert_eq!(s.must_write, [oid(3)].into());
        assert_eq!(s.may_write, [oid(3)].into());
    }

    #[test]
    fn unreachable_write_demotes_to_query() {
        // jump over the write: syntactically an update, semantically a
        // query.
        let mut b = ProgramBuilder::new("jumpy");
        let end = b.fresh_label();
        b.read(oid(0), 0).jump(end);
        b.write(oid(0), imm(5));
        b.bind(end);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        assert!(p.is_potential_update(), "syntactic classification: update");
        let a = analyze_program(&p);
        assert_eq!(a.summary.classification, Classification::Query);
        assert!(a.summary.may_write.is_empty());
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == Lint::UnreachableInstruction));
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == Lint::RefinedClassification));
    }

    #[test]
    fn uninitialized_read_detected() {
        let mut b = ProgramBuilder::new("uninit");
        b.write(oid(0), reg(4)).ret(vec![]);
        let p = b.build().unwrap();
        let a = analyze_program(&p);
        let f = a
            .findings
            .iter()
            .find(|f| f.lint == Lint::UninitializedRead)
            .expect("should flag r4");
        assert_eq!(f.instr, Some(0));
        assert!(f.message.contains("r4"));
    }

    #[test]
    fn branch_dependent_init_flagged() {
        // r0 initialized on only one arm of a feasible branch.
        let mut b = ProgramBuilder::new("half-init");
        let skip = b.fresh_label();
        b.jump_if(arg(0), CmpOp::Eq, imm(0), skip);
        b.mov(0, imm(1));
        b.bind(skip);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let a = analyze_program(&p);
        assert!(a.findings.iter().any(|f| f.lint == Lint::UninitializedRead));
    }

    #[test]
    fn dead_store_detected() {
        let mut b = ProgramBuilder::new("dead");
        b.mov(0, imm(1)).mov(0, imm(2)).ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let a = analyze_program(&p);
        let f = a
            .findings
            .iter()
            .find(|f| f.lint == Lint::DeadStore)
            .expect("first mov is dead");
        assert_eq!(f.instr, Some(0));
    }

    #[test]
    fn loop_reports_unbounded() {
        let mut b = ProgramBuilder::new("sum");
        let top = b.fresh_label();
        let done = b.fresh_label();
        b.mov(0, imm(0)).mov(1, imm(1));
        b.bind(top);
        b.jump_if(reg(1), CmpOp::Gt, arg(0), done)
            .add(0, reg(0), reg(1))
            .add(1, reg(1), imm(1))
            .jump(top);
        b.bind(done);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let a = analyze_program(&p);
        assert!(!a.summary.termination.guaranteed);
        assert_eq!(a.summary.termination.fuel_bound, None);
        assert!(a.findings.iter().any(|f| f.lint == Lint::UnboundedLoop));
    }

    #[test]
    fn folded_branch_refines_write_set() {
        // A constant-false guard in front of a write: the write can never
        // execute even though it is a jump target away.
        let mut b = ProgramBuilder::new("const-guard");
        let wr = b.fresh_label();
        let end = b.fresh_label();
        b.read(oid(1), 0)
            .jump_if(imm(1), CmpOp::Eq, imm(2), wr)
            .jump(end);
        b.bind(wr);
        b.write(oid(1), imm(0));
        b.bind(end);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.summary.classification, Classification::Query);
    }
}
