//! Static conflict graphs and constraint certificates over program sets.
//!
//! Section 4's constraints (OO, WW, WO) are properties of *executions*:
//! certain pairs of m-operations must be ordered by the history relation.
//! Checking them per history is what [`moc_core::constraints`] does. This
//! module answers the *configuration-time* question instead: given the
//! set of programs a deployment will ever run, which constraints does the
//! Section 5 protocol family enforce **by construction**, so that the
//! Theorem 7 fast path (admissible ⇔ legal, polynomial) applies to every
//! history the system can produce?
//!
//! Two static facts make a constraint certifiable:
//!
//! - **Vacuous** — no pair of program instances can ever produce a
//!   conflict of the constrained kind, so any relation satisfies it;
//! - **Enforced by update order** — every obligated pair consists of two
//!   (refined) update m-operations, and the protocols atomically
//!   broadcast all updates, totally ordering them.
//!
//! WW and WO always land in one of these two buckets (WO-obligated pairs
//! write a common object, hence are update pairs). OO additionally
//! obligates update–query pairs; those are *not* ordered by the
//! protocols (queries execute locally), so OO is certified only when no
//! query reads an object some update may write. The refined
//! classification matters here: a program whose writes are all
//! unreachable is a query and drops out of every obligation.

use std::collections::BTreeSet;

use moc_core::constraints::Constraint;
use moc_core::ids::ObjectId;
use moc_core::program::Program;

use crate::diagnostics::{Finding, Lint};
use crate::passes::{analyze_program, ProgramAnalysis};

/// A potential conflict between instances of two programs (`a == b`
/// means two concurrent instances of the same program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictEdge {
    /// Index of the first program.
    pub a: usize,
    /// Index of the second program (≥ `a`).
    pub b: usize,
    /// Objects both sides may write.
    pub write_write: BTreeSet<ObjectId>,
    /// Objects one side may write and the other may (only) read.
    pub read_write: BTreeSet<ObjectId>,
}

impl ConflictEdge {
    /// Whether any conflict is possible on this pair.
    pub fn conflicts(&self) -> bool {
        !self.write_write.is_empty() || !self.read_write.is_empty()
    }
}

/// The static conflict graph of a program set.
#[derive(Debug, Clone)]
pub struct ConflictGraph {
    /// Conflicting pairs only (edges with no possible conflict are
    /// omitted); `a <= b`, ordered lexicographically.
    pub edges: Vec<ConflictEdge>,
}

impl ConflictGraph {
    /// The edge between programs `a` and `b`, if they can conflict.
    pub fn edge(&self, a: usize, b: usize) -> Option<&ConflictEdge> {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.edges.iter().find(|e| e.a == a && e.b == b)
    }
}

/// Why (or why not) a constraint holds for every history the
/// configuration can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertificateStatus {
    /// No pair of program instances can produce an obligated conflict:
    /// the constraint holds under any relation.
    Vacuous,
    /// Obligated pairs exist, but all of them are update–update pairs,
    /// which the Section 5 protocols totally order via atomic broadcast.
    EnforcedByUpdateOrder,
    /// Some obligated pair involves a query m-operation the protocols do
    /// not order; the constraint cannot be promised up front.
    NotCertified {
        /// Offending program index pairs `(query-side, update-side)`.
        pairs: Vec<(usize, usize)>,
    },
}

impl CertificateStatus {
    /// Whether the constraint is guaranteed for every producible history.
    pub fn certified(&self) -> bool {
        !matches!(self, CertificateStatus::NotCertified { .. })
    }
}

/// An up-front guarantee about one constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The constraint certified.
    pub constraint: Constraint,
    /// Outcome.
    pub status: CertificateStatus,
}

/// Whole-configuration analysis: per-program results, the conflict
/// graph, and one certificate per constraint.
#[derive(Debug, Clone)]
pub struct SetAnalysis {
    /// Per-program analyses, in input order.
    pub programs: Vec<ProgramAnalysis>,
    /// Static conflict graph.
    pub graph: ConflictGraph,
    /// Certificates for OO, WW and WO (in that order).
    pub certificates: Vec<Certificate>,
    /// Whether the Theorem 7 fast path applies to every history this
    /// configuration produces (OO or WW certified).
    pub fast_path: bool,
    /// Set-level findings (certificates, violations of `required`).
    pub findings: Vec<Finding>,
}

impl SetAnalysis {
    /// The certificate for `constraint`.
    pub fn certificate(&self, constraint: Constraint) -> &Certificate {
        self.certificates
            .iter()
            .find(|c| c.constraint == constraint)
            .expect("all three constraints are always certified or refused")
    }

    /// All findings: set-level plus every program's, program order first.
    pub fn all_findings(&self) -> Vec<Finding> {
        let mut out: Vec<Finding> = self
            .programs
            .iter()
            .flat_map(|p| p.findings.iter().cloned())
            .collect();
        out.extend(self.findings.iter().cloned());
        out
    }
}

fn intersect(a: &BTreeSet<ObjectId>, b: &BTreeSet<ObjectId>) -> BTreeSet<ObjectId> {
    a.intersection(b).copied().collect()
}

/// Analyzes a program set and certifies the Section 4 constraints
/// against it. `required` lists constraints the caller wants enforced;
/// each one that fails certification produces a [`Lint::ConstraintNotCertified`]
/// error finding.
pub fn analyze_set(programs: &[&Program], required: &[Constraint]) -> SetAnalysis {
    let analyses: Vec<ProgramAnalysis> = programs.iter().map(|p| analyze_program(p)).collect();

    // Conflict graph, including self-pairs: two concurrent instances of
    // one program conflict exactly like two distinct programs would.
    let mut edges = Vec::new();
    for i in 0..analyses.len() {
        for j in i..analyses.len() {
            let (si, sj) = (&analyses[i].summary, &analyses[j].summary);
            let write_write = intersect(&si.may_write, &sj.may_write);
            let mut read_write = intersect(&si.may_write, &sj.may_read);
            read_write.extend(intersect(&sj.may_write, &si.may_read));
            // Objects already in WW conflict dominate the RW edge.
            let read_write: BTreeSet<ObjectId> =
                read_write.difference(&write_write).copied().collect();
            let e = ConflictEdge {
                a: i,
                b: j,
                write_write,
                read_write,
            };
            if e.conflicts() {
                edges.push(e);
            }
        }
    }
    let graph = ConflictGraph { edges };

    let updates: Vec<usize> = analyses
        .iter()
        .enumerate()
        .filter(|(_, a)| a.summary.is_update())
        .map(|(i, _)| i)
        .collect();

    // WW: obligated pairs are update–update pairs — exactly what atomic
    // broadcast orders. Vacuous with at most... with zero updates there
    // is no update pair at all (a single update program still pairs with
    // its own second instance, so one update suffices to obligate).
    let ww_status = if updates.is_empty() {
        CertificateStatus::Vacuous
    } else {
        CertificateStatus::EnforcedByUpdateOrder
    };

    // WO: obligated pairs write a common object, hence are update pairs;
    // vacuous when no program can write at all (same condition as WW
    // here, since an update program self-conflicts on its own writes).
    let wo_status = if updates.is_empty() {
        CertificateStatus::Vacuous
    } else {
        CertificateStatus::EnforcedByUpdateOrder
    };

    // OO: obligated pairs are conflicting pairs. Update–update pairs are
    // covered by the broadcast order; any conflict touching a query is
    // uncoverable.
    let mut oo_bad: Vec<(usize, usize)> = Vec::new();
    for e in &graph.edges {
        let (ua, ub) = (
            analyses[e.a].summary.is_update(),
            analyses[e.b].summary.is_update(),
        );
        if !(ua && ub) {
            // Order as (query, update) for reporting.
            if ua {
                oo_bad.push((e.b, e.a));
            } else {
                oo_bad.push((e.a, e.b));
            }
        }
    }
    let oo_status = if graph.edges.is_empty() {
        CertificateStatus::Vacuous
    } else if oo_bad.is_empty() {
        CertificateStatus::EnforcedByUpdateOrder
    } else {
        CertificateStatus::NotCertified { pairs: oo_bad }
    };

    let certificates = vec![
        Certificate {
            constraint: Constraint::Oo,
            status: oo_status,
        },
        Certificate {
            constraint: Constraint::Ww,
            status: ww_status,
        },
        Certificate {
            constraint: Constraint::Wo,
            status: wo_status,
        },
    ];

    let fast_path = certificates
        .iter()
        .filter(|c| matches!(c.constraint, Constraint::Oo | Constraint::Ww))
        .any(|c| c.status.certified());

    let mut findings = Vec::new();
    for c in &certificates {
        let msg = match &c.status {
            CertificateStatus::Vacuous => {
                format!(
                    "{} holds vacuously: no conflicting pair is possible",
                    c.constraint
                )
            }
            CertificateStatus::EnforcedByUpdateOrder => format!(
                "{} enforced by construction: every obligated pair is a pair of updates, \
                 totally ordered by atomic broadcast ({} update program{})",
                c.constraint,
                updates.len(),
                if updates.len() == 1 { "" } else { "s" }
            ),
            CertificateStatus::NotCertified { pairs } => {
                let (q, u) = pairs[0];
                format!(
                    "{} not certified: query '{}' conflicts with update '{}' \
                     and queries are not ordered by the protocol ({} pair{})",
                    c.constraint,
                    analyses[q].summary.name,
                    analyses[u].summary.name,
                    pairs.len(),
                    if pairs.len() == 1 { "" } else { "s" }
                )
            }
        };
        findings.push(Finding::new(Lint::Certificate, "", None, msg));
    }
    if fast_path {
        findings.push(Finding::new(
            Lint::Certificate,
            "",
            None,
            "Theorem 7 fast path applies: admissibility of every producible history \
             is decidable in polynomial time"
                .to_string(),
        ));
    }
    for &r in required {
        let cert = certificates
            .iter()
            .find(|c| c.constraint == r)
            .expect("certificates cover all constraints");
        if !cert.status.certified() {
            findings.push(Finding::new(
                Lint::ConstraintNotCertified,
                "",
                None,
                format!("required {} cannot be certified for this program set", r),
            ));
        }
    }

    SetAnalysis {
        programs: analyses,
        graph,
        certificates,
        fast_path,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::program::{arg, imm, reg, CmpOp, ProgramBuilder};

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn write_prog(name: &str, o: u32) -> Program {
        let mut b = ProgramBuilder::new(name);
        b.write(oid(o), arg(0)).ret(vec![]);
        b.build().unwrap()
    }

    fn read_prog(name: &str, o: u32) -> Program {
        let mut b = ProgramBuilder::new(name);
        b.read(oid(o), 0).ret(vec![reg(0)]);
        b.build().unwrap()
    }

    #[test]
    fn queries_only_certify_everything_vacuously() {
        let p = read_prog("q0", 0);
        let q = read_prog("q1", 1);
        let s = analyze_set(&[&p, &q], &[]);
        for c in &s.certificates {
            assert_eq!(c.status, CertificateStatus::Vacuous, "{}", c.constraint);
        }
        assert!(s.fast_path);
        assert!(s.graph.edges.is_empty());
    }

    #[test]
    fn disjoint_update_and_query_certify_oo() {
        // Update on x, query on y: no shared object, OO vacuous... but
        // the update self-conflicts (two instances write x), so OO is
        // enforced rather than vacuous.
        let w = write_prog("wx", 0);
        let q = read_prog("qy", 1);
        let s = analyze_set(&[&w, &q], &[]);
        assert_eq!(
            s.certificate(Constraint::Oo).status,
            CertificateStatus::EnforcedByUpdateOrder
        );
        assert!(s.fast_path);
        // Self-edge on the update.
        assert!(s.graph.edge(0, 0).is_some());
        assert!(s.graph.edge(0, 1).is_none());
    }

    #[test]
    fn query_reading_written_object_breaks_oo() {
        let w = write_prog("wx", 0);
        let q = read_prog("qx", 0);
        let s = analyze_set(&[&w, &q], &[]);
        let CertificateStatus::NotCertified { pairs } = &s.certificate(Constraint::Oo).status
        else {
            panic!("OO should not certify");
        };
        assert_eq!(pairs, &[(1, 0)], "(query, update) pair");
        // WW/WO still enforced, so the fast path still applies via WW.
        assert!(s.certificate(Constraint::Ww).status.certified());
        assert!(s.certificate(Constraint::Wo).status.certified());
        assert!(s.fast_path);
        // Conflict edge carries the object.
        let e = s.graph.edge(0, 1).unwrap();
        assert_eq!(e.read_write, [oid(0)].into());
        assert!(e.write_write.is_empty());
    }

    #[test]
    fn required_uncertified_constraint_is_an_error() {
        let w = write_prog("wx", 0);
        let q = read_prog("qx", 0);
        let s = analyze_set(&[&w, &q], &[Constraint::Oo]);
        let errs: Vec<_> = s
            .findings
            .iter()
            .filter(|f| f.lint == Lint::ConstraintNotCertified)
            .collect();
        assert_eq!(errs.len(), 1);
        assert_eq!(
            crate::diagnostics::max_severity(&s.all_findings()),
            Some(crate::diagnostics::Severity::Error)
        );
        // Requiring WW instead is fine.
        let s = analyze_set(&[&w, &q], &[Constraint::Ww]);
        assert!(s
            .findings
            .iter()
            .all(|f| f.lint != Lint::ConstraintNotCertified));
    }

    #[test]
    fn refined_classification_feeds_certification() {
        // A program whose only write is unreachable is a query: a
        // would-be OO violation disappears under refinement.
        let w = write_prog("wx", 0);
        let mut b = ProgramBuilder::new("dead-write");
        let end = b.fresh_label();
        b.read(oid(0), 0).jump(end);
        b.write(oid(1), imm(1));
        b.bind(end);
        b.ret(vec![reg(0)]);
        let fake_update = b.build().unwrap();
        assert!(fake_update.is_potential_update());

        // Syntactically, dead-write reads x while wx writes x → an OO
        // obligation on a "query-like" pair either way; the point is the
        // refined set analysis still reports it as a *query* conflict.
        let s = analyze_set(&[&w, &fake_update], &[]);
        let CertificateStatus::NotCertified { pairs } = &s.certificate(Constraint::Oo).status
        else {
            panic!("read of written x keeps OO uncertified");
        };
        assert_eq!(pairs, &[(1, 0)]);
        // And WW sees exactly one update program (dead-write refined out).
        let ww = s.certificate(Constraint::Ww);
        assert_eq!(ww.status, CertificateStatus::EnforcedByUpdateOrder);
        assert_eq!(
            s.programs[1].summary.classification,
            crate::passes::Classification::Query
        );
    }

    #[test]
    fn ww_pairs_cover_dcas_configurations() {
        let x = oid(0);
        let y = oid(1);
        let mut b = ProgramBuilder::new("dcas");
        let fail = b.fresh_label();
        b.read(x, 0)
            .read(y, 1)
            .jump_if(reg(0), CmpOp::Ne, arg(0), fail)
            .jump_if(reg(1), CmpOp::Ne, arg(1), fail)
            .write(x, arg(2))
            .write(y, arg(3))
            .ret(vec![imm(1)]);
        b.bind(fail);
        b.ret(vec![imm(0)]);
        let dcas = b.build().unwrap();
        let w = write_prog("wx", 0);
        let s = analyze_set(&[&dcas, &w], &[Constraint::Ww, Constraint::Wo]);
        assert!(s.certificate(Constraint::Ww).status.certified());
        assert!(s.certificate(Constraint::Wo).status.certified());
        let e = s.graph.edge(0, 1).unwrap();
        assert_eq!(e.write_write, [x].into());
        // dcas also reads x, but the WW conflict dominates.
        assert!(e.read_write.is_empty());
        assert!(s.fast_path);
    }
}
