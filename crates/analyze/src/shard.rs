//! The whole-configuration shardability pass.
//!
//! The conflict graph ([`crate::conflict`]) already knows which objects a
//! deployment's programs can make interact: every program footprint is a
//! clique over the objects it may touch. This pass condenses that
//! interaction structure into **shards** — groups of objects no single
//! program bridges — and emits a versioned [`ShardCert`] carrying the
//! proof obligations a sharded ordering layer needs:
//!
//! * every single-shard program's read/write footprint is closed within
//!   its shard (so a per-shard sequencer sees every conflict it must
//!   order);
//! * every cross-shard program is enumerated together with the exact
//!   conflict edges (object + WW/RW kind) that force it onto the global
//!   order;
//! * a composition verdict states which constraint classes (OO/WW/WO,
//!   Theorem 7) remain enforced under per-shard sequencing, and under
//!   which dynamic side conditions m-SC and m-lin survive composition
//!   (Gotsman–Burckhardt: m-SC does *not* compose in general; m-lin does,
//!   by locality).
//!
//! The baseline partition is the connected components of the interaction
//! graph. When a component exceeds `max_shard_size`, a greedy min-cut
//! refinement splits it — deliberately trading cross-shard programs
//! (which fall back to the global order, lint MOC0009) for bounded shard
//! size. A *hub object* whose removal would disconnect its component is
//! flagged (MOC0010): one over-shared object is usually the single reason
//! a configuration cannot shard.

use std::collections::{BTreeMap, BTreeSet};

use moc_core::ids::ObjectId;
use moc_core::program::Program;
use moc_core::shard::{
    fingerprint_programs, ShardComposition, ShardCrossEdge, ShardEdgeKind, ShardPlan,
    ShardProgramEntry,
};
use moc_core::ShardCert;

use crate::conflict::{analyze_set, SetAnalysis};
use crate::diagnostics::{Finding, Lint};

/// Knobs of the shardability pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardOptions {
    /// When set, components larger than this are split by the greedy
    /// refinement, at the cost of cross-shard programs.
    pub max_shard_size: Option<usize>,
}

/// The pass's result: the partition, its certificate, and findings.
#[derive(Debug, Clone)]
pub struct ShardAnalysis {
    /// The underlying conflict-graph analysis (shared source of truth).
    pub set: SetAnalysis,
    /// The object partition.
    pub plan: ShardPlan,
    /// The proof document, independently re-validatable by `moc-audit`.
    pub cert: ShardCert,
    /// Shard-specific findings (MOC0009–MOC0011 plus summaries), in
    /// addition to [`SetAnalysis::all_findings`].
    pub findings: Vec<Finding>,
}

impl ShardAnalysis {
    /// All findings: the set analysis's, then the shard pass's.
    pub fn all_findings(&self) -> Vec<Finding> {
        let mut out = self.set.all_findings();
        out.extend(self.findings.iter().cloned());
        out
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, v: usize) -> usize {
        let mut root = v;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = v;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

fn footprint(set: &SetAnalysis, i: usize) -> BTreeSet<ObjectId> {
    let s = &set.programs[i].summary;
    s.may_read.union(&s.may_write).copied().collect()
}

/// Connected components of the object-interaction graph induced by the
/// given footprints, over the objects in `universe`. Components are
/// ordered by smallest member; only touched objects appear.
fn interaction_components(
    universe: &BTreeSet<ObjectId>,
    footprints: &[BTreeSet<ObjectId>],
) -> Vec<Vec<ObjectId>> {
    let index: BTreeMap<ObjectId, usize> =
        universe.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut uf = UnionFind::new(universe.len());
    let mut touched = vec![false; universe.len()];
    for fp in footprints {
        let mut prev: Option<usize> = None;
        for o in fp {
            let Some(&i) = index.get(o) else { continue };
            touched[i] = true;
            if let Some(p) = prev {
                uf.union(p, i);
            }
            prev = Some(i);
        }
    }
    let mut by_root: BTreeMap<usize, Vec<ObjectId>> = BTreeMap::new();
    for (&o, &i) in &index {
        if touched[i] {
            by_root.entry(uf.find(i)).or_default().push(o);
        }
    }
    let mut comps: Vec<Vec<ObjectId>> = by_root.into_values().collect();
    comps.sort_by_key(|c| c[0]);
    comps
}

/// Greedy min-cut split of an oversized component into bins of at most
/// `cap` objects. Objects are placed highest-degree first, each into the
/// bin sharing the most program footprints with it — the placement that
/// adds the fewest newly-straddled programs at each step.
fn greedy_split(
    comp: &[ObjectId],
    footprints: &[BTreeSet<ObjectId>],
    cap: usize,
) -> Vec<Vec<ObjectId>> {
    let degree = |o: ObjectId| footprints.iter().filter(|fp| fp.contains(&o)).count();
    let mut order: Vec<ObjectId> = comp.to_vec();
    // Descending degree, ascending id for determinism.
    order.sort_by_key(|&o| (usize::MAX - degree(o), o));

    let mut bins: Vec<Vec<ObjectId>> = Vec::new();
    for &o in &order {
        let mut best: Option<(usize, usize)> = None; // (affinity, bin)
        for (b, bin) in bins.iter().enumerate() {
            if bin.len() >= cap {
                continue;
            }
            // Affinity: how many footprints join `o` with this bin.
            let affinity = footprints
                .iter()
                .filter(|fp| fp.contains(&o) && bin.iter().any(|x| fp.contains(x)))
                .count();
            let better = match best {
                None => true,
                Some((a, _)) => affinity > a,
            };
            if better {
                best = Some((affinity, b));
            }
        }
        match best {
            Some((_, b)) => bins[b].push(o),
            None => bins.push(vec![o]),
        }
    }
    for bin in &mut bins {
        bin.sort_unstable();
    }
    bins.sort_by_key(|b| b[0]);
    bins
}

/// Objects of `comp` whose removal disconnects the component's
/// interaction graph — the hub objects of MOC0010.
fn hub_objects(comp: &[ObjectId], footprints: &[BTreeSet<ObjectId>]) -> Vec<ObjectId> {
    if comp.len() < 3 {
        return Vec::new();
    }
    let comp_set: BTreeSet<ObjectId> = comp.iter().copied().collect();
    let mut hubs = Vec::new();
    for &o in comp {
        let rest: BTreeSet<ObjectId> = comp_set.iter().copied().filter(|&x| x != o).collect();
        let reduced: Vec<BTreeSet<ObjectId>> = footprints
            .iter()
            .map(|fp| fp.iter().copied().filter(|&x| x != o).collect())
            .collect();
        if interaction_components(&rest, &reduced).len() >= 2 {
            hubs.push(o);
        }
    }
    hubs
}

/// Runs the shardability pass over a program set.
///
/// `num_objects` sizes the object universe; it is extended to cover
/// every referenced object, and objects no program touches are gathered
/// into one trailing idle shard.
pub fn shard_set(programs: &[&Program], num_objects: usize, opts: ShardOptions) -> ShardAnalysis {
    let set = analyze_set(programs, &[]);
    let footprints: Vec<BTreeSet<ObjectId>> = (0..set.programs.len())
        .map(|i| footprint(&set, i))
        .collect();

    let max_ref = footprints
        .iter()
        .flat_map(|fp| fp.iter())
        .map(|o| o.index() + 1)
        .max()
        .unwrap_or(0);
    let num_objects = num_objects.max(max_ref).max(1);
    let universe: BTreeSet<ObjectId> = (0..num_objects).map(|i| ObjectId::new(i as u32)).collect();

    let mut findings = Vec::new();

    // Baseline: connected components of the interaction graph.
    let components = interaction_components(&universe, &footprints);

    // Hub diagnosis runs on the baseline components, before any split:
    // the hub is the *reason* the baseline could not do better.
    for comp in &components {
        for hub in hub_objects(comp, &footprints) {
            findings.push(Finding::new(
                Lint::HubObjectCollapsesPartition,
                "",
                None,
                format!(
                    "object {hub} is a hub: removing it would split its {}-object \
                     interaction component into independent shards",
                    comp.len()
                ),
            ));
        }
    }

    // Refinement: split components the cap forbids.
    let mut shards: Vec<Vec<ObjectId>> = Vec::new();
    for comp in &components {
        match opts.max_shard_size {
            Some(cap) if cap > 0 && comp.len() > cap => {
                shards.extend(greedy_split(comp, &footprints, cap));
            }
            _ => shards.push(comp.clone()),
        }
    }
    // Idle shard: objects no program touches.
    let touched: BTreeSet<ObjectId> = shards.iter().flatten().copied().collect();
    let idle: Vec<ObjectId> = universe.difference(&touched).copied().collect();
    if !idle.is_empty() {
        shards.push(idle);
    }

    let mut shard_of = vec![0u32; num_objects];
    for (s, objs) in shards.iter().enumerate() {
        for o in objs {
            shard_of[o.index()] = s as u32;
        }
    }
    let plan = ShardPlan::new(shard_of).expect("pass emits a dense total partition");

    // Program entries: claimed (refined) footprints, shard spans.
    let entries: Vec<ShardProgramEntry> = set
        .programs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let s = &p.summary;
            let spans: Vec<u32> = {
                let mut sp: Vec<u32> = footprints[i].iter().map(|&o| plan.shard_of(o)).collect();
                sp.sort_unstable();
                sp.dedup();
                sp
            };
            let prog = programs[i];
            let refined = s.may_read != prog.potential_reads()
                || s.may_write != prog.potential_writes()
                || s.is_update() != prog.is_potential_update();
            ShardProgramEntry {
                name: s.name.clone(),
                update: s.is_update(),
                refined,
                reads: s.may_read.iter().copied().collect(),
                writes: s.may_write.iter().copied().collect(),
                shard: if spans.len() == 1 {
                    Some(spans[0])
                } else {
                    None
                },
                spans,
            }
        })
        .collect();

    // Cross-shard edges: every conflict edge touching a straddler needs
    // the global order; enumerate it object by object so the auditor can
    // check nothing was silently dropped.
    let straddles = |i: usize| entries[i].spans.len() >= 2;
    let mut cross_edges = Vec::new();
    for e in &set.graph.edges {
        if !(straddles(e.a) || straddles(e.b)) {
            continue;
        }
        for &obj in &e.write_write {
            cross_edges.push(ShardCrossEdge {
                a: e.a,
                b: e.b,
                object: obj,
                kind: ShardEdgeKind::Ww,
            });
        }
        for &obj in &e.read_write {
            cross_edges.push(ShardCrossEdge {
                a: e.a,
                b: e.b,
                object: obj,
                kind: ShardEdgeKind::Rw,
            });
        }
    }

    for (i, entry) in entries.iter().enumerate() {
        if straddles(i) {
            let spans = entry
                .spans
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            findings.push(Finding::new(
                Lint::ProgramStraddlesShards,
                entry.name.clone(),
                None,
                format!(
                    "footprint spans shards {{{spans}}}: every instance falls back \
                     to the global order"
                ),
            ));
            if !entry.update {
                findings.push(Finding::new(
                    Lint::QueryPinsTwoShards,
                    entry.name.clone(),
                    None,
                    format!(
                        "query reads across shards {{{spans}}}: OO cannot be \
                         certified per-shard"
                    ),
                ));
            }
        }
    }

    let composition = ShardComposition::derive(plan.num_shards(), &entries, &cross_edges);
    let single = entries.iter().filter(|e| e.shard.is_some()).count();
    findings.push(Finding::new(
        Lint::Certificate,
        "",
        None,
        format!(
            "shard partition: {} shard{}, {}/{} programs single-shard, {} cross-shard \
             edge{}; per-shard enforcement: oo={} ww={} wo={}",
            plan.num_shards(),
            if plan.num_shards() == 1 { "" } else { "s" },
            single,
            entries.len(),
            cross_edges.len(),
            if cross_edges.len() == 1 { "" } else { "s" },
            composition.oo,
            composition.ww,
            composition.wo,
        ),
    ));

    let cert = ShardCert {
        num_objects,
        programs_fp: fingerprint_programs(programs),
        shards,
        programs: entries,
        cross_edges,
        composition,
    };

    ShardAnalysis {
        set,
        plan,
        cert,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::program::{arg, reg, ProgramBuilder};
    use moc_core::shard::Route;

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn write_prog(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for &o in objs {
            b.write(oid(o), arg(0));
        }
        b.ret(vec![]);
        b.build().unwrap()
    }

    fn read_prog(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for (i, &o) in objs.iter().enumerate() {
            b.read(oid(o), i as u8);
        }
        b.ret(vec![reg(0)]);
        b.build().unwrap()
    }

    #[test]
    fn disjoint_groups_become_shards() {
        let w0 = write_prog("w01", &[0, 1]);
        let q0 = read_prog("q0", &[0]);
        let w1 = write_prog("w23", &[2, 3]);
        let q1 = read_prog("q23", &[2, 3]);
        let a = shard_set(&[&w0, &q0, &w1, &q1], 4, ShardOptions::default());
        assert_eq!(a.plan.num_shards(), 2);
        assert_eq!(a.plan.route([oid(0), oid(1)]), Route::Shard(0));
        assert_eq!(a.plan.route([oid(2), oid(3)]), Route::Shard(1));
        assert!(a.cert.cross_edges.is_empty());
        assert!(a.cert.programs.iter().all(|p| p.shard.is_some()));
        assert!(a.cert.composition.ww && a.cert.composition.wo);
        // q0 conflicts with w01 → OO blocked, but not by sharding.
        assert!(!a.cert.composition.oo);
        assert!(a
            .findings
            .iter()
            .all(|f| f.lint != Lint::ProgramStraddlesShards));
    }

    #[test]
    fn bridging_program_merges_components() {
        let w0 = write_prog("w0", &[0]);
        let w1 = write_prog("w1", &[1]);
        let bridge = write_prog("bridge", &[0, 1]);
        let a = shard_set(&[&w0, &w1, &bridge], 2, ShardOptions::default());
        assert_eq!(a.plan.num_shards(), 1, "the bridge collapses the split");
        assert!(a.cert.cross_edges.is_empty());
    }

    #[test]
    fn max_shard_size_splits_and_enumerates_cross_edges() {
        // One chain component 0-1-2-3 via pairwise writers; cap at 2
        // forces a split, so some writer must straddle.
        let w01 = write_prog("w01", &[0, 1]);
        let w12 = write_prog("w12", &[1, 2]);
        let w23 = write_prog("w23", &[2, 3]);
        let a = shard_set(
            &[&w01, &w12, &w23],
            4,
            ShardOptions {
                max_shard_size: Some(2),
            },
        );
        assert!(a.plan.num_shards() >= 2);
        assert!(
            a.plan.shards().iter().all(|s| s.len() <= 2),
            "cap respected: {:?}",
            a.plan.shards()
        );
        let straddlers: Vec<_> = a
            .cert
            .programs
            .iter()
            .filter(|p| p.shard.is_none())
            .collect();
        assert!(!straddlers.is_empty());
        assert!(!a.cert.cross_edges.is_empty());
        assert!(!a.cert.composition.ww, "cross WW edges block per-shard WW");
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == Lint::ProgramStraddlesShards));
        // Every cross edge names a straddling endpoint.
        for e in &a.cert.cross_edges {
            assert!(a.cert.programs[e.a].shard.is_none() || a.cert.programs[e.b].shard.is_none());
        }
    }

    #[test]
    fn hub_object_is_flagged() {
        // Objects 1 and 2 only interact through hub object 0.
        let w01 = write_prog("w01", &[0, 1]);
        let w02 = write_prog("w02", &[0, 2]);
        let a = shard_set(&[&w01, &w02], 3, ShardOptions::default());
        assert_eq!(a.plan.num_shards(), 1);
        let hubs: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.lint == Lint::HubObjectCollapsesPartition)
            .collect();
        assert_eq!(hubs.len(), 1, "exactly the hub, not its spokes");
        assert!(hubs[0].message.contains('x'), "hub is object x (= 0)");
    }

    #[test]
    fn cross_shard_query_is_flagged_as_pinning() {
        let w0 = write_prog("w0", &[0]);
        let w1 = write_prog("w1", &[1]);
        let q = read_prog("q01", &[0, 1]);
        // The query's own footprint merges the component; force a split.
        let a = shard_set(
            &[&w0, &w1, &q],
            2,
            ShardOptions {
                max_shard_size: Some(1),
            },
        );
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == Lint::QueryPinsTwoShards && f.program == "q01"));
        assert!(!a.cert.composition.oo);
        // The query only reads: no cross WW edge, so WW still composes.
        assert!(a.cert.composition.ww);
    }

    #[test]
    fn idle_objects_form_a_trailing_shard() {
        let w = write_prog("w0", &[0]);
        let a = shard_set(&[&w], 4, ShardOptions::default());
        let shards = a.plan.shards();
        assert_eq!(shards[0], vec![oid(0)]);
        assert_eq!(shards.last().unwrap(), &vec![oid(1), oid(2), oid(3)]);
    }

    #[test]
    fn certificate_round_trips_and_rebuilds_the_plan() {
        let w0 = write_prog("w01", &[0, 1]);
        let w1 = write_prog("w23", &[2, 3]);
        let a = shard_set(&[&w0, &w1], 4, ShardOptions::default());
        let text = a.cert.to_json();
        let back = ShardCert::parse(&text).unwrap();
        assert_eq!(back, a.cert);
        assert_eq!(back.plan().unwrap(), a.plan);
    }

    #[test]
    fn pass_is_deterministic() {
        let progs: Vec<Program> = (0..6)
            .map(|i| write_prog(&format!("w{i}"), &[i, (i + 1) % 6]))
            .collect();
        let refs: Vec<&Program> = progs.iter().collect();
        let opts = ShardOptions {
            max_shard_size: Some(2),
        };
        let a = shard_set(&refs, 6, opts);
        let b = shard_set(&refs, 6, opts);
        assert_eq!(a.cert, b.cert);
        assert_eq!(a.plan, b.plan);
    }
}
