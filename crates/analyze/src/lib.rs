//! `moc-analyze` — static analysis for m-operation programs.
//!
//! The Section 5 protocols only ever see a program's *syntactic* shape:
//! "we take a conservative approach and treat an m-operation as an update
//! m-operation if it can potentially write to some object". This crate
//! sharpens that story with a classic multi-pass analyzer over the
//! m-operation DSL of [`moc_core::program`]:
//!
//! - [`cfg`] builds basic-block control-flow graphs with feasible-edge
//!   branch folding;
//! - [`dataflow`] is a small forward/backward fixpoint framework;
//! - [`passes`] produces a [`ProgramSummary`] (refined `may_read` /
//!   `may_write` / `must_write` sets, update/query classification,
//!   termination and a static fuel bound) plus lint [`Finding`]s;
//! - [`conflict`] lifts the summaries to whole program sets: a static
//!   conflict graph and one [`Certificate`] per Section 4 constraint,
//!   answering up front whether the Theorem 7 polynomial fast path
//!   applies to every history the configuration can produce;
//! - [`diagnostics`] defines the stable `MOCnnnn` lint codes and the
//!   human/JSON renderers behind `moc analyze`.
//!
//! ```
//! use moc_core::ids::ObjectId;
//! use moc_core::program::{imm, reg, ProgramBuilder};
//! use moc_analyze::{analyze_program, Classification};
//!
//! // A "write" hidden behind an unconditional jump is refined away.
//! let mut b = ProgramBuilder::new("looks-like-update");
//! let end = b.fresh_label();
//! b.read(ObjectId::new(0), 0).jump(end);
//! b.write(ObjectId::new(0), imm(1));
//! b.bind(end);
//! b.ret(vec![reg(0)]);
//! let p = b.build().unwrap();
//! assert!(p.is_potential_update()); // syntactic: update
//! let a = analyze_program(&p);
//! assert_eq!(a.summary.classification, Classification::Query); // refined
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod conflict;
pub mod dataflow;
pub mod diagnostics;
pub mod movers;
pub mod passes;
pub mod shard;

pub use cfg::Cfg;
pub use conflict::{
    analyze_set, Certificate, CertificateStatus, ConflictEdge, ConflictGraph, SetAnalysis,
};
pub use diagnostics::{max_severity, Finding, Lint, Severity};
pub use movers::{commute_set, commute_set_with, MoverAnalysis};
pub use passes::{analyze_program, Classification, ProgramAnalysis, ProgramSummary, Termination};
pub use shard::{shard_set, ShardAnalysis, ShardOptions};

use diagnostics::{json_escape, render_findings_human, render_findings_json};
use moc_core::ids::ObjectId;
use std::collections::BTreeSet;

fn objects_human(s: &BTreeSet<ObjectId>) -> String {
    if s.is_empty() {
        "∅".to_string()
    } else {
        s.iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }
}

fn objects_json(s: &BTreeSet<ObjectId>) -> String {
    let inner = s
        .iter()
        .map(|o| o.index().to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("[{inner}]")
}

impl SetAnalysis {
    /// Renders the full report for terminals.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for p in &self.programs {
            let s = &p.summary;
            out.push_str(&format!(
                "program {}: {} | may_read {{{}}} may_write {{{}}} must_write {{{}}} | {}\n",
                s.name,
                match s.classification {
                    Classification::Update => "update",
                    Classification::Query => "query",
                },
                objects_human(&s.may_read),
                objects_human(&s.may_write),
                objects_human(&s.must_write),
                match s.termination.fuel_bound {
                    Some(b) => format!("terminates ≤ {b} steps"),
                    None => "may loop (fuel-bounded)".to_string(),
                },
            ));
        }
        if self.graph.edges.is_empty() {
            out.push_str("conflict graph: no conflicting pairs\n");
        } else {
            for e in &self.graph.edges {
                out.push_str(&format!(
                    "conflict {} ~ {}: ww {{{}}} rw {{{}}}\n",
                    self.programs[e.a].summary.name,
                    self.programs[e.b].summary.name,
                    objects_human(&e.write_write),
                    objects_human(&e.read_write),
                ));
            }
        }
        out.push_str(&render_findings_human(&self.all_findings()));
        out
    }

    /// Renders the full report as a JSON document.
    pub fn render_json(&self) -> String {
        let programs = self
            .programs
            .iter()
            .map(|p| {
                let s = &p.summary;
                format!(
                    "{{\"name\":\"{}\",\"classification\":\"{}\",\"may_read\":{},\"may_write\":{},\"must_write\":{},\"terminates\":{},\"fuel_bound\":{}}}",
                    json_escape(&s.name),
                    match s.classification {
                        Classification::Update => "update",
                        Classification::Query => "query",
                    },
                    objects_json(&s.may_read),
                    objects_json(&s.may_write),
                    objects_json(&s.must_write),
                    s.termination.guaranteed,
                    match s.termination.fuel_bound {
                        Some(b) => b.to_string(),
                        None => "null".to_string(),
                    },
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let edges = self
            .graph
            .edges
            .iter()
            .map(|e| {
                format!(
                    "{{\"a\":{},\"b\":{},\"write_write\":{},\"read_write\":{}}}",
                    e.a,
                    e.b,
                    objects_json(&e.write_write),
                    objects_json(&e.read_write)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        // Flat per-object edge list: one entry per (pair, object, kind),
        // ordered by (a, b), then ww before rw, then object id — the
        // deterministic source of truth the shard pass and external tools
        // consume.
        let flat_edges = self
            .graph
            .edges
            .iter()
            .flat_map(|e| {
                e.write_write
                    .iter()
                    .map(move |o| (e.a, e.b, o.index(), "ww"))
                    .chain(
                        e.read_write
                            .iter()
                            .map(move |o| (e.a, e.b, o.index(), "rw")),
                    )
            })
            .map(|(a, b, o, kind)| {
                format!("{{\"a\":{a},\"b\":{b},\"object\":{o},\"kind\":\"{kind}\"}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        let certs = self
            .certificates
            .iter()
            .map(|c| {
                let (status, pairs) = match &c.status {
                    CertificateStatus::Vacuous => ("vacuous", String::new()),
                    CertificateStatus::EnforcedByUpdateOrder => {
                        ("enforced-by-update-order", String::new())
                    }
                    CertificateStatus::NotCertified { pairs } => (
                        "not-certified",
                        pairs
                            .iter()
                            .map(|(q, u)| format!("[{q},{u}]"))
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                };
                format!(
                    "{{\"constraint\":\"{}\",\"status\":\"{}\",\"uncovered_pairs\":[{}]}}",
                    match c.constraint {
                        moc_core::constraints::Constraint::Oo => "oo",
                        moc_core::constraints::Constraint::Ww => "ww",
                        moc_core::constraints::Constraint::Wo => "wo",
                    },
                    status,
                    pairs
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let findings = render_findings_json(&self.all_findings());
        format!(
            "{{\"programs\":[{programs}],\"conflicts\":[{edges}],\"edges\":[{flat_edges}],\"certificates\":[{certs}],\"fast_path\":{},\"findings\":[{findings}]}}",
            self.fast_path
        )
    }
}

impl ShardAnalysis {
    /// Renders the shard report for terminals.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (s, objs) in self.cert.shards.iter().enumerate() {
            let objs: BTreeSet<ObjectId> = objs.iter().copied().collect();
            out.push_str(&format!("shard {s}: {{{}}}\n", objects_human(&objs)));
        }
        for p in &self.cert.programs {
            let place = match p.shard {
                Some(s) => format!("shard {s}"),
                None if p.spans.is_empty() => "global (empty footprint)".to_string(),
                None => format!(
                    "cross-shard {{{}}} → global order",
                    p.spans
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            out.push_str(&format!(
                "program {}: {} | {}\n",
                p.name,
                if p.update { "update" } else { "query" },
                place
            ));
        }
        for e in &self.cert.cross_edges {
            out.push_str(&format!(
                "cross edge {} ~ {}: {} on {}\n",
                self.cert.programs[e.a].name, self.cert.programs[e.b].name, e.kind, e.object
            ));
        }
        let c = &self.cert.composition;
        out.push_str(&format!(
            "composition: oo={} ww={} wo={} | m-sc: {} | m-lin: {}\n",
            c.oo, c.ww, c.wo, c.msc, c.mlin
        ));
        out.push_str(&render_findings_human(&self.all_findings()));
        out
    }

    /// Renders the shard report as a JSON document wrapping the
    /// certificate (the `certificate` value is exactly what `moc audit`
    /// re-validates).
    pub fn render_json(&self) -> String {
        let findings = render_findings_json(&self.all_findings());
        format!(
            "{{\"certificate\":{},\"num_shards\":{},\"findings\":[{findings}]}}",
            self.cert.to_json(),
            self.plan.num_shards()
        )
    }
}

impl MoverAnalysis {
    /// Renders the mover report for terminals.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for p in &self.cert.programs {
            let reads: BTreeSet<ObjectId> = p.reads.iter().copied().collect();
            let writes: BTreeSet<ObjectId> = p.writes.iter().copied().collect();
            out.push_str(&format!(
                "program {}: {} | {} | reads {{{}}} writes {{{}}}\n",
                p.name,
                if p.update { "update" } else { "query" },
                p.class,
                objects_human(&reads),
                objects_human(&writes),
            ));
        }
        let n = self.cert.programs.len();
        for i in 0..n {
            let partners: Vec<&str> = self
                .cert
                .matrix
                .row(i)
                .iter()
                .map(|&j| self.cert.programs[j as usize].name.as_str())
                .collect();
            out.push_str(&format!(
                "commutes {}: {}\n",
                self.cert.programs[i].name,
                if partners.is_empty() {
                    "∅".to_string()
                } else {
                    partners.join(", ")
                }
            ));
        }
        out.push_str(&render_findings_human(&self.all_findings()));
        out
    }

    /// Renders the mover report as a JSON document wrapping the
    /// certificate (the `certificate` value is exactly what `moc audit`
    /// re-validates).
    pub fn render_json(&self) -> String {
        let findings = render_findings_json(&self.all_findings());
        format!(
            "{{\"certificate\":{},\"commuting_pairs\":{},\"findings\":[{findings}]}}",
            self.cert.to_json(),
            self.cert.matrix.num_commuting_pairs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::program::{arg, reg, ProgramBuilder};

    #[test]
    fn renderers_cover_the_report() {
        let mut b = ProgramBuilder::new("wx");
        b.write(ObjectId::new(0), arg(0)).ret(vec![]);
        let w = b.build().unwrap();
        let mut b = ProgramBuilder::new("qx");
        b.read(ObjectId::new(0), 0).ret(vec![reg(0)]);
        let q = b.build().unwrap();
        let s = analyze_set(&[&w, &q], &[]);

        let human = s.render_human();
        assert!(human.contains("program wx: update"));
        assert!(human.contains("program qx: query"));
        assert!(human.contains("MOC0008"));

        let json = s.render_json();
        assert!(json.contains("\"classification\":\"update\""));
        assert!(json.contains("\"fast_path\":true"));
        assert!(json.contains("\"constraint\":\"oo\""));
        assert!(json.contains("not-certified"));
        // Flat per-object edge list with kinds: the writer's self-pair
        // (two instances of wx both write x) precedes the wx–qx RW edge.
        assert!(json.contains(
            "\"edges\":[{\"a\":0,\"b\":0,\"object\":0,\"kind\":\"ww\"},\
             {\"a\":0,\"b\":1,\"object\":0,\"kind\":\"rw\"}]"
        ));
        // Smoke: balanced braces.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
