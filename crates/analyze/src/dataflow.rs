//! A small forward/backward dataflow fixpoint framework over [`Cfg`]s.
//!
//! Analyses supply a join-semilattice fact, a transfer function per
//! instruction, and a direction; [`solve`] iterates a block worklist to a
//! fixpoint and exposes per-instruction facts. Only reachable blocks
//! participate: unreachable instructions get `None` facts, which keeps the
//! passes from reasoning about code that can never execute.

use moc_core::program::{Instr, Program};

use crate::cfg::Cfg;

/// Direction of a dataflow analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from entry to exits; the per-instruction fact holds
    /// immediately *before* the instruction executes.
    Forward,
    /// Facts flow from exits to entry; the per-instruction fact holds
    /// immediately *after* the instruction executes.
    Backward,
}

/// A dataflow analysis: lattice + transfer.
pub trait DataflowAnalysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Direction facts propagate.
    fn direction(&self) -> Direction;

    /// Fact at the boundary: program entry (forward) or after each
    /// `Return` (backward).
    fn boundary(&self) -> Self::Fact;

    /// The identity of [`DataflowAnalysis::join`] — the optimistic
    /// initial value (full set for must-analyses, empty for may-analyses).
    fn join_identity(&self) -> Self::Fact;

    /// Least upper bound of two facts.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Applies instruction `idx` to `fact` (in execution order for
    /// forward analyses, reverse order for backward ones).
    fn transfer(&self, idx: usize, instr: &Instr, fact: &Self::Fact) -> Self::Fact;
}

/// Fixpoint solution: one fact per instruction (see [`Direction`] for
/// which program point it describes), `None` for unreachable code.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Per-instruction facts.
    pub at: Vec<Option<F>>,
}

/// Runs `analysis` over `program` to a fixpoint.
pub fn solve<A: DataflowAnalysis>(program: &Program, cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    match analysis.direction() {
        Direction::Forward => solve_forward(program, cfg, analysis),
        Direction::Backward => solve_backward(program, cfg, analysis),
    }
}

fn transfer_block<A: DataflowAnalysis>(
    program: &Program,
    cfg: &Cfg,
    analysis: &A,
    block: usize,
    entry: &A::Fact,
) -> A::Fact {
    let mut fact = entry.clone();
    let b = &cfg.blocks[block];
    match analysis.direction() {
        Direction::Forward => {
            for i in b.instrs() {
                fact = analysis.transfer(i, &program.instrs()[i], &fact);
            }
        }
        Direction::Backward => {
            for i in b.instrs().rev() {
                fact = analysis.transfer(i, &program.instrs()[i], &fact);
            }
        }
    }
    fact
}

fn solve_forward<A: DataflowAnalysis>(
    program: &Program,
    cfg: &Cfg,
    analysis: &A,
) -> Solution<A::Fact> {
    let nb = cfg.blocks.len();
    let mut input: Vec<A::Fact> = (0..nb).map(|_| analysis.join_identity()).collect();
    input[0] = analysis.boundary();
    let mut dirty = vec![true; nb];
    let mut work: Vec<usize> = (0..nb).filter(|&b| cfg.reachable[b]).collect();
    while let Some(b) = work.pop() {
        if !dirty[b] {
            continue;
        }
        dirty[b] = false;
        let out = transfer_block(program, cfg, analysis, b, &input[b]);
        for &s in &cfg.blocks[b].succs {
            let joined = analysis.join(&input[s], &out);
            if joined != input[s] {
                input[s] = joined;
                if !dirty[s] {
                    dirty[s] = true;
                    work.push(s);
                }
            }
        }
    }

    let mut at = vec![None; program.instrs().len()];
    for b in 0..nb {
        if !cfg.reachable[b] {
            continue;
        }
        let mut fact = input[b].clone();
        for i in cfg.blocks[b].instrs() {
            at[i] = Some(fact.clone());
            fact = analysis.transfer(i, &program.instrs()[i], &fact);
        }
    }
    Solution { at }
}

fn solve_backward<A: DataflowAnalysis>(
    program: &Program,
    cfg: &Cfg,
    analysis: &A,
) -> Solution<A::Fact> {
    let nb = cfg.blocks.len();
    // `output[b]`: fact at the end of block b. Exit blocks (no
    // successors) start from the boundary fact.
    let mut output: Vec<A::Fact> = (0..nb)
        .map(|b| {
            if cfg.blocks[b].succs.is_empty() {
                analysis.boundary()
            } else {
                analysis.join_identity()
            }
        })
        .collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for b in 0..nb {
        if !cfg.reachable[b] {
            continue;
        }
        for &s in &cfg.blocks[b].succs {
            preds[s].push(b);
        }
    }
    let mut dirty = vec![true; nb];
    let mut work: Vec<usize> = (0..nb).filter(|&b| cfg.reachable[b]).collect();
    while let Some(b) = work.pop() {
        if !dirty[b] {
            continue;
        }
        dirty[b] = false;
        let entry_fact = transfer_block(program, cfg, analysis, b, &output[b]);
        for &p in &preds[b] {
            let joined = analysis.join(&output[p], &entry_fact);
            if joined != output[p] {
                output[p] = joined;
                if !dirty[p] {
                    dirty[p] = true;
                    work.push(p);
                }
            }
        }
    }

    let mut at = vec![None; program.instrs().len()];
    for b in 0..nb {
        if !cfg.reachable[b] {
            continue;
        }
        let mut fact = output[b].clone();
        for i in cfg.blocks[b].instrs().rev() {
            at[i] = Some(fact.clone());
            fact = analysis.transfer(i, &program.instrs()[i], &fact);
        }
    }
    Solution { at }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::ids::ObjectId;
    use moc_core::program::{imm, reg, CmpOp, ProgramBuilder};

    /// Forward "definitely initialized registers" as a bitmask.
    struct MustInit;
    impl DataflowAnalysis for MustInit {
        type Fact = u64;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> u64 {
            0
        }
        fn join_identity(&self) -> u64 {
            u64::MAX
        }
        fn join(&self, a: &u64, b: &u64) -> u64 {
            a & b
        }
        fn transfer(&self, _idx: usize, instr: &Instr, fact: &u64) -> u64 {
            match instr {
                Instr::Read { dst, .. } | Instr::Mov { dst, .. } | Instr::Binary { dst, .. } => {
                    fact | (1 << dst)
                }
                _ => *fact,
            }
        }
    }

    #[test]
    fn must_init_meets_over_branches() {
        // r0 set on both arms, r1 only on one.
        let mut b = ProgramBuilder::new("branchy");
        let other = b.fresh_label();
        let join = b.fresh_label();
        b.jump_if(reg(5), CmpOp::Eq, imm(0), other);
        b.mov(0, imm(1)).mov(1, imm(2)).jump(join);
        b.bind(other);
        b.mov(0, imm(3));
        b.bind(join);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let sol = solve(&p, &cfg, &MustInit);
        // Fact before the final Return: r0 definitely set, r1 not.
        let ret_idx = p.instrs().len() - 1;
        let fact = sol.at[ret_idx].unwrap();
        assert_eq!(fact & 0b01, 0b01);
        assert_eq!(fact & 0b10, 0);
    }

    #[test]
    fn loop_reaches_fixpoint() {
        let mut b = ProgramBuilder::new("sum5");
        let top = b.fresh_label();
        let done = b.fresh_label();
        b.mov(0, imm(0)).mov(1, imm(1));
        b.bind(top);
        b.jump_if(reg(1), CmpOp::Gt, imm(5), done)
            .add(0, reg(0), reg(1))
            .add(1, reg(1), imm(1))
            .jump(top);
        b.bind(done);
        b.ret(vec![reg(0)]);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let sol = solve(&p, &cfg, &MustInit);
        for (i, f) in sol.at.iter().enumerate() {
            assert!(f.is_some(), "instr {i} reachable");
        }
        // At loop head both r0 and r1 are definitely initialized.
        assert_eq!(sol.at[2].unwrap() & 0b11, 0b11);
    }

    /// Backward liveness as a bitmask.
    struct Live;
    impl DataflowAnalysis for Live {
        type Fact = u64;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn boundary(&self) -> u64 {
            0
        }
        fn join_identity(&self) -> u64 {
            0
        }
        fn join(&self, a: &u64, b: &u64) -> u64 {
            a | b
        }
        fn transfer(&self, _idx: usize, instr: &Instr, fact: &u64) -> u64 {
            use moc_core::program::Operand;
            let use_bit = |o: &Operand, m: u64| match o {
                Operand::Reg(r) => m | (1 << r),
                _ => m,
            };
            match instr {
                Instr::Read { dst, .. } => fact & !(1 << dst),
                Instr::Mov { dst, src } => use_bit(src, fact & !(1 << dst)),
                Instr::Binary { dst, lhs, rhs, .. } => {
                    use_bit(rhs, use_bit(lhs, fact & !(1 << dst)))
                }
                Instr::Write { src, .. } => use_bit(src, *fact),
                Instr::JumpIf { lhs, rhs, .. } => use_bit(rhs, use_bit(lhs, *fact)),
                Instr::Return { outputs } => outputs.iter().fold(*fact, |m, o| use_bit(o, m)),
                Instr::Jump { .. } => *fact,
            }
        }
    }

    #[test]
    fn liveness_flows_backward() {
        let mut b = ProgramBuilder::new("w");
        b.mov(0, imm(1))
            .mov(1, imm(2))
            .write(ObjectId::new(0), reg(0))
            .ret(vec![]);
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let sol = solve(&p, &cfg, &Live);
        // After `mov r0`: r0 live (used by write), r1 not (never used).
        assert_eq!(sol.at[0].unwrap() & 0b11, 0b01);
        // After `mov r1`: r1 is dead.
        assert_eq!(sol.at[1].unwrap() & 0b10, 0);
    }
}
