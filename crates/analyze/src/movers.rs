//! The whole-configuration commutativity & mover pass.
//!
//! The conflict graph ([`crate::conflict`]) records which pairs of
//! programs *can* interact; this pass records the complement — which
//! pairs provably **commute** (neither may write an object the other may
//! touch, so both orders yield identical states and return values) — and
//! condenses each program's row into a Lipton-style [`MoverClass`]:
//!
//! * **read-only** — may write nothing; needs no sequencer stamp at all;
//! * **both-mover** — commutes with every other program;
//! * **right-mover** — commutes with every other *update*: its slot in
//!   the broadcast order is irrelevant to replica state, only query
//!   visibility pins it;
//! * **left-mover** — no query observes its writes: it must keep its
//!   update-order slot but can move freely past queries;
//! * **non-mover** — pinned by an update and a query.
//!
//! The emitted [`CommuteCert`] (format `moc-commute-cert` v1) carries the
//! full pairwise matrix in CSR form plus the per-program classes, bound
//! to the program set by fingerprint and independently re-validated by
//! `moc-audit` in O(pairs). Downstream, the checker's search engine uses
//! pairwise commutation to prune symmetric interleavings, and the sharded
//! broadcast applies commuting deliveries without cross-shard barrier
//! waits.

use moc_core::commute::{
    derive_class, CommuteMatrix, CommuteProgramEntry, MoverClass, COMMUTE_SIDE_CONDITIONS,
};
use moc_core::program::Program;
use moc_core::shard::{fingerprint_programs, ShardPlan};
use moc_core::CommuteCert;

use crate::conflict::SetAnalysis;
use crate::diagnostics::{Finding, Lint};
use crate::shard::{shard_set, ShardOptions};

/// The pass's result: the conflict analysis it builds on, the baseline
/// shard partition (for the MOC0014 cross-shard lint), the certificate,
/// and findings.
#[derive(Debug, Clone)]
pub struct MoverAnalysis {
    /// The underlying conflict-graph analysis (shared source of truth).
    pub set: SetAnalysis,
    /// The baseline shard partition the straddle lint is judged against.
    pub plan: ShardPlan,
    /// Shard spans of each program under `plan` (ascending, deduplicated).
    pub spans: Vec<Vec<u32>>,
    /// The proof document, independently re-validatable by `moc-audit`.
    pub cert: CommuteCert,
    /// Mover-specific findings (MOC0012–MOC0014 plus summaries), in
    /// addition to [`SetAnalysis::all_findings`].
    pub findings: Vec<Finding>,
}

impl MoverAnalysis {
    /// All findings: the set analysis's, then the mover pass's.
    pub fn all_findings(&self) -> Vec<Finding> {
        let mut out = self.set.all_findings();
        out.extend(self.findings.iter().cloned());
        out
    }
}

/// Runs the commutativity & mover pass over a program set.
///
/// `num_objects` sizes the object universe exactly as in
/// [`crate::shard::shard_set`] (extended to cover every referenced
/// object). The baseline shard partition — connected components of the
/// object-interaction graph, no size cap — anchors the MOC0014 lint.
pub fn commute_set(programs: &[&Program], num_objects: usize) -> MoverAnalysis {
    commute_set_with(programs, num_objects, ShardOptions::default())
}

/// [`commute_set`] against an explicit shard configuration — a capped
/// partition produces straddling programs, the input of MOC0014.
pub fn commute_set_with(
    programs: &[&Program],
    num_objects: usize,
    opts: ShardOptions,
) -> MoverAnalysis {
    let shard = shard_set(programs, num_objects, opts);
    let spans: Vec<Vec<u32>> = shard
        .cert
        .programs
        .iter()
        .map(|p| p.spans.clone())
        .collect();

    // The commute entries reuse the shard pass's claimed (refined)
    // footprints verbatim, so the two certificates of one configuration
    // can never disagree about what a program may touch.
    let mut entries: Vec<CommuteProgramEntry> = shard
        .cert
        .programs
        .iter()
        .map(|p| CommuteProgramEntry {
            name: p.name.clone(),
            update: p.update,
            refined: p.refined,
            reads: p.reads.clone(),
            writes: p.writes.clone(),
            class: MoverClass::NonMover, // placeholder, assigned below
        })
        .collect();
    for i in 0..entries.len() {
        entries[i].class = derive_class(&entries, i);
    }
    let matrix = CommuteMatrix::derive(&entries);

    let mut findings = Vec::new();
    let n = entries.len();
    let distinct_commuting = (0..n)
        .map(|i| matrix.row(i).iter().filter(|&&j| (j as usize) > i).count())
        .sum::<usize>();

    if n >= 2 && distinct_commuting == 0 {
        findings.push(Finding::new(
            Lint::AllPairsConflict,
            "",
            None,
            format!(
                "every distinct pair of the {n} programs conflicts: the commutativity \
                 fast path cannot apply anywhere in this configuration"
            ),
        ));
    }

    for (i, e) in entries.iter().enumerate() {
        if e.class == MoverClass::ReadOnly && programs[i].is_potential_update() {
            findings.push(Finding::new(
                Lint::ReadOnlyProgramInGlobalOrder,
                e.name.clone(),
                None,
                "read-only after refinement but syntactically an update: the protocol \
                 would stamp it into the global broadcast order; the commute \
                 certificate lets it skip sequencer stamping entirely"
                    .to_string(),
            ));
        }
    }

    // MOC0014: a commuting pair with a straddling endpoint — the global
    // channel's barrier discipline orders the pair, but nothing requires
    // that order.
    for i in 0..n {
        for &j in matrix.row(i) {
            let j = j as usize;
            if j <= i {
                continue;
            }
            if spans[i].len() >= 2 || spans[j].len() >= 2 {
                findings.push(Finding::new(
                    Lint::CommutingPairStraddlesShards,
                    "",
                    None,
                    format!(
                        "programs '{}' and '{}' commute, yet one straddles shards: \
                         the cross-shard barrier between them is unnecessary",
                        entries[i].name, entries[j].name
                    ),
                ));
            }
        }
    }

    let classes = |class: MoverClass| entries.iter().filter(|e| e.class == class).count();
    findings.push(Finding::new(
        Lint::Certificate,
        "",
        None,
        format!(
            "commutativity: {}/{} unordered pairs commute; classes: {} read-only, \
             {} both-mover, {} right-mover, {} left-mover, {} non-mover",
            matrix.num_commuting_pairs(),
            n * (n + 1) / 2,
            classes(MoverClass::ReadOnly),
            classes(MoverClass::BothMover),
            classes(MoverClass::RightMover),
            classes(MoverClass::LeftMover),
            classes(MoverClass::NonMover),
        ),
    ));

    let cert = CommuteCert {
        num_objects: shard.cert.num_objects,
        programs_fp: fingerprint_programs(programs),
        programs: entries,
        matrix,
        side_conditions: COMMUTE_SIDE_CONDITIONS
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };

    MoverAnalysis {
        set: shard.set,
        plan: shard.plan,
        spans,
        cert,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_core::ids::ObjectId;
    use moc_core::program::{arg, imm, reg, ProgramBuilder};

    fn oid(i: u32) -> ObjectId {
        ObjectId::new(i)
    }

    fn write_prog(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for &o in objs {
            b.write(oid(o), arg(0));
        }
        b.ret(vec![]);
        b.build().unwrap()
    }

    fn read_prog(name: &str, objs: &[u32]) -> Program {
        let mut b = ProgramBuilder::new(name);
        for (i, &o) in objs.iter().enumerate() {
            b.read(oid(o), i as u8);
        }
        b.ret(vec![reg(0)]);
        b.build().unwrap()
    }

    #[test]
    fn disjoint_writers_commute_and_classify() {
        let w0 = write_prog("w0", &[0]);
        let w1 = write_prog("w1", &[1]);
        let q2 = read_prog("q2", &[2]);
        let a = commute_set(&[&w0, &w1, &q2], 3);
        assert!(a.cert.matrix.commutes(0, 1));
        assert!(a.cert.matrix.commutes(0, 2));
        assert!(!a.cert.matrix.commutes(0, 0), "self WW conflicts");
        assert!(a.cert.matrix.commutes(2, 2));
        assert_eq!(a.cert.programs[0].class, MoverClass::BothMover);
        assert_eq!(a.cert.programs[1].class, MoverClass::BothMover);
        assert_eq!(a.cert.programs[2].class, MoverClass::ReadOnly);
        assert!(a.findings.iter().all(|f| f.lint != Lint::AllPairsConflict));
    }

    #[test]
    fn all_conflicting_pairs_raise_moc0012() {
        let w = write_prog("wx", &[0]);
        let rmw = {
            let mut b = ProgramBuilder::new("rmw");
            b.read(oid(0), 0).write(oid(0), reg(0)).ret(vec![reg(0)]);
            b.build().unwrap()
        };
        let a = commute_set(&[&w, &rmw], 1);
        assert!(a.findings.iter().any(|f| f.lint == Lint::AllPairsConflict));
        assert_eq!(a.cert.matrix.num_commuting_pairs(), 0);
        assert_eq!(a.cert.programs[0].class, MoverClass::LeftMover);
        assert_eq!(a.cert.programs[1].class, MoverClass::LeftMover);
    }

    #[test]
    fn refined_read_only_update_raises_moc0013() {
        // A syntactic update whose only write is unreachable: read-only
        // after refinement, yet the conservative protocol would stamp it.
        let mut b = ProgramBuilder::new("dead-write");
        let end = b.fresh_label();
        b.read(oid(0), 0).jump(end);
        b.write(oid(1), imm(1));
        b.bind(end);
        b.ret(vec![reg(0)]);
        let dead = b.build().unwrap();
        assert!(dead.is_potential_update());
        let a = commute_set(&[&dead], 2);
        assert_eq!(a.cert.programs[0].class, MoverClass::ReadOnly);
        assert!(a.cert.programs[0].refined);
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == Lint::ReadOnlyProgramInGlobalOrder && f.program == "dead-write"));
        // A plain query never triggers it: it was never in the order.
        let q = read_prog("q", &[0]);
        let a = commute_set(&[&q], 1);
        assert!(a
            .findings
            .iter()
            .all(|f| f.lint != Lint::ReadOnlyProgramInGlobalOrder));
    }

    #[test]
    fn commuting_pair_with_straddler_raises_moc0014() {
        // bridge spans objects {0,1} which split across the two baseline
        // components {0,1} (merged by bridge itself)... so build a real
        // straddler: components {0},{1} are merged by bridge — baseline
        // puts them in ONE shard then. Use disjoint pairs plus a bridge
        // over a third pair to get a genuine multi-shard baseline.
        let w0 = write_prog("w0", &[0]);
        let w1 = write_prog("w1", &[1]);
        let bridge = write_prog("bridge", &[2, 3]);
        let w4 = write_prog("w4", &[4]);
        // Baseline components: {0}, {1}, {2,3}, {4} — no straddler, so
        // no MOC0014 yet even though pairs commute.
        let a = commute_set(&[&w0, &w1, &bridge, &w4], 5);
        assert!(a
            .findings
            .iter()
            .all(|f| f.lint != Lint::CommutingPairStraddlesShards));
        // The pass only sees baseline partitions, so a straddler needs a
        // footprint bridging two *other* programs' components: w01 writes
        // {0,1}... that merges them. The honest straddle case comes from
        // capped shard plans; at baseline it is exactly the cross-shard
        // query: q02 reads objects of two write components, merging them
        // into one baseline shard — still no straddler. So: MOC0014 is
        // unreachable at baseline by construction (a footprint inside one
        // shard), EXCEPT via programs whose footprint is split by the
        // idle-shard boundary — e.g. a query over an idle object and a
        // live one? The idle shard gathers untouched objects only, so
        // that cannot happen either. The lint therefore fires through
        // the capped entry point below.
        let spans_multi = a.spans.iter().filter(|s| s.len() >= 2).count();
        assert_eq!(spans_multi, 0);
    }

    #[test]
    fn capped_commute_pass_flags_unnecessary_barriers() {
        let a = commute_set_with(
            &[
                &write_prog("w01", &[0, 1]),
                &write_prog("w12", &[1, 2]),
                &write_prog("w3", &[3]),
            ],
            4,
            ShardOptions {
                max_shard_size: Some(2),
            },
        );
        // Some writer straddles the capped split; w3 commutes with every
        // other program, so the barrier between w3 and the straddler is
        // unnecessary.
        assert!(a.spans.iter().any(|s| s.len() >= 2));
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == Lint::CommutingPairStraddlesShards));
    }

    #[test]
    fn cert_binds_to_the_program_set_and_round_trips() {
        let w0 = write_prog("w0", &[0]);
        let q1 = read_prog("q1", &[1]);
        let a = commute_set(&[&w0, &q1], 2);
        assert_eq!(a.cert.programs_fp, fingerprint_programs(&[&w0, &q1]));
        let text = a.cert.to_json();
        let back = CommuteCert::parse(&text).unwrap();
        assert_eq!(back, a.cert);
        assert_eq!(
            back.side_conditions,
            COMMUTE_SIDE_CONDITIONS
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn pass_is_deterministic() {
        let progs: Vec<Program> = (0..5)
            .map(|i| write_prog(&format!("w{i}"), &[i, (i + 1) % 5]))
            .collect();
        let refs: Vec<&Program> = progs.iter().collect();
        let a = commute_set(&refs, 5);
        let b = commute_set(&refs, 5);
        assert_eq!(a.cert, b.cert);
        assert_eq!(a.cert.to_json(), b.cert.to_json());
    }
}
