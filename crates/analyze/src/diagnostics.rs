//! Analyzer diagnostics: stable lint codes, severities, findings and the
//! human/JSON renderers the `moc analyze` subcommand prints.

use std::fmt;

/// How serious a finding is. Ordering: `Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — analysis facts worth surfacing.
    Info,
    /// Likely bug, does not block.
    Warn,
    /// Blocks: `moc analyze` exits non-zero.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warn => f.write_str("warn"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable lint identities. Codes are part of the tool's interface:
/// regression tests and downstream scripts match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// MOC0001: control flow can never reach this instruction.
    UnreachableInstruction,
    /// MOC0002: a register may be read before any instruction writes it
    /// (the interpreter zero-fills, but relying on that is almost always
    /// a program bug).
    UninitializedRead,
    /// MOC0003: the program contains a loop; termination relies on the
    /// interpreter's fuel bound.
    UnboundedLoop,
    /// MOC0004: a register value is overwritten or discarded without ever
    /// being used.
    DeadStore,
    /// MOC0005: every path terminates; carries the static fuel bound.
    GuaranteedTermination,
    /// MOC0006: dataflow refined the syntactic classification (e.g. all
    /// writes are unreachable, demoting an "update" to a query).
    RefinedClassification,
    /// MOC0007: a constraint the caller requires cannot be certified for
    /// this program set.
    ConstraintNotCertified,
    /// MOC0008: a constraint certificate (vacuous or protocol-enforced).
    Certificate,
    /// MOC0009: a program's footprint straddles shard boundaries, forcing
    /// its m-operations onto the global order.
    ProgramStraddlesShards,
    /// MOC0010: a single hub object connects otherwise-independent object
    /// groups, collapsing the partition into one shard.
    HubObjectCollapsesPartition,
    /// MOC0011: a query's read footprint pins two (or more) shards,
    /// blocking the OO composition verdict.
    QueryPinsTwoShards,
    /// MOC0012: every distinct pair of programs conflicts, so the
    /// commutativity fast path cannot apply anywhere.
    AllPairsConflict,
    /// MOC0013: a read-only program would still ride the global broadcast
    /// order under the syntactic classification; the commute certificate
    /// lets it skip sequencer stamping entirely.
    ReadOnlyProgramInGlobalOrder,
    /// MOC0014: a commuting pair straddles shard boundaries — the
    /// cross-shard barrier is unnecessary for this pair.
    CommutingPairStraddlesShards,
}

impl Lint {
    /// The stable `MOCnnnn` code.
    pub fn code(self) -> &'static str {
        match self {
            Lint::UnreachableInstruction => "MOC0001",
            Lint::UninitializedRead => "MOC0002",
            Lint::UnboundedLoop => "MOC0003",
            Lint::DeadStore => "MOC0004",
            Lint::GuaranteedTermination => "MOC0005",
            Lint::RefinedClassification => "MOC0006",
            Lint::ConstraintNotCertified => "MOC0007",
            Lint::Certificate => "MOC0008",
            Lint::ProgramStraddlesShards => "MOC0009",
            Lint::HubObjectCollapsesPartition => "MOC0010",
            Lint::QueryPinsTwoShards => "MOC0011",
            Lint::AllPairsConflict => "MOC0012",
            Lint::ReadOnlyProgramInGlobalOrder => "MOC0013",
            Lint::CommutingPairStraddlesShards => "MOC0014",
        }
    }

    /// Short kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnreachableInstruction => "unreachable-instruction",
            Lint::UninitializedRead => "uninitialized-register-read",
            Lint::UnboundedLoop => "unbounded-loop",
            Lint::DeadStore => "dead-register-store",
            Lint::GuaranteedTermination => "guaranteed-termination",
            Lint::RefinedClassification => "refined-classification",
            Lint::ConstraintNotCertified => "constraint-not-certified",
            Lint::Certificate => "constraint-certificate",
            Lint::ProgramStraddlesShards => "program-straddles-shards",
            Lint::HubObjectCollapsesPartition => "hub-object-collapses-partition",
            Lint::QueryPinsTwoShards => "query-pins-two-shards",
            Lint::AllPairsConflict => "all-pairs-conflict",
            Lint::ReadOnlyProgramInGlobalOrder => "read-only-program-in-global-order",
            Lint::CommutingPairStraddlesShards => "commuting-pair-straddles-shards",
        }
    }

    /// Default severity of the lint.
    pub fn severity(self) -> Severity {
        match self {
            Lint::UnreachableInstruction
            | Lint::UninitializedRead
            | Lint::ProgramStraddlesShards
            | Lint::HubObjectCollapsesPartition
            | Lint::AllPairsConflict
            | Lint::ReadOnlyProgramInGlobalOrder => Severity::Warn,
            Lint::ConstraintNotCertified => Severity::Error,
            _ => Severity::Info,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.name())
    }
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Severity (defaults to [`Lint::severity`]).
    pub severity: Severity,
    /// Program the finding is about (empty for set-level findings).
    pub program: String,
    /// Instruction index the finding anchors to, if any.
    pub instr: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// A finding with the lint's default severity.
    pub fn new(
        lint: Lint,
        program: impl Into<String>,
        instr: Option<usize>,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            lint,
            severity: lint.severity(),
            program: program.into(),
            instr,
            message: message.into(),
        }
    }

    /// Renders one human-readable line.
    pub fn render_human(&self) -> String {
        let site = match (self.program.is_empty(), self.instr) {
            (false, Some(i)) => format!("{}[{}]: ", self.program, i),
            (false, None) => format!("{}: ", self.program),
            (true, _) => String::new(),
        };
        format!(
            "{} {:5} {}{} ({})",
            self.lint.code(),
            self.severity.to_string(),
            site,
            self.message,
            self.lint.name()
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one finding as a JSON object.
pub fn finding_json(f: &Finding) -> String {
    let instr = match f.instr {
        Some(i) => i.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"program\":\"{}\",\"instr\":{},\"message\":\"{}\"}}",
        f.lint.code(),
        f.lint.name(),
        f.severity,
        json_escape(&f.program),
        instr,
        json_escape(&f.message)
    )
}

/// The worst severity among `findings` (`None` when empty).
pub fn max_severity(findings: &[Finding]) -> Option<Severity> {
    findings.iter().map(|f| f.severity).max()
}

/// Renders findings as terminal lines, one per finding — the single
/// human renderer shared by `moc analyze`, `moc shard` and `moc commute`.
pub fn render_findings_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.render_human());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array body (no surrounding brackets) — the
/// single JSON renderer shared by the report subcommands.
pub fn render_findings_json(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(finding_json)
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(Lint::UnreachableInstruction.code(), "MOC0001");
        assert_eq!(Lint::UninitializedRead.code(), "MOC0002");
        assert_eq!(Lint::UnboundedLoop.code(), "MOC0003");
        assert_eq!(Lint::DeadStore.code(), "MOC0004");
        assert_eq!(Lint::GuaranteedTermination.code(), "MOC0005");
        assert_eq!(Lint::RefinedClassification.code(), "MOC0006");
        assert_eq!(Lint::ConstraintNotCertified.code(), "MOC0007");
        assert_eq!(Lint::Certificate.code(), "MOC0008");
        assert_eq!(Lint::ProgramStraddlesShards.code(), "MOC0009");
        assert_eq!(Lint::HubObjectCollapsesPartition.code(), "MOC0010");
        assert_eq!(Lint::QueryPinsTwoShards.code(), "MOC0011");
        assert_eq!(
            Lint::ProgramStraddlesShards.name(),
            "program-straddles-shards"
        );
        assert_eq!(
            Lint::HubObjectCollapsesPartition.name(),
            "hub-object-collapses-partition"
        );
        assert_eq!(Lint::QueryPinsTwoShards.name(), "query-pins-two-shards");
        assert_eq!(Lint::AllPairsConflict.code(), "MOC0012");
        assert_eq!(Lint::ReadOnlyProgramInGlobalOrder.code(), "MOC0013");
        assert_eq!(Lint::CommutingPairStraddlesShards.code(), "MOC0014");
        assert_eq!(Lint::AllPairsConflict.name(), "all-pairs-conflict");
        assert_eq!(
            Lint::ReadOnlyProgramInGlobalOrder.name(),
            "read-only-program-in-global-order"
        );
        assert_eq!(
            Lint::CommutingPairStraddlesShards.name(),
            "commuting-pair-straddles-shards"
        );
        assert_eq!(Lint::AllPairsConflict.severity(), Severity::Warn);
        assert_eq!(
            Lint::ReadOnlyProgramInGlobalOrder.severity(),
            Severity::Warn
        );
        assert_eq!(
            Lint::CommutingPairStraddlesShards.severity(),
            Severity::Info
        );
    }

    #[test]
    fn shared_renderers_cover_all_findings() {
        let fs = vec![
            Finding::new(Lint::AllPairsConflict, "", None, "no commuting pair"),
            Finding::new(Lint::DeadStore, "p", Some(1), "r2"),
        ];
        let human = render_findings_human(&fs);
        assert!(human.contains("MOC0012"));
        assert!(human.contains("MOC0004"));
        assert_eq!(human.lines().count(), 2);
        let json = render_findings_json(&fs);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"code\"").count(), 2);
        assert_eq!(render_findings_json(&[]), "");
    }

    #[test]
    fn severity_ordering_drives_exit_codes() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        let fs = vec![
            Finding::new(Lint::GuaranteedTermination, "p", None, "ok"),
            Finding::new(Lint::UninitializedRead, "p", Some(2), "r3"),
        ];
        assert_eq!(max_severity(&fs), Some(Severity::Warn));
        assert_eq!(max_severity(&[]), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let f = Finding::new(Lint::DeadStore, "p\"q", Some(1), "m");
        let j = finding_json(&f);
        assert!(j.contains("\"program\":\"p\\\"q\""));
        assert!(j.contains("\"instr\":1"));
    }

    #[test]
    fn human_line_contains_code_and_site() {
        let f = Finding::new(
            Lint::UnreachableInstruction,
            "dcas",
            Some(4),
            "never executed",
        );
        let line = f.render_human();
        assert!(line.starts_with("MOC0001 warn"));
        assert!(line.contains("dcas[4]"));
    }
}
